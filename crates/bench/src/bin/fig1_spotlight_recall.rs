//! Figure 1: recall of Spotlight-style crawling search under background
//! file copying at 0/2/5/10 files per second, over a 600 s run.

use propeller_baselines::{recall, SpotlightConfig, SpotlightEngine};
use propeller_bench::table;
use propeller_index::FileRecord;
use propeller_query::Query;
use propeller_types::{Duration, FileId, InodeAttrs, Timestamp};
use propeller_workloads::FpsCopier;

fn main() {
    table::banner("Figure 1: Spotlight recall vs background copy intensity");
    let horizon_secs: u64 = 600;
    let sample_every: u64 = 30;
    let t0 = Timestamp::from_secs(100_000); // run starts after initial crawl
    let query = Query::parse("size>0", Timestamp::EPOCH).unwrap();

    let fps_levels = [0u64, 2, 5, 10];
    let mut series: Vec<Vec<f64>> = Vec::new();
    for &fps in &fps_levels {
        let mut engine = SpotlightEngine::new(SpotlightConfig {
            // Fig. 1 measures the crawling + type-plugin ceiling (< 53%).
            supported_fraction: 0.53,
            crawl_rate: 4.0,
            reindex_backlog: 900,
            reindex_duration: Duration::from_secs(120),
        });
        // Pre-existing dataset, fully crawled before the run starts.
        let mut truth: Vec<FileId> = Vec::new();
        for i in 0..2_000u64 {
            let rec = FileRecord::new(i.into(), InodeAttrs::builder().size(1024).build());
            truth.push(rec.file);
            engine.notify(rec, Timestamp::EPOCH);
        }
        engine.pump(t0);

        // Background copier events, shifted to the run origin.
        let events: Vec<(Timestamp, InodeAttrs)> = FpsCopier::new(fps, t0, 42 + fps)
            .take_for_secs(horizon_secs)
            .map(|(t, _, attrs)| (t, attrs))
            .collect();
        let mut cursor = 0usize;
        let mut next_id = 1_000_000u64;
        let mut points = Vec::new();
        for sec in (0..=horizon_secs).step_by(sample_every as usize) {
            let now = t0 + Duration::from_secs(sec);
            while cursor < events.len() && events[cursor].0 <= now {
                let (t, attrs) = events[cursor];
                cursor += 1;
                let id = FileId::new(next_id);
                next_id += 1;
                truth.push(id);
                engine.notify(FileRecord::new(id, attrs), t);
            }
            let results = engine.query(&query.predicate, now);
            points.push(recall(&results, &truth) * 100.0);
        }
        series.push(points);
    }

    let cols: Vec<String> = std::iter::once("t (s)".to_string())
        .chain(fps_levels.iter().map(|f| format!("{f} FPS (%)")))
        .collect();
    table::header(&cols.iter().map(String::as_str).collect::<Vec<_>>());
    for (i, sec) in (0..=horizon_secs).step_by(sample_every as usize).enumerate() {
        let mut cells = vec![format!("{sec}")];
        for s in &series {
            cells.push(format!("{:.1}", s[i]));
        }
        table::row(&cells);
    }
    println!(
        "\npaper shape: recall capped < 53% by type plugins; higher FPS drives \
         recall lower; re-index windows drop it to 0"
    );
}
