//! Figure 2(a): impact of partition size on inline-indexing time.
//! 50 000 random updates over 50k/100k/200k-file datasets partitioned into
//! equally-sized groups of 1000–8000 files, three on-HDD indices per group.

use propeller_bench::table;
use propeller_storage::{Disk, DiskProfile, GroupIndexModel};

fn main() {
    table::banner("Figure 2(a): partition size vs 50k-update execution time");
    let updates = 50_000u64;
    let datasets = [50_000u64, 100_000, 200_000];
    let sizes = [1_000u64, 2_000, 3_000, 4_000, 5_000, 6_000, 7_000, 8_000];
    let model = GroupIndexModel::default();

    let cols: Vec<String> = std::iter::once("files/part".to_string())
        .chain(datasets.iter().map(|d| format!("{}k files (s)", d / 1000)))
        .collect();
    table::header(&cols.iter().map(String::as_str).collect::<Vec<_>>());
    for &size in &sizes {
        let mut cells = vec![format!("{size}")];
        for &total in &datasets {
            let mut disk = Disk::new(DiskProfile::hdd_7200());
            let t = model.random_update_run(total, size, updates, &mut disk, 2024 ^ size);
            cells.push(table::secs(t.as_secs_f64()));
        }
        table::row(&cells);
    }
    println!(
        "\npaper shape: execution time grows with partition size and is nearly \
         independent of total dataset size (Fig. 2a: ~500 s at 1k -> ~2500 s at 8k)"
    );
}
