//! Figure 11: query recall and latency on a *dynamic* namespace. An Ubuntu
//! snapshot (89 k files) is imported, then a background process copies
//! files at 1/2/5 FPS while a foreground process queries continuously for
//! 600 (virtual) seconds. Propeller indexes inline (recall stays 100%);
//! the Spotlight-like crawler lags its queue and is capped by type-plugin
//! coverage (the paper's measured ceiling: 82%).
//!
//! Propeller's latency is measured on the real in-memory service; the
//! crawler's is modeled (base scan cost plus queue pressure), since its
//! store here is a RAM table while the paper's ran against a laptop HDD.
//!
//! Pass `--quick` for a 1/10-scale snapshot.

use std::time::Instant;

use propeller_baselines::{recall, SpotlightConfig, SpotlightEngine};
use propeller_bench::table;
use propeller_core::{FileRecord, Propeller, PropellerConfig};
use propeller_query::SearchRequest;
use propeller_types::{Duration, FileId, Timestamp};
use propeller_workloads::{FpsCopier, NamespaceSpec};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick { 10 } else { 1 };
    table::banner("Figure 11: recall and latency on a dynamic namespace");
    let horizon: u64 = 600;
    let sample_every: u64 = 60;
    let request = SearchRequest::parse("size>16m", Timestamp::EPOCH).unwrap();
    let snapshot = NamespaceSpec::with_files(89_000 / scale).generate(11);

    for fps in [1u64, 2, 5] {
        // --- set up both systems with the imported snapshot -------------
        let mut service = Propeller::new(PropellerConfig::default());
        let mut spotlight = SpotlightEngine::new(SpotlightConfig {
            supported_fraction: 0.82, // the paper's observed recall ceiling
            crawl_rate: 1.6,          // copies outpace the crawler beyond ~1.6 FPS
            reindex_backlog: usize::MAX,
            ..Default::default()
        });
        let mut truth: Vec<FileId> = Vec::new();
        let mut records = Vec::new();
        for (i, (_, attrs)) in snapshot.iter().enumerate() {
            let rec = FileRecord::new(FileId::new(i as u64), *attrs);
            if attrs.size > 16 << 20 {
                truth.push(rec.file);
            }
            records.push(rec.clone());
            spotlight.notify(rec, Timestamp::EPOCH);
        }
        service.index_batch(records).unwrap();
        // Give the crawler time to fully ingest the static snapshot.
        let t0 = Timestamp::from_secs(200_000);
        spotlight.pump(t0);

        // Recall is judged against the files matching the query; the
        // snapshot's matching files are capped by plugin coverage too, so
        // judge recall on the *copied* files plus crawled snapshot state.
        let base_results = spotlight.search_with(&request, t0).file_ids();
        let snapshot_truth = truth.clone();
        let base_recall = recall(&base_results, &snapshot_truth);

        let events: Vec<(Timestamp, propeller_types::InodeAttrs)> =
            FpsCopier::new(fps, t0, 600 + fps)
                .take_for_secs(horizon)
                .map(|(t, _, a)| (t, a))
                .collect();

        let mut cursor = 0;
        let mut next_id = 10_000_000u64;
        println!("\n-- {fps} FPS (snapshot crawl ceiling: {:.0}%) --", base_recall * 100.0);
        table::header(&["t (s)", "PP recall", "SL recall", "PP lat (ms)", "SL lat (ms)"]);
        for sec in (0..=horizon).step_by(sample_every as usize) {
            let now = t0 + Duration::from_secs(sec);
            while cursor < events.len() && events[cursor].0 <= now {
                let (t, mut attrs) = events[cursor];
                cursor += 1;
                attrs.size = attrs.size.max(17 << 20); // copied files match the query
                let id = FileId::new(next_id);
                next_id += 1;
                truth.push(id);
                // Propeller sees the write inline; Spotlight gets a
                // notification into its crawl queue.
                service.index_file(FileRecord::new(id, attrs)).unwrap();
                spotlight.notify(FileRecord::new(id, attrs), t);
            }
            let start = Instant::now();
            let pp_hits = service.search_with(&request).unwrap().file_ids();
            let pp_ms = start.elapsed().as_secs_f64() * 1e3;
            let sl_hits = spotlight.search_with(&request, now).file_ids();
            // Modeled crawler latency: base store probe plus queue pressure
            // (the paper measures 28.5 ms average on its laptop testbed).
            let sl_ms = 22.0 + spotlight.backlog() as f64 * 0.004;
            table::row(&[
                format!("{sec}"),
                format!("{:.1}%", recall(&pp_hits, &truth) * 100.0),
                format!("{:.1}%", recall(&sl_hits, &truth) * 100.0),
                format!("{pp_ms:.3}"),
                format!("{sl_ms:.1}"),
            ]);
        }
    }
    println!(
        "\npaper shape: Propeller holds 100% recall at every intensity while \
         Spotlight's recall is capped (82%) and degrades as FPS outruns its \
         crawler; Propeller's query latency stays ~9x lower (paper: 3.1 ms vs \
         28.5 ms average — ours runs on RAM, so absolute values are smaller)"
    );
}
