//! Table II: evaluation of the access-causality partitioning algorithm on
//! the Thrift, Git and Linux-kernel build ACGs — graph scale, partitioning
//! time, resulting partition sizes and cut weight.
//!
//! Pass `--quick` to skip the (large) Linux profile.

use std::time::Instant;

use propeller_acg::{bisect, AcgGraph, PartitionConfig};
use propeller_bench::table;
use propeller_trace::profiles::BuildProfile;
use propeller_trace::{CausalityTracker, FileCatalog};

fn build_acg(profile: &BuildProfile, seed: u64) -> AcgGraph {
    let mut catalog = FileCatalog::new();
    let trace = profile.generate(&mut catalog, seed);
    let mut tracker = CausalityTracker::new();
    for ev in &trace.events {
        tracker.observe(*ev);
    }
    let mut graph = AcgGraph::new();
    for (src, dst, w) in tracker.drain_edges() {
        graph.add_edge(src, dst, w);
    }
    for &f in &trace.files {
        graph.add_vertex(f);
    }
    graph
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    table::banner("Table II: ACG partitioning with the multilevel bisector");
    let mut profiles = vec![BuildProfile::thrift(), BuildProfile::git()];
    if !quick {
        profiles.insert(0, BuildProfile::linux_kernel());
    }

    table::header(&[
        "application",
        "vertices",
        "edges",
        "total weight",
        "part time",
        "partition sizes",
        "cut (weight)",
        "cut %",
    ]);
    for profile in profiles {
        let graph = build_acg(&profile, 42);
        // Partition the largest connected component, as the paper does.
        let comps = graph.components();
        let largest = comps.largest().expect("non-empty graph").to_vec();
        let sub = graph.subgraph(&largest);
        let start = Instant::now();
        let bisection = bisect(&sub, &PartitionConfig::default());
        let elapsed = start.elapsed();
        table::row(&[
            profile.name.clone(),
            format!("{}", graph.vertex_count()),
            format!("{}", graph.edge_count()),
            format!("{}", graph.total_weight()),
            format!("{:.3}s", elapsed.as_secs_f64()),
            format!("{}/{}", bisection.left.len(), bisection.right.len()),
            format!("{}", bisection.cut_weight),
            format!("{:.2}%", bisection.cut_fraction() * 100.0),
        ]);
    }
    println!(
        "\npaper reference: Linux 62331 v / 5.94M e / cut 1.33%; Thrift 775 v / \
         8698 e / cut 0.58%; Git 1018 v / 2925 e / cut 29.4% — balanced halves, \
         small cuts on locality-structured graphs"
    );
}
