//! Figure 7: the access-causality graph of compiling Thrift — disconnected
//! components and candidate cuts. Emits component statistics and a
//! Graphviz DOT rendering of a down-sampled view.

use propeller_acg::AcgGraph;
use propeller_bench::table;
use propeller_trace::profiles::BuildProfile;
use propeller_trace::{CausalityTracker, FileCatalog};

fn main() {
    table::banner("Figure 7: ACG of compiling Thrift");
    let mut catalog = FileCatalog::new();
    let trace = BuildProfile::thrift().generate(&mut catalog, 42);
    let mut tracker = CausalityTracker::new();
    for ev in &trace.events {
        tracker.observe(*ev);
    }
    let mut graph = AcgGraph::new();
    for (src, dst, w) in tracker.drain_edges() {
        graph.add_edge(src, dst, w);
    }
    for &f in &trace.files {
        graph.add_vertex(f);
    }

    let comps = graph.components();
    println!("vertices: {}", graph.vertex_count());
    println!("edges:    {}", graph.edge_count());
    println!("weight:   {}", graph.total_weight());
    println!("components: {}", comps.len());
    table::header(&["component", "vertices"]);
    for (i, comp) in comps.iter().enumerate().take(10) {
        table::row(&[format!("{i}"), format!("{}", comp.len())]);
    }

    // DOT output (sampled: every 8th vertex, intra-sample edges only).
    let out = std::path::Path::new("target").join("fig7_thrift_acg.dot");
    let sampled: std::collections::HashSet<_> =
        graph.vertices().filter(|f| f.raw() % 8 == 0).collect();
    let mut dot = String::from("digraph thrift_acg {\n  node [shape=point];\n");
    for (s, d, w) in graph.edges() {
        if sampled.contains(&s) && sampled.contains(&d) {
            dot.push_str(&format!("  f{} -> f{} [weight={w}];\n", s.raw(), d.raw()));
        }
    }
    dot.push_str("}\n");
    if std::fs::create_dir_all("target").is_ok() && std::fs::write(&out, dot).is_ok() {
        println!("\nDOT rendering written to {}", out.display());
    }
    println!(
        "paper shape: the build ACG has multiple disconnected components \
         (Fig. 7 shows two), so grouping by component eliminates inter-group accesses"
    );
}
