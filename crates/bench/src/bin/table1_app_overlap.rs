//! Table I: common files accessed by executions of different programs
//! (apt-get, Firefox, OpenOffice, Linux kernel build).

use propeller_bench::table;
use propeller_trace::profiles::table_one_apps;
use propeller_trace::FileCatalog;

fn main() {
    table::banner("Table I: common files across application executions");
    let mut catalog = FileCatalog::new();
    let apps = table_one_apps(&mut catalog);

    let mut cols = vec!["execution".to_string(), "files".to_string()];
    cols.extend(apps.iter().map(|a| a.name.clone()));
    table::header(&cols.iter().map(String::as_str).collect::<Vec<_>>());
    for a in &apps {
        let mut cells = vec![a.name.clone(), format!("{}", a.file_count())];
        for b in &apps {
            if a.name == b.name {
                cells.push("N/A".to_string());
            } else {
                let common = a.common_files(b);
                let pct = 100.0 * common as f64 / a.file_count() as f64;
                cells.push(format!("{common} ({pct:.2}%)"));
            }
        }
        table::row(&cells);
    }
    println!(
        "\npaper values reproduced exactly: totals 279/2279/2696/19715; overlaps \
         31, 62, 29, 464, 48, 45 — applications share very few files"
    );
}
