//! Ablation: the lazy index cache's commit timeout.
//!
//! The paper fixes the timeout at 5 s. We sweep it from 0 (commit on every
//! enqueue) to 30 s under the Figure 10 mixed workload on a virtual clock
//! (updates arrive every 10 virtual ms), measuring how often the cache
//! commits, the average batch size, and the pending work each search must
//! absorb synchronously.

use propeller_bench::{scales, table};
use propeller_core::{FileRecord, Propeller, PropellerConfig};
use propeller_query::Query;
use propeller_sim::SimClock;
use propeller_types::{Duration, FileId, InodeAttrs, Timestamp};
use propeller_workloads::{MixedOp, MixedWorkload};

fn main() {
    table::banner("Ablation: index-cache commit timeout (Fig. 10 workload)");
    table::header(&["timeout", "commits", "avg batch", "avg pending@search", "max pending@search"]);
    for timeout_ms in [0u64, 500, 1_000, 5_000, 30_000] {
        let sim = SimClock::new();
        let mut service = Propeller::new(PropellerConfig {
            commit_timeout: Duration::from_millis(timeout_ms),
            sim_clock: Some(sim.clone()),
            ..PropellerConfig::default()
        });
        let group: Vec<FileId> = (0..scales::GROUP_FILES).map(FileId::new).collect();
        service.bind_group(&group).unwrap();
        service
            .index_batch(
                group
                    .iter()
                    .map(|f| FileRecord::new(*f, InodeAttrs::builder().size(f.raw()).build()))
                    .collect(),
            )
            .unwrap();
        let query = Query::parse("size>100", Timestamp::EPOCH).unwrap();

        let mut commits = 0u64;
        let mut committed_ops = 0u64;
        let mut pending_at_search = Vec::new();
        // A "drain" = pending dropping after an action.
        let mut observe_drain = |before: usize, after: usize| {
            if after < before {
                commits += 1;
                committed_ops += (before - after) as u64;
            }
        };
        for op in MixedWorkload::paper_default(scales::GROUP_FILES) {
            match op {
                MixedOp::Update(file) => {
                    sim.advance(Duration::from_millis(10));
                    let before = service.pending_ops() + 1; // incl. this op
                    service
                        .index_file(FileRecord::new(
                            file,
                            InodeAttrs::builder().size(file.raw() + 1).build(),
                        ))
                        .unwrap();
                    observe_drain(before, service.pending_ops());
                }
                MixedOp::Search => {
                    let before = service.pending_ops();
                    pending_at_search.push(before as f64);
                    let _ = service.search(&query.predicate).unwrap();
                    observe_drain(before, service.pending_ops());
                }
                MixedOp::BackgroundCommit => {
                    let before = service.pending_ops();
                    let _ = service.maintenance();
                    observe_drain(before, service.pending_ops());
                }
            }
        }
        let avg_batch = if commits == 0 { 0.0 } else { committed_ops as f64 / commits as f64 };
        let avg_pending =
            pending_at_search.iter().sum::<f64>() / pending_at_search.len().max(1) as f64;
        let max_pending = pending_at_search.iter().copied().fold(0.0f64, f64::max);
        table::row(&[
            format!("{timeout_ms} ms"),
            format!("{commits}"),
            format!("{avg_batch:.1}"),
            format!("{avg_pending:.1}"),
            format!("{max_pending:.0}"),
        ]);
    }
    println!(
        "\nexpected: a zero timeout commits on every update (no batching); very \
         large timeouts defer everything to the search, which then pays a large \
         synchronous commit. The paper's 5 s default batches well while keeping \
         the search-time debt bounded"
    );
}
