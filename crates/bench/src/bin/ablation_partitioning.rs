//! Ablation: access-causality partitioning vs namespace-based vs random
//! partitioning at equal partition sizes.
//!
//! The paper's §III argument is that static partitioning (by directory or
//! by hash) cannot confine an application's updates to few partitions.
//! We build the ACGs of two build workloads plus an interactive session,
//! partition the files three ways, and measure (a) the total causality
//! weight crossing partition boundaries and (b) how many distinct
//! partitions an average process execution touches.

use std::collections::{HashMap, HashSet};

use propeller_acg::{cluster_components, AcgGraph, ClusteringConfig};
use propeller_bench::table;
use propeller_trace::profiles::{BuildProfile, InteractiveProfile};
use propeller_trace::{CausalityTracker, FileCatalog};
use propeller_types::{FileId, FileOp, ProcessId};

const PARTITION_SIZE: usize = 2_500;

/// Remaps a profile-relative path onto a realistic system layout: the
/// paper's Figure 3 point is that one application's files are scattered
/// across `/usr`, `/var` and `/home`, so namespace partitioning separates
/// what the application accesses together.
fn system_path(path: &str) -> String {
    let app = path.split('/').nth(1).unwrap_or("app").to_owned();
    let leaf = path.rsplit('/').next().unwrap_or("f");
    if path.contains("/ro/") || path.contains("/include/") {
        format!("/usr/lib/{app}/{leaf}")
    } else if path.contains("/rw/") {
        format!("/home/user/.{app}/{leaf}")
    } else if path.contains("/obj/") || path.contains("/bin/") {
        format!("/var/build/{app}/{leaf}")
    } else {
        format!("/home/user/src/{app}/{leaf}")
    }
}

fn main() {
    table::banner("Ablation: partitioning scheme quality");
    let mut catalog = FileCatalog::new();
    let mut events = Vec::new();
    let mut files = Vec::new();
    for trace in [
        BuildProfile::thrift().generate(&mut catalog, 1),
        BuildProfile::git().generate(&mut catalog, 2),
        InteractiveProfile::firefox().generate(&mut catalog, 3),
    ] {
        events.extend(trace.events);
        files.extend(trace.files);
    }
    files.sort_unstable();
    files.dedup();

    let mut tracker = CausalityTracker::new();
    let mut per_process: HashMap<ProcessId, HashSet<FileId>> = HashMap::new();
    for ev in &events {
        tracker.observe(*ev);
        if matches!(ev.op, FileOp::Open(_)) {
            per_process.entry(ev.pid).or_default().insert(ev.file);
        }
    }
    let mut graph = AcgGraph::new();
    for (s, d, w) in tracker.drain_edges() {
        graph.add_edge(s, d, w);
    }
    for &f in &files {
        graph.add_vertex(f);
    }

    // --- three partitioning schemes -------------------------------------
    let acg_parts = cluster_components(&graph, &ClusteringConfig::with_max_files(PARTITION_SIZE));

    let mut by_dir: HashMap<String, Vec<FileId>> = HashMap::new();
    for &f in &files {
        let path = system_path(catalog.path(f).unwrap_or("/unknown"));
        let dir = path.rsplit_once('/').map(|(d, _)| d.to_owned()).unwrap_or_default();
        by_dir.entry(dir).or_default().push(f);
    }
    let mut namespace_parts: Vec<Vec<FileId>> = Vec::new();
    let mut dirs: Vec<_> = by_dir.into_iter().collect();
    dirs.sort_by(|a, b| a.0.cmp(&b.0));
    // Pack whole directories into fixed-size partitions, namespace order.
    let mut current: Vec<FileId> = Vec::new();
    for (_, mut dir_files) in dirs {
        current.append(&mut dir_files);
        while current.len() >= PARTITION_SIZE {
            let rest = current.split_off(PARTITION_SIZE);
            namespace_parts.push(std::mem::replace(&mut current, rest));
        }
    }
    if !current.is_empty() {
        namespace_parts.push(current);
    }

    let random_parts: Vec<Vec<FileId>> = {
        use rand::seq::SliceRandom;
        let mut shuffled = files.clone();
        shuffled.shuffle(&mut propeller_sim::seeded_rng(9));
        shuffled.chunks(PARTITION_SIZE).map(<[FileId]>::to_vec).collect()
    };

    table::header(&["scheme", "partitions", "cut weight", "cut %", "parts/process"]);
    for (name, parts) in [
        ("access-causality", &acg_parts),
        ("namespace", &namespace_parts),
        ("random", &random_parts),
    ] {
        let assignment: HashMap<FileId, usize> =
            parts.iter().enumerate().flat_map(|(i, p)| p.iter().map(move |&f| (f, i))).collect();
        let mut cut = 0u64;
        for (s, d, w) in graph.edges() {
            if assignment.get(&s) != assignment.get(&d) {
                cut += w;
            }
        }
        let touched: f64 = per_process
            .values()
            .map(|fs| {
                fs.iter().filter_map(|f| assignment.get(f)).collect::<HashSet<_>>().len() as f64
            })
            .sum::<f64>()
            / per_process.len().max(1) as f64;
        table::row(&[
            name.to_string(),
            format!("{}", parts.len()),
            format!("{cut}"),
            format!("{:.2}%", 100.0 * cut as f64 / graph.total_weight().max(1) as f64),
            format!("{touched:.2}"),
        ]);
    }
    println!(
        "\nexpected: access-causality partitioning cuts far less weight and \
         confines each process to fewer partitions than namespace or random \
         placement — the structural reason behind Figures 2 and 8"
    );
}
