//! Figure 8: file-indexing time of Propeller vs the centralized MySQL-like
//! baseline on 50M- and 100M-file datasets, with 1–16 concurrent processes
//! each issuing 10 000 updates.
//!
//! Modeled mode: Propeller processes each update within one resident
//! 1000-file group (WAL append is the only disk work); the centralized
//! store pays global-B+-tree page misses per update. The single shared
//! HDD serializes disk work across processes.

use propeller_bench::{scales, table};
use propeller_storage::{Disk, DiskProfile, PageIoModel};
use propeller_types::Duration;

/// Propeller: per-process group stays resident; each update appends a WAL
/// record to the shared disk (sequential) and does in-RAM index work.
fn propeller_run(processes: u64, updates_per_proc: u64) -> Duration {
    let mut disk = Disk::new(DiskProfile::hdd_7200());
    let mut rng = propeller_sim::seeded_rng(8);
    let mut disk_time = Duration::ZERO;
    for _ in 0..processes * updates_per_proc {
        disk_time += disk.sequential_write(256, &mut rng);
    }
    // One initial group load per process.
    for _ in 0..processes {
        disk_time += disk.sequential_read(scales::GROUP_FILES * 400, &mut rng);
    }
    // In-RAM update work parallelises across cores (4-core Xeon).
    let ram = Duration::from_micros(12) * (processes * updates_per_proc) / processes.clamp(1, 4);
    disk_time + ram
}

/// Centralized baseline: every update descends the global index.
fn centraldb_run(total_files: u64, processes: u64, updates_per_proc: u64) -> Duration {
    let model = PageIoModel::default();
    let mut disk = Disk::new(DiskProfile::hdd_7200());
    model.update_run_cost(total_files, processes * updates_per_proc, &mut disk)
}

fn main() {
    table::banner("Figure 8: indexing time, Propeller vs centralized (log scale)");
    let updates = 10_000u64;
    table::header(&[
        "processes",
        "PP 50M (s)",
        "DB 50M (s)",
        "speedup",
        "PP 100M (s)",
        "DB 100M (s)",
        "speedup",
    ]);
    for processes in [1u64, 2, 4, 8, 16] {
        let pp50 = propeller_run(processes, updates).as_secs_f64();
        let db50 = centraldb_run(scales::M50, processes, updates).as_secs_f64();
        let pp100 = propeller_run(processes, updates).as_secs_f64();
        let db100 = centraldb_run(scales::M100, processes, updates).as_secs_f64();
        table::row(&[
            format!("{processes}"),
            table::secs(pp50),
            table::secs(db50),
            table::ratio(db50 / pp50),
            table::secs(pp100),
            table::secs(db100),
            table::ratio(db100 / pp100),
        ]);
    }
    println!(
        "\npaper shape: Propeller is 30-60x faster; Propeller's cost is set by the \
         group size (identical across datasets) while the centralized store \
         degrades ~2x from 50M to 100M files"
    );
}
