//! Shared harness code for the experiment binaries.
//!
//! Each table and figure of the paper has a binary under `src/bin/`
//! (`fig1_spotlight_recall`, `table4_cluster_scaling`, …). This library
//! holds the pieces they share: the cluster-search cost model calibrated to
//! the paper's testbed, dataset-size constants, and small table-printing
//! helpers. Run everything with `cargo run --release -p propeller-bench
//! --bin run_all`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod model;
pub mod table;

pub use model::ClusterSearchModel;

/// The paper's dataset scales (§V-B/§V-C).
pub mod scales {
    /// Small single-node comparison dataset.
    pub const M10: u64 = 10_000_000;
    /// The 50-million-file dataset.
    pub const M50: u64 = 50_000_000;
    /// The 100-million-file dataset.
    pub const M100: u64 = 100_000_000;
    /// Files per ACG group in the single-node experiments.
    pub const GROUP_FILES: u64 = 1_000;
}
