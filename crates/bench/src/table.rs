//! Minimal fixed-width table printing for experiment output.

/// Prints a header row followed by a separator.
///
/// # Examples
///
/// ```
/// propeller_bench::table::header(&["nodes", "cold (s)", "warm (s)"]);
/// ```
pub fn header(cols: &[&str]) {
    let row: Vec<String> = cols.iter().map(|c| format!("{c:>14}")).collect();
    println!("{}", row.join(" "));
    println!("{}", "-".repeat(15 * cols.len()));
}

/// Prints one data row (already formatted cells).
pub fn row(cells: &[String]) {
    let row: Vec<String> = cells.iter().map(|c| format!("{c:>14}")).collect();
    println!("{}", row.join(" "));
}

/// Formats seconds with 3 fractional digits.
pub fn secs(s: f64) -> String {
    format!("{s:.3}")
}

/// Formats a ratio like `61.3x`.
pub fn ratio(r: f64) -> String {
    format!("{r:.1}x")
}

/// Prints an experiment banner.
pub fn banner(title: &str) {
    println!();
    println!("=== {title} ===");
}
