//! Analytic models calibrated to the paper's testbed, used by the
//! modeled-mode experiment binaries.

use propeller_types::Duration;

/// Cost model for cluster-wide searches (Table IV / Figure 9).
///
/// Each Index Node hosts `total_files / group_files / nodes` index groups.
/// A **cold** search loads each group's serialized indices from its HDD
/// (sequential read + initial seek), with an eviction-thrash multiplier
/// when the node's share of index bytes exceeds its RAM — this is the
/// paper's explanation for the super-linear speed-up from 1 to 4 nodes.
/// A **warm** search touches each group in RAM, paying a minor-fault
/// penalty for the fraction of groups that cannot stay resident.
#[derive(Debug, Clone)]
pub struct ClusterSearchModel {
    /// RAM available for index caching per node (paper nodes: 4–16 GB).
    pub ram_bytes: u64,
    /// Serialized index bytes per file entry.
    pub bytes_per_entry: u64,
    /// Files per index group.
    pub group_files: u64,
    /// Cold load of one group: seek + sequential transfer.
    pub cold_load_per_group: Duration,
    /// Warm in-RAM probe of one group.
    pub warm_probe_per_group: Duration,
    /// Minor-fault penalty per non-resident group on the warm path.
    pub warm_fault_per_group: Duration,
}

impl Default for ClusterSearchModel {
    fn default() -> Self {
        ClusterSearchModel {
            ram_bytes: 16 << 30,
            bytes_per_entry: 400,
            group_files: 1_000,
            cold_load_per_group: Duration::from_micros(14_000),
            warm_probe_per_group: Duration::from_micros(3),
            warm_fault_per_group: Duration::from_micros(20),
        }
    }
}

impl ClusterSearchModel {
    fn groups(&self, total_files: u64) -> u64 {
        total_files / self.group_files.max(1)
    }

    /// Fraction of a node's group share that exceeds its RAM.
    fn overflow_fraction(&self, total_files: u64, nodes: u64) -> f64 {
        let share_bytes = total_files / nodes.max(1) * self.bytes_per_entry;
        if share_bytes <= self.ram_bytes {
            0.0
        } else {
            (share_bytes - self.ram_bytes) as f64 / share_bytes as f64
        }
    }

    /// Cold (first-query) latency with `nodes` Index Nodes.
    pub fn cold(&self, total_files: u64, nodes: u64) -> Duration {
        let per_node_groups = self.groups(total_files) / nodes.max(1);
        let thrash = 1.0 + self.overflow_fraction(total_files, nodes);
        self.cold_load_per_group * per_node_groups * thrash
    }

    /// Warm (steady-state) latency with `nodes` Index Nodes.
    pub fn warm(&self, total_files: u64, nodes: u64) -> Duration {
        let per_node_groups = self.groups(total_files) / nodes.max(1);
        let overflow = self.overflow_fraction(total_files, nodes);
        let faulting = (per_node_groups as f64 * overflow) as u64;
        self.warm_probe_per_group * per_node_groups + self.warm_fault_per_group * faulting
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scales::{M100, M50};

    #[test]
    fn cold_latency_drops_with_nodes() {
        let m = ClusterSearchModel::default();
        let mut last = Duration::from_secs(1_000_000);
        for nodes in [1, 2, 4, 6, 8] {
            let c = m.cold(M50, nodes);
            assert!(c < last, "cold({nodes}) = {c} should fall");
            last = c;
        }
    }

    #[test]
    fn cold_matches_paper_order_of_magnitude() {
        let m = ClusterSearchModel::default();
        // Paper Table IV 50M cold: 698 s at 1 node, 55.8 s at 8.
        let one = m.cold(M50, 1).as_secs_f64();
        let eight = m.cold(M50, 8).as_secs_f64();
        assert!((300.0..1500.0).contains(&one), "1 node: {one}");
        assert!((30.0..150.0).contains(&eight), "8 nodes: {eight}");
    }

    #[test]
    fn warm_superlinear_when_ram_binds() {
        let m = ClusterSearchModel::default();
        // Paper: 100M warm improves super-linearly from 1 to 4 nodes
        // (1.61 s -> 0.056 s ≈ 29x for 4x nodes).
        let one = m.warm(M100, 1);
        let four = m.warm(M100, 4);
        let speedup = one.as_secs_f64() / four.as_secs_f64();
        assert!(speedup > 4.0, "speedup {speedup} must exceed node ratio");
    }

    #[test]
    fn warm_matches_paper_order_of_magnitude() {
        let m = ClusterSearchModel::default();
        let w = m.warm(M100, 1).as_secs_f64();
        assert!((0.5..5.0).contains(&w), "100M warm 1 node: {w} (paper 1.61)");
        let w8 = m.warm(M50, 8).as_secs_f64();
        assert!(w8 < 0.1, "50M warm 8 nodes: {w8} (paper 0.016)");
    }

    #[test]
    fn bigger_dataset_never_faster() {
        let m = ClusterSearchModel::default();
        for nodes in [1, 2, 4, 8] {
            assert!(m.cold(M100, nodes) > m.cold(M50, nodes));
            assert!(m.warm(M100, nodes) >= m.warm(M50, nodes));
        }
    }
}
