//! Propeller service facade.
//!
//! Two deployment shapes, matching the paper's evaluation setups:
//!
//! * [`Propeller`] — **single-node mode** (§V-B): the Master Node and one
//!   Index Node run in the same process with no RPC layer. This is the
//!   configuration the paper benchmarks against MySQL and Spotlight.
//! * [`propeller_cluster::Cluster`] — the full distributed service (§V-C):
//!   one Master, N Index Nodes, parallel client fan-out.
//!
//! Both expose the same conceptual API: create named indices, feed file
//! records (inline indexing), feed access traces (ACG capture), search with
//! always-consistent results through the [`SearchRequest`] /
//! [`SearchResponse`] pair (top-k, sorting, projection, pagination).
//!
//! # Examples
//!
//! ```
//! use propeller_core::{Propeller, PropellerConfig, SearchRequest, SortKey};
//! use propeller_index::FileRecord;
//! use propeller_types::{AttrName, FileId, InodeAttrs, Timestamp};
//!
//! let mut service = Propeller::new(PropellerConfig::default());
//! for i in 1..=100u64 {
//!     service.index_file(FileRecord::new(
//!         FileId::new(i),
//!         InodeAttrs::builder().size(i << 20).build(),
//!     )).unwrap();
//! }
//!
//! // The canonical API: top-k with sorting, stats and a cursor.
//! let req = SearchRequest::parse("size>16m", Timestamp::EPOCH)
//!     .unwrap()
//!     .with_limit(3)
//!     .sorted_by(SortKey::Descending(AttrName::Size));
//! let resp = service.search_with(&req).unwrap();
//! assert_eq!(resp.file_ids(), vec![FileId::new(100), FileId::new(99), FileId::new(98)]);
//! assert!(resp.complete);
//! assert!(resp.cursor.is_some());
//!
//! // The classic wrapper still answers with the full sorted id set.
//! assert_eq!(service.search_text("size>99m").unwrap(), vec![FileId::new(100)]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod service;

pub use service::{Propeller, PropellerConfig, ServiceStats};

pub use propeller_cluster as cluster;
pub use propeller_index::{FileRecord, IndexKind, IndexOp, IndexSpec};
pub use propeller_query::{
    Cursor, FanOutPolicy, Hit, Predicate, Projection, Query, SearchRequest, SearchResponse,
    SearchStats, SortKey,
};
