//! Propeller service facade.
//!
//! Two deployment shapes, matching the paper's evaluation setups:
//!
//! * [`Propeller`] — **single-node mode** (§V-B): the Master Node and one
//!   Index Node run in the same process with no RPC layer. This is the
//!   configuration the paper benchmarks against MySQL and Spotlight.
//! * [`propeller_cluster::Cluster`] — the full distributed service (§V-C):
//!   one Master, N Index Nodes, parallel client fan-out.
//!
//! Both expose the same conceptual API: create named indices, feed file
//! records (inline indexing), feed access traces (ACG capture), search with
//! always-consistent results.
//!
//! # Examples
//!
//! ```
//! use propeller_core::{Propeller, PropellerConfig};
//! use propeller_index::FileRecord;
//! use propeller_types::{FileId, InodeAttrs};
//!
//! let mut service = Propeller::new(PropellerConfig::default());
//! service.index_file(FileRecord::new(
//!     FileId::new(1),
//!     InodeAttrs::builder().size(20 << 20).build(),
//! )).unwrap();
//!
//! let hits = service.search_text("size>16m").unwrap();
//! assert_eq!(hits, vec![FileId::new(1)]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod service;

pub use service::{Propeller, PropellerConfig, ServiceStats};

pub use propeller_cluster as cluster;
pub use propeller_index::{FileRecord, IndexKind, IndexOp, IndexSpec};
pub use propeller_query::{Predicate, Query};
