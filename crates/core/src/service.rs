//! The single-node Propeller service.

use std::sync::Arc;

use propeller_cluster::{IndexNode, MasterNode, Request, Response};
use propeller_index::{FileRecord, IndexOp, IndexSpec};
use propeller_obs::TraceContext;
use propeller_query::{next_cursor, Predicate, Query, SearchRequest, SearchResponse};
use propeller_sim::{Clock, SimClock, WallClock};
use propeller_trace::CausalityTracker;
use propeller_types::{
    AcgId, Duration, Error, FileId, NodeId, OpenMode, ProcessId, Result, TraceEvent,
};

// The cluster crate's node state machines are reused verbatim; single-node
// mode simply calls their handlers in-process instead of over the fabric,
// which is exactly the paper's "Master Node and a single instance of Index
// Node run on the same Linux machine" setup.

/// Configuration for the single-node service.
#[derive(Debug, Clone)]
pub struct PropellerConfig {
    /// Lazy-commit timeout (paper default 5 s).
    pub commit_timeout: Duration,
    /// Files per default-allocated ACG (the paper's single-node experiments
    /// use 1000-file groups).
    pub group_capacity: usize,
    /// ACG scale that triggers a background split.
    pub split_threshold: usize,
    /// Virtual clock for modeled experiments; `None` = wall clock.
    pub sim_clock: Option<SimClock>,
    /// Seed for the split partitioner.
    pub seed: u64,
}

impl Default for PropellerConfig {
    fn default() -> Self {
        PropellerConfig {
            commit_timeout: Duration::from_secs(5),
            group_capacity: 1000,
            split_threshold: 50_000,
            sim_clock: None,
            seed: 42,
        }
    }
}

/// Cumulative service statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Index operations accepted.
    pub ops: u64,
    /// Searches served.
    pub searches: u64,
    /// ACG splits performed by maintenance.
    pub splits: u64,
    /// Causality edges flushed into ACGs.
    pub edges_flushed: u64,
}

/// The single-node Propeller file-search service.
///
/// See the crate-level docs for an example.
pub struct Propeller {
    master: MasterNode,
    node: IndexNode,
    node_id: NodeId,
    clock: Arc<dyn Clock>,
    tracker: CausalityTracker,
    stats: ServiceStats,
}

impl std::fmt::Debug for Propeller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Propeller").field("stats", &self.stats).finish()
    }
}

impl Propeller {
    /// Creates a single-node service.
    pub fn new(config: PropellerConfig) -> Self {
        let clock: Arc<dyn Clock> = match &config.sim_clock {
            Some(sim) => Arc::new(sim.clone()),
            None => Arc::new(WallClock::new()),
        };
        let node_id = NodeId::new(1);
        let master = MasterNode::new(
            vec![node_id],
            propeller_cluster::MasterConfig {
                group_capacity: config.group_capacity,
                split_threshold: config.split_threshold,
                ..Default::default()
            },
        );
        let node = IndexNode::new(
            node_id,
            propeller_cluster::IndexNodeConfig {
                commit_timeout: config.commit_timeout,
                partition: propeller_acg::PartitionConfig {
                    seed: config.seed,
                    ..Default::default()
                },
                ..Default::default()
            },
        )
        .with_clock(clock.clone());
        Propeller {
            master,
            node,
            node_id,
            clock,
            tracker: CausalityTracker::new(),
            stats: ServiceStats::default(),
        }
    }

    /// The current service time.
    pub fn now(&self) -> propeller_types::Timestamp {
        self.clock.now()
    }

    /// Service statistics so far.
    pub fn stats(&self) -> &ServiceStats {
        &self.stats
    }

    fn master_call(&mut self, req: Request) -> Result<Response> {
        self.master.handle(req).into_result()
    }

    fn node_call(&mut self, req: Request) -> Result<Response> {
        self.node.handle(req).into_result()
    }

    /// Creates a user-defined named index (B+-tree, hash or K-D). If the
    /// Index Node rejects the spec, the Master registration is rolled
    /// back so the name stays retryable.
    ///
    /// # Errors
    ///
    /// Returns [`Error::IndexExists`] for duplicate names.
    pub fn create_index(&mut self, spec: IndexSpec) -> Result<()> {
        self.master_call(Request::CreateIndex { spec: spec.clone() })?;
        if let Err(e) = self.node_call(Request::CreateIndex { spec: spec.clone() }) {
            let _ = self.master_call(Request::DropIndex { name: spec.name });
            return Err(e);
        }
        Ok(())
    }

    /// Indexes (or re-indexes) one file record inline.
    ///
    /// # Errors
    ///
    /// Propagates WAL failures.
    pub fn index_file(&mut self, record: FileRecord) -> Result<()> {
        self.index_batch(vec![record])
    }

    /// Indexes a batch of file records.
    ///
    /// # Errors
    ///
    /// Propagates routing and WAL failures.
    pub fn index_batch(&mut self, records: Vec<FileRecord>) -> Result<()> {
        let files: Vec<FileId> = records.iter().map(|r| r.file).collect();
        let routes = match self.master_call(Request::ResolveFiles {
            files,
            hints_since: u64::MAX,
            ctx: TraceContext::NONE,
        })? {
            Response::Resolved { rows, .. } => rows,
            other => return Err(Error::Rpc(format!("unexpected response {other:?}"))),
        };
        let now = self.clock.now();
        let mut by_acg: std::collections::HashMap<AcgId, Vec<IndexOp>> =
            std::collections::HashMap::new();
        for (record, (_, acg, _)) in records.into_iter().zip(routes) {
            by_acg.entry(acg).or_default().push(IndexOp::Upsert(record));
        }
        for (acg, ops) in by_acg {
            self.stats.ops += ops.len() as u64;
            self.node_call(Request::IndexBatch { acg, ops, now, ctx: TraceContext::NONE })?;
        }
        Ok(())
    }

    /// Removes a file from the index.
    ///
    /// # Errors
    ///
    /// Propagates routing and WAL failures.
    pub fn remove_file(&mut self, file: FileId) -> Result<()> {
        let routes = match self.master_call(Request::ResolveFiles {
            files: vec![file],
            hints_since: u64::MAX,
            ctx: TraceContext::NONE,
        })? {
            Response::Resolved { rows, .. } => rows,
            other => return Err(Error::Rpc(format!("unexpected response {other:?}"))),
        };
        let now = self.clock.now();
        let (_, acg, _) = routes[0];
        self.stats.ops += 1;
        self.node_call(Request::IndexBatch {
            acg,
            ops: vec![IndexOp::Remove(file)],
            now,
            ctx: TraceContext::NONE,
        })?;
        Ok(())
    }

    /// Runs a full [`SearchRequest`] — the canonical search entry point.
    /// Results always reflect every acknowledged index operation
    /// (commit-then-search). Single-node mode always answers completely,
    /// so [`SearchResponse::complete`] is `true` regardless of the
    /// request's fan-out policy.
    ///
    /// # Errors
    ///
    /// Propagates commit failures and request validation errors.
    pub fn search_with(&mut self, request: &SearchRequest) -> Result<SearchResponse> {
        request.validate()?;
        self.stats.searches += 1;
        let located = match self.master_call(Request::LocateAcgs)? {
            Response::Located(rows) => rows,
            other => return Err(Error::Rpc(format!("unexpected response {other:?}"))),
        };
        let acgs: Vec<AcgId> = located.into_iter().map(|(a, _)| a).collect();
        let now = self.clock.now();
        let req = Request::Search { acgs, request: request.clone(), now, ctx: TraceContext::NONE };
        // `stats.elapsed` comes measured from the (single) Index Node.
        let (hits, stats) = match self.node_call(req)? {
            Response::SearchHits { hits, stats } => (hits, stats),
            other => return Err(Error::Rpc(format!("unexpected response {other:?}"))),
        };
        let cursor = next_cursor(&hits, request.limit);
        Ok(SearchResponse { hits, complete: true, unreachable: Vec::new(), stats, cursor })
    }

    /// Classic searches: the whole matching id set, sorted by file id
    /// (a thin wrapper over [`Propeller::search_with`]).
    ///
    /// # Errors
    ///
    /// Propagates commit failures.
    pub fn search(&mut self, predicate: &Predicate) -> Result<Vec<FileId>> {
        Ok(self.search_with(&SearchRequest::new(predicate.clone()))?.file_ids())
    }

    /// Parses and runs a textual query.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidQuery`] on parse errors.
    pub fn search_text(&mut self, text: &str) -> Result<Vec<FileId>> {
        let q = Query::parse(text, self.clock.now())?;
        self.search(&q.predicate)
    }

    /// Runs a query-directory request (`/foo/bar/?size>1m`).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidQuery`] on parse errors.
    pub fn search_dir(&mut self, path: &str) -> Result<Vec<FileId>> {
        let q = Query::parse_dir(path, self.clock.now())?;
        self.search(&q.predicate)
    }

    // ---- access capture & ACG management -------------------------------

    /// Observes one trace event (the FUSE interposer feed).
    pub fn observe(&mut self, event: TraceEvent) {
        self.tracker.observe(event);
    }

    /// Convenience: observes an open at the current service time.
    pub fn observe_open(&mut self, pid: ProcessId, file: FileId, mode: OpenMode) {
        let now = self.clock.now();
        self.tracker.open(pid, file, mode, now);
    }

    /// Marks a traced process as exited.
    pub fn end_process(&mut self, pid: ProcessId) {
        self.tracker.end_process(pid);
    }

    /// Flushes captured causality edges into the owning ACG graphs.
    /// Returns the number of edges flushed.
    ///
    /// # Errors
    ///
    /// Propagates routing failures (delivery itself is weakly consistent).
    pub fn flush_acg(&mut self) -> Result<usize> {
        let updates = self.tracker.drain_updates();
        if updates.is_empty() {
            return Ok(0);
        }
        let dst: Vec<FileId> = updates.iter().map(|u| u.dst).collect();
        let routes = match self.master_call(Request::ResolveFiles {
            files: dst,
            hints_since: u64::MAX,
            ctx: TraceContext::NONE,
        })? {
            Response::Resolved { rows, .. } => rows,
            other => return Err(Error::Rpc(format!("unexpected response {other:?}"))),
        };
        let mut by_acg: std::collections::HashMap<AcgId, Vec<propeller_trace::EdgeUpdate>> =
            std::collections::HashMap::new();
        for (update, (_, acg, _)) in updates.into_iter().zip(routes) {
            by_acg.entry(acg).or_default().push(update);
        }
        let mut total = 0;
        for (acg, edges) in by_acg {
            total += edges.len();
            let _ = self.node_call(Request::FlushAcgDelta { acg, edges });
        }
        self.stats.edges_flushed += total as u64;
        Ok(total)
    }

    /// Explicitly binds a file group to a fresh ACG — used when partitions
    /// are computed out-of-band (e.g. by offline ACG clustering) or when an
    /// experiment wants one-application-per-group placement.
    ///
    /// # Errors
    ///
    /// Propagates allocation failures.
    pub fn bind_group(&mut self, files: &[FileId]) -> Result<AcgId> {
        let (acg, _) = match self.master_call(Request::AllocateAcg)? {
            Response::AcgAllocated(a, n) => (a, n),
            other => return Err(Error::Rpc(format!("unexpected response {other:?}"))),
        };
        self.master_call(Request::BindFiles { acg, files: files.to_vec() })?;
        Ok(acg)
    }

    /// One maintenance round: commits timed-out caches, processes
    /// heartbeats and performs due ACG splits. Returns the number of
    /// splits performed.
    ///
    /// # Errors
    ///
    /// Propagates split-orchestration failures.
    pub fn maintenance(&mut self) -> Result<usize> {
        let now = self.clock.now();
        let status = self.node_call(Request::Tick { now })?;
        if let Response::Status { acgs, load } = status {
            self.master_call(Request::Heartbeat { node: self.node_id, acgs, load, now })?;
        }
        let work = match self.master_call(Request::TakeSplitWork)? {
            Response::SplitWork(w) => w,
            other => return Err(Error::Rpc(format!("unexpected response {other:?}"))),
        };
        let mut done = 0;
        for (acg, _) in work {
            let (left, right) = match self.node_call(Request::SplitAcg { acg })? {
                Response::SplitHalves { left, right } => (left, right),
                other => return Err(Error::Rpc(format!("unexpected response {other:?}"))),
            };
            if left.is_empty() || right.is_empty() {
                continue;
            }
            let (new_acg, targets) = match self.master_call(Request::AllocateAcg)? {
                Response::AcgAllocated(a, n) => (a, n),
                other => return Err(Error::Rpc(format!("unexpected response {other:?}"))),
            };
            let (records, edges) =
                match self.node_call(Request::ExtractAcgPart { acg, files: right.clone() })? {
                    Response::AcgPart { records, edges } => (records, edges),
                    other => return Err(Error::Rpc(format!("unexpected response {other:?}"))),
                };
            self.node_call(Request::InstallAcg { acg: new_acg, records, edges })?;
            // Two-phase hand-off: the extract retained (and tombstoned)
            // the part on the source; drop it only now that the install
            // landed, then commit the remap.
            self.node_call(Request::RemoveAcgPart { acg, files: right.clone() })?;
            self.master_call(Request::CommitSplit {
                acg,
                kept: left,
                new_acg,
                moved: right,
                targets,
            })?;
            done += 1;
        }
        self.stats.splits += done as u64;
        Ok(done)
    }

    /// Number of ACGs currently allocated.
    pub fn acg_count(&self) -> usize {
        self.master.acg_count()
    }

    /// Total index operations buffered (acknowledged but not yet committed)
    /// across all groups.
    pub fn pending_ops(&self) -> usize {
        match self.node.heartbeat(self.clock.now()) {
            Request::Heartbeat { acgs, .. } => acgs.iter().map(|a| a.pending_ops).sum(),
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use propeller_types::{InodeAttrs, Timestamp, Value};

    fn record(file: u64, size: u64) -> FileRecord {
        FileRecord::new(FileId::new(file), InodeAttrs::builder().size(size).build())
    }

    #[test]
    fn index_then_search() {
        let mut p = Propeller::new(PropellerConfig::default());
        p.index_batch((0..100).map(|i| record(i, i << 20)).collect()).unwrap();
        let hits = p.search_text("size>16m").unwrap();
        assert_eq!(hits.len(), 83);
        assert_eq!(p.stats().ops, 100);
        assert_eq!(p.stats().searches, 1);
    }

    #[test]
    fn search_sees_every_acknowledged_update_immediately() {
        // The paper's real-time guarantee: no crawling delay, recall = 100%.
        let mut p = Propeller::new(PropellerConfig::default());
        for i in 0..50 {
            p.index_file(record(i, 1 << 30)).unwrap();
            let hits = p.search_text("size>512m").unwrap();
            assert_eq!(hits.len() as u64, i + 1, "update {i} must be visible");
        }
    }

    #[test]
    fn update_then_search_reflects_new_attributes() {
        let mut p = Propeller::new(PropellerConfig::default());
        p.index_file(record(1, 1 << 10)).unwrap();
        assert!(p.search_text("size>1m").unwrap().is_empty());
        p.index_file(record(1, 1 << 30)).unwrap(); // file grew
        assert_eq!(p.search_text("size>1m").unwrap(), vec![FileId::new(1)]);
    }

    #[test]
    fn remove_file_disappears_from_results() {
        let mut p = Propeller::new(PropellerConfig::default());
        p.index_batch((0..10).map(|i| record(i, 1 << 20)).collect()).unwrap();
        p.remove_file(FileId::new(4)).unwrap();
        let hits = p.search_text("size>0").unwrap();
        assert_eq!(hits.len(), 9);
        assert!(!hits.contains(&FileId::new(4)));
    }

    #[test]
    fn custom_index_and_query() {
        let mut p = Propeller::new(PropellerConfig::default());
        p.create_index(IndexSpec::btree("energy", propeller_types::AttrName::custom("energy")))
            .unwrap();
        for i in 0..10 {
            let rec = record(i, 1).with_custom("energy", Value::F64(-(i as f64)));
            p.index_file(rec).unwrap();
        }
        let hits = p.search_text("energy<-7").unwrap();
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn trace_capture_and_flush() {
        let mut p = Propeller::new(PropellerConfig::default());
        p.index_batch((0..3).map(|i| record(i, 1)).collect()).unwrap();
        let pid = ProcessId::new(7);
        p.observe_open(pid, FileId::new(0), OpenMode::Read);
        p.observe_open(pid, FileId::new(1), OpenMode::Read);
        p.observe_open(pid, FileId::new(2), OpenMode::Write);
        p.end_process(pid);
        assert_eq!(p.flush_acg().unwrap(), 2);
        assert_eq!(p.stats().edges_flushed, 2);
        assert_eq!(p.flush_acg().unwrap(), 0, "tracker drained");
    }

    #[test]
    fn bind_group_controls_placement() {
        let mut p = Propeller::new(PropellerConfig::default());
        let files: Vec<FileId> = (100..110).map(FileId::new).collect();
        let acg = p.bind_group(&files).unwrap();
        assert!(acg.raw() > 0);
        // Indexing those files lands in the bound group, not the open one.
        p.index_batch(files.iter().map(|f| record(f.raw(), 5)).collect()).unwrap();
        assert_eq!(p.acg_count(), 1);
    }

    #[test]
    fn maintenance_splits_oversized_groups() {
        let mut p = Propeller::new(PropellerConfig {
            split_threshold: 40,
            group_capacity: 1000,
            ..PropellerConfig::default()
        });
        p.index_batch((0..100).map(|i| record(i, 1)).collect()).unwrap();
        let splits = p.maintenance().unwrap();
        assert!(splits >= 1);
        assert!(p.acg_count() >= 2);
        assert_eq!(p.search_text("size>0").unwrap().len(), 100);
    }

    #[test]
    fn search_with_topk_sort_projection_and_cursor() {
        use propeller_query::{Projection, SortKey};
        let mut p = Propeller::new(PropellerConfig {
            group_capacity: 100, // several ACGs, so the merge path runs
            ..PropellerConfig::default()
        });
        p.index_batch((0..500).map(|i| record(i, i << 20)).collect()).unwrap();

        // Top-5 largest files, with sizes projected back.
        let req = SearchRequest::parse("size>0", Timestamp::EPOCH)
            .unwrap()
            .with_limit(5)
            .sorted_by(SortKey::Descending(propeller_types::AttrName::Size))
            .with_projection(Projection::Attrs(vec![propeller_types::AttrName::Size]));
        let resp = p.search_with(&req).unwrap();
        let files: Vec<u64> = resp.hits.iter().map(|h| h.file.raw()).collect();
        assert_eq!(files, vec![499, 498, 497, 496, 495]);
        assert!(resp.complete);
        assert!(resp.cursor.is_some(), "full page => continuation cursor");
        assert_eq!(
            resp.hits[0].attrs,
            vec![(propeller_types::AttrName::Size, Value::U64(499 << 20))]
        );
        assert!(resp.stats.retained_peak <= 5, "O(k) bound: {}", resp.stats.retained_peak);
        assert_eq!(resp.stats.acgs_consulted, 5, "500 files / 100 per ACG");

        // Paginate the rest and check exhaustive disjoint coverage.
        let mut all = files;
        let mut cursor = resp.cursor;
        while let Some(c) = cursor {
            let resp = p.search_with(&req.clone().after(c)).unwrap();
            all.extend(resp.hits.iter().map(|h| h.file.raw()));
            cursor = resp.cursor;
        }
        assert_eq!(all, (1..500).rev().collect::<Vec<u64>>(), "file 0 has size 0");
    }

    #[test]
    fn failed_index_create_rolls_back_master_registration() {
        let mut p = Propeller::new(PropellerConfig::default());
        p.index_file(record(1, 1)).unwrap();
        // A K-D spec with no attributes is rejected by the node.
        let bad = IndexSpec::kd("broken", vec![]);
        assert!(p.create_index(bad).is_err());
        // The name must remain available after the rollback.
        let good = IndexSpec::btree("broken", propeller_types::AttrName::Uid);
        assert!(p.create_index(good).is_ok());
    }

    #[test]
    fn modeled_mode_uses_virtual_time() {
        let sim = SimClock::new();
        let p = Propeller::new(PropellerConfig {
            sim_clock: Some(sim.clone()),
            ..PropellerConfig::default()
        });
        assert_eq!(p.now(), Timestamp::EPOCH);
        sim.advance(Duration::from_secs(100));
        assert_eq!(p.now(), Timestamp::from_secs(100));
    }

    #[test]
    fn query_directory_interface() {
        let mut p = Propeller::new(PropellerConfig::default());
        p.index_file(record(1, 2 << 20)).unwrap();
        let hits = p.search_dir("/data/?size>1m").unwrap();
        assert_eq!(hits, vec![FileId::new(1)]);
        assert!(p.search_dir("/no-question-mark").is_err());
    }
}
