//! Analytic disk cost model.

use propeller_sim::Latency;
use propeller_types::Duration;
use rand::Rng;

/// Mechanical/electrical parameters of a storage device.
///
/// The paper's testbed uses Seagate Barracuda ST31000524AS drives (7200 RPM,
/// 32 MB cache); [`DiskProfile::hdd_7200`] models that class of device.
///
/// # Examples
///
/// ```
/// use propeller_storage::DiskProfile;
///
/// let hdd = DiskProfile::hdd_7200();
/// let ssd = DiskProfile::ssd();
/// assert!(hdd.random_access_mean() > ssd.random_access_mean());
/// ```
#[derive(Debug, Clone)]
pub struct DiskProfile {
    /// Seek time distribution for random access.
    pub seek: Latency,
    /// Rotational delay distribution (zero for SSDs).
    pub rotational: Latency,
    /// Sustained transfer rate in bytes/second.
    pub transfer_rate: u64,
    /// Fixed controller/command overhead per request.
    pub command_overhead: Latency,
}

impl DiskProfile {
    /// A 7200 RPM desktop hard drive (≈8.5 ms average seek, 4.17 ms average
    /// rotational delay, ≈120 MB/s transfer).
    pub fn hdd_7200() -> Self {
        DiskProfile {
            seek: Latency::uniform(Duration::from_micros(2_000), Duration::from_micros(15_000)),
            rotational: Latency::uniform(Duration::ZERO, Duration::from_micros(8_333)),
            transfer_rate: 120_000_000,
            command_overhead: Latency::constant(Duration::from_micros(100)),
        }
    }

    /// A 5400 RPM laptop hard drive (the paper's Mac Mini baseline disk).
    pub fn hdd_5400() -> Self {
        DiskProfile {
            seek: Latency::uniform(Duration::from_micros(3_000), Duration::from_micros(18_000)),
            rotational: Latency::uniform(Duration::ZERO, Duration::from_micros(11_111)),
            transfer_rate: 90_000_000,
            command_overhead: Latency::constant(Duration::from_micros(120)),
        }
    }

    /// A SATA SSD (no mechanical latency).
    pub fn ssd() -> Self {
        DiskProfile {
            seek: Latency::zero(),
            rotational: Latency::zero(),
            transfer_rate: 500_000_000,
            command_overhead: Latency::uniform(
                Duration::from_micros(40),
                Duration::from_micros(120),
            ),
        }
    }

    /// Mean cost of one random 4 KiB access (no sampling).
    pub fn random_access_mean(&self) -> Duration {
        self.seek.mean()
            + self.rotational.mean()
            + self.command_overhead.mean()
            + self.transfer_mean(4096)
    }

    /// Mean transfer time for `bytes` (no sampling).
    pub fn transfer_mean(&self, bytes: u64) -> Duration {
        Duration::from_secs_f64(bytes as f64 / self.transfer_rate as f64)
    }
}

/// A disk instance: samples operation costs from a [`DiskProfile`].
///
/// The disk does not own a clock — it returns [`Duration`]s and the caller
/// charges them wherever appropriate (virtual clock in modeled mode,
/// statistics in measured mode).
///
/// # Examples
///
/// ```
/// use propeller_sim::seeded_rng;
/// use propeller_storage::{Disk, DiskProfile};
///
/// let mut disk = Disk::new(DiskProfile::ssd());
/// let mut rng = seeded_rng(1);
/// let d = disk.random_read(4096, &mut rng);
/// assert!(!d.is_zero());
/// ```
#[derive(Debug, Clone)]
pub struct Disk {
    profile: DiskProfile,
    reads: u64,
    writes: u64,
    bytes_read: u64,
    bytes_written: u64,
}

impl Disk {
    /// Creates a disk with the given profile.
    pub fn new(profile: DiskProfile) -> Self {
        Disk { profile, reads: 0, writes: 0, bytes_read: 0, bytes_written: 0 }
    }

    /// The device profile.
    pub fn profile(&self) -> &DiskProfile {
        &self.profile
    }

    /// Cost of one random read of `bytes`.
    pub fn random_read<R: Rng + ?Sized>(&mut self, bytes: u64, rng: &mut R) -> Duration {
        self.reads += 1;
        self.bytes_read += bytes;
        self.profile.seek.sample(rng)
            + self.profile.rotational.sample(rng)
            + self.profile.command_overhead.sample(rng)
            + self.profile.transfer_mean(bytes)
    }

    /// Cost of one random write of `bytes`.
    pub fn random_write<R: Rng + ?Sized>(&mut self, bytes: u64, rng: &mut R) -> Duration {
        self.writes += 1;
        self.bytes_written += bytes;
        self.profile.seek.sample(rng)
            + self.profile.rotational.sample(rng)
            + self.profile.command_overhead.sample(rng)
            + self.profile.transfer_mean(bytes)
    }

    /// Cost of a sequential read of `bytes` (no seek, amortised rotation).
    pub fn sequential_read<R: Rng + ?Sized>(&mut self, bytes: u64, rng: &mut R) -> Duration {
        self.reads += 1;
        self.bytes_read += bytes;
        self.profile.command_overhead.sample(rng) + self.profile.transfer_mean(bytes)
    }

    /// Cost of a sequential write (append) of `bytes`.
    pub fn sequential_write<R: Rng + ?Sized>(&mut self, bytes: u64, rng: &mut R) -> Duration {
        self.writes += 1;
        self.bytes_written += bytes;
        self.profile.command_overhead.sample(rng) + self.profile.transfer_mean(bytes)
    }

    /// `(reads, writes, bytes_read, bytes_written)` counters.
    pub fn stats(&self) -> (u64, u64, u64, u64) {
        (self.reads, self.writes, self.bytes_read, self.bytes_written)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use propeller_sim::seeded_rng;

    #[test]
    fn hdd_random_slower_than_sequential() {
        let mut disk = Disk::new(DiskProfile::hdd_7200());
        let mut rng = seeded_rng(2);
        let rand_total: Duration = (0..200).map(|_| disk.random_read(4096, &mut rng)).sum();
        let seq_total: Duration = (0..200).map(|_| disk.sequential_read(4096, &mut rng)).sum();
        assert!(
            rand_total > seq_total * 5,
            "random {rand_total} should dwarf sequential {seq_total}"
        );
    }

    #[test]
    fn ssd_faster_than_hdd_for_random_io() {
        let mut hdd = Disk::new(DiskProfile::hdd_7200());
        let mut ssd = Disk::new(DiskProfile::ssd());
        let mut rng = seeded_rng(3);
        let hdd_total: Duration = (0..100).map(|_| hdd.random_read(4096, &mut rng)).sum();
        let ssd_total: Duration = (0..100).map(|_| ssd.random_read(4096, &mut rng)).sum();
        assert!(hdd_total > ssd_total * 10);
    }

    #[test]
    fn transfer_scales_with_size() {
        let p = DiskProfile::hdd_7200();
        assert!(p.transfer_mean(1 << 20) > p.transfer_mean(4096) * 100);
    }

    #[test]
    fn stats_accumulate() {
        let mut disk = Disk::new(DiskProfile::ssd());
        let mut rng = seeded_rng(4);
        disk.random_read(100, &mut rng);
        disk.random_write(200, &mut rng);
        disk.sequential_write(300, &mut rng);
        let (r, w, br, bw) = disk.stats();
        assert_eq!((r, w), (1, 2));
        assert_eq!((br, bw), (100, 500));
    }

    #[test]
    fn deterministic_under_seeded_rng() {
        let run = || {
            let mut disk = Disk::new(DiskProfile::hdd_7200());
            let mut rng = seeded_rng(7);
            (0..10).map(|_| disk.random_read(4096, &mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
