//! Storage substrate: analytic cost models and the shared namespace.
//!
//! The paper's testbed is physical: 7200 RPM HDDs under Ext4, a GbE switch,
//! and several comparison file systems (Table VI). This crate rebuilds that
//! layer as *cost models* driven by the virtual clock, plus a real in-memory
//! shared-storage namespace:
//!
//! * [`Disk`] / [`DiskProfile`] — seek + rotation + transfer HDD/SSD model,
//! * [`PageIoModel`] — B+-tree/page-level I/O cost math used to model index
//!   maintenance at 50–100 M-file scale (Figures 2 and 8, Table III),
//! * [`FsModel`] / [`FsCostProfile`] — per-operation cost profiles for the
//!   Table VI file systems (Ext4, Btrfs, PTFS, NTFS-3g, ZFS-fuse, and the
//!   Propeller FUSE client with inline indexing),
//! * [`Network`] — GbE latency/bandwidth model for the cluster fabric,
//! * [`SharedStorage`] — the shared namespace under the Propeller cluster
//!   (paths, attributes, snapshots).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod costs;
mod disk;
mod fsmodel;
mod net;
mod shared;

pub use costs::{GroupIndexModel, PageIoModel};
pub use disk::{Disk, DiskProfile};
pub use fsmodel::{FsCostProfile, FsModel, FsOp};
pub use net::Network;
pub use shared::SharedStorage;
