//! The shared storage namespace under a Propeller cluster.
//!
//! The paper's architecture (Fig. 5) keeps "file raw data and file
//! metadata … managed by the underlying shared storage"; Propeller only
//! owns the index layer. [`SharedStorage`] is that underlying layer: a
//! thread-safe path → (id, attributes) namespace with snapshot import
//! (used by the dynamic-namespace experiments, which import an 89 k-file
//! Ubuntu image) and a blob area for persisted Master metadata.

use std::collections::HashMap;

use parking_lot::RwLock;
use propeller_types::{Error, FileId, InodeAttrs, Result, Timestamp};

#[derive(Debug, Default)]
struct Inner {
    by_path: HashMap<String, FileId>,
    by_id: HashMap<FileId, (String, InodeAttrs)>,
    next_id: u64,
    /// Named blobs (Master Node metadata flushes land here).
    blobs: HashMap<String, Vec<u8>>,
}

/// A thread-safe shared file-system namespace.
///
/// # Examples
///
/// ```
/// use propeller_storage::SharedStorage;
/// use propeller_types::InodeAttrs;
///
/// let storage = SharedStorage::new();
/// let id = storage.create("/data/a.log", InodeAttrs::builder().size(100).build()).unwrap();
/// assert_eq!(storage.stat(id).unwrap().size, 100);
/// assert_eq!(storage.lookup("/data/a.log"), Some(id));
/// assert_eq!(storage.file_count(), 1);
/// ```
#[derive(Debug, Default)]
pub struct SharedStorage {
    inner: RwLock<Inner>,
}

impl SharedStorage {
    /// Creates an empty namespace.
    pub fn new() -> Self {
        SharedStorage::default()
    }

    /// Creates a file, returning its id.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] if the path already exists.
    pub fn create(&self, path: &str, attrs: InodeAttrs) -> Result<FileId> {
        let mut inner = self.inner.write();
        if inner.by_path.contains_key(path) {
            return Err(Error::Config(format!("path {path:?} already exists")));
        }
        let id = FileId::new(inner.next_id);
        inner.next_id += 1;
        inner.by_path.insert(path.to_owned(), id);
        inner.by_id.insert(id, (path.to_owned(), attrs));
        Ok(id)
    }

    /// Creates the file if absent, otherwise updates its attributes.
    pub fn upsert(&self, path: &str, attrs: InodeAttrs) -> FileId {
        let mut inner = self.inner.write();
        if let Some(&id) = inner.by_path.get(path) {
            inner.by_id.insert(id, (path.to_owned(), attrs));
            return id;
        }
        let id = FileId::new(inner.next_id);
        inner.next_id += 1;
        inner.by_path.insert(path.to_owned(), id);
        inner.by_id.insert(id, (path.to_owned(), attrs));
        id
    }

    /// Updates attributes in place via a closure.
    ///
    /// # Errors
    ///
    /// Returns [`Error::FileNotFound`] if the id is unknown.
    pub fn update<F: FnOnce(&mut InodeAttrs)>(&self, id: FileId, f: F) -> Result<()> {
        let mut inner = self.inner.write();
        match inner.by_id.get_mut(&id) {
            Some((_, attrs)) => {
                f(attrs);
                Ok(())
            }
            None => Err(Error::FileNotFound(id)),
        }
    }

    /// Records a write of `bytes` at `now`: grows the size and touches
    /// mtime (the attribute change Propeller must re-index in real time).
    ///
    /// # Errors
    ///
    /// Returns [`Error::FileNotFound`] if the id is unknown.
    pub fn append(&self, id: FileId, bytes: u64, now: Timestamp) -> Result<()> {
        self.update(id, |attrs| {
            attrs.size += bytes;
            attrs.mtime = now;
        })
    }

    /// Deletes a file by id.
    ///
    /// # Errors
    ///
    /// Returns [`Error::FileNotFound`] if the id is unknown.
    pub fn delete(&self, id: FileId) -> Result<()> {
        let mut inner = self.inner.write();
        match inner.by_id.remove(&id) {
            Some((path, _)) => {
                inner.by_path.remove(&path);
                Ok(())
            }
            None => Err(Error::FileNotFound(id)),
        }
    }

    /// Resolves a path to its id.
    pub fn lookup(&self, path: &str) -> Option<FileId> {
        self.inner.read().by_path.get(path).copied()
    }

    /// Stats a file by id.
    ///
    /// # Errors
    ///
    /// Returns [`Error::FileNotFound`] if the id is unknown.
    pub fn stat(&self, id: FileId) -> Result<InodeAttrs> {
        self.inner.read().by_id.get(&id).map(|(_, a)| *a).ok_or(Error::FileNotFound(id))
    }

    /// The path of a file by id.
    pub fn path_of(&self, id: FileId) -> Option<String> {
        self.inner.read().by_id.get(&id).map(|(p, _)| p.clone())
    }

    /// Number of files in the namespace.
    pub fn file_count(&self) -> usize {
        self.inner.read().by_id.len()
    }

    /// Snapshot of all `(id, path, attrs)` rows (brute-force scans and
    /// crawler baselines use this).
    pub fn snapshot(&self) -> Vec<(FileId, String, InodeAttrs)> {
        let inner = self.inner.read();
        let mut rows: Vec<(FileId, String, InodeAttrs)> =
            inner.by_id.iter().map(|(&id, (path, attrs))| (id, path.clone(), *attrs)).collect();
        rows.sort_by_key(|(id, _, _)| *id);
        rows
    }

    /// Bulk-imports `(path, attrs)` rows (snapshot import in Fig. 11's
    /// dynamic-namespace test). Existing paths are overwritten.
    pub fn import<I: IntoIterator<Item = (String, InodeAttrs)>>(&self, rows: I) -> Vec<FileId> {
        rows.into_iter().map(|(path, attrs)| self.upsert(&path, attrs)).collect()
    }

    /// Stores a named metadata blob (Master Node periodic flush target).
    pub fn put_blob(&self, name: &str, data: Vec<u8>) {
        self.inner.write().blobs.insert(name.to_owned(), data);
    }

    /// Fetches a named metadata blob.
    pub fn get_blob(&self, name: &str) -> Option<Vec<u8>> {
        self.inner.read().blobs.get(name).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use propeller_types::Duration;

    #[test]
    fn create_lookup_stat_delete() {
        let s = SharedStorage::new();
        let id = s.create("/a", InodeAttrs::builder().size(5).build()).unwrap();
        assert_eq!(s.lookup("/a"), Some(id));
        assert_eq!(s.stat(id).unwrap().size, 5);
        assert_eq!(s.path_of(id).as_deref(), Some("/a"));
        s.delete(id).unwrap();
        assert_eq!(s.lookup("/a"), None);
        assert!(matches!(s.stat(id), Err(Error::FileNotFound(_))));
        assert!(s.delete(id).is_err());
    }

    #[test]
    fn duplicate_create_rejected_upsert_allowed() {
        let s = SharedStorage::new();
        s.create("/a", InodeAttrs::default()).unwrap();
        assert!(s.create("/a", InodeAttrs::default()).is_err());
        let id1 = s.lookup("/a").unwrap();
        let id2 = s.upsert("/a", InodeAttrs::builder().size(9).build());
        assert_eq!(id1, id2);
        assert_eq!(s.stat(id1).unwrap().size, 9);
    }

    #[test]
    fn append_touches_size_and_mtime() {
        let s = SharedStorage::new();
        let id = s.create("/log", InodeAttrs::default()).unwrap();
        let t = Timestamp::from_secs(50);
        s.append(id, 1024, t).unwrap();
        s.append(id, 1024, t + Duration::from_secs(1)).unwrap();
        let attrs = s.stat(id).unwrap();
        assert_eq!(attrs.size, 2048);
        assert_eq!(attrs.mtime, t + Duration::from_secs(1));
    }

    #[test]
    fn import_and_snapshot() {
        let s = SharedStorage::new();
        let rows: Vec<(String, InodeAttrs)> = (0..100)
            .map(|i| (format!("/img/f{i}"), InodeAttrs::builder().size(i).build()))
            .collect();
        let ids = s.import(rows);
        assert_eq!(ids.len(), 100);
        assert_eq!(s.file_count(), 100);
        let snap = s.snapshot();
        assert_eq!(snap.len(), 100);
        assert!(snap.windows(2).all(|w| w[0].0 < w[1].0), "sorted by id");
    }

    #[test]
    fn blobs_round_trip() {
        let s = SharedStorage::new();
        assert_eq!(s.get_blob("meta"), None);
        s.put_blob("meta", vec![1, 2, 3]);
        assert_eq!(s.get_blob("meta"), Some(vec![1, 2, 3]));
    }

    #[test]
    fn concurrent_creates_get_unique_ids() {
        let s = std::sync::Arc::new(SharedStorage::new());
        std::thread::scope(|scope| {
            for t in 0..4 {
                let s = s.clone();
                scope.spawn(move || {
                    for i in 0..250 {
                        s.create(&format!("/t{t}/f{i}"), InodeAttrs::default()).unwrap();
                    }
                });
            }
        });
        assert_eq!(s.file_count(), 1000);
        let ids: std::collections::HashSet<FileId> =
            s.snapshot().into_iter().map(|(id, _, _)| id).collect();
        assert_eq!(ids.len(), 1000);
    }
}
