//! Page-level index I/O cost math.
//!
//! The paper's scalability argument (Figures 2 and 8, Table III) is
//! structural: updating a B+-tree of `N` entries costs `O(log N)` page
//! accesses, only some of which hit the buffer pool, so a *global* index
//! over 50–100 M files pays far more disk I/O per update than a 1000-file
//! per-ACG index whose pages fit in RAM. [`PageIoModel`] captures exactly
//! that relationship so modeled-mode experiments can run at paper scale.

use propeller_sim::seeded_rng;
use propeller_types::Duration;
use rand::Rng;

use crate::disk::Disk;

/// Analytic page-I/O model for a B+-tree-style index.
///
/// # Examples
///
/// ```
/// use propeller_storage::{Disk, DiskProfile, PageIoModel};
///
/// let model = PageIoModel::default();
/// // A 100-million-entry tree is deeper than a 1000-entry tree.
/// assert!(model.tree_depth(100_000_000) > model.tree_depth(1_000));
/// ```
#[derive(Debug, Clone)]
pub struct PageIoModel {
    /// Page size in bytes (4 KiB default).
    pub page_size: u64,
    /// Keys per interior page (fan-out).
    pub fanout: u64,
    /// Entries per leaf page.
    pub leaf_entries: u64,
    /// Bytes of buffer pool available to cache hot pages.
    pub buffer_bytes: u64,
    /// Deterministic seed for cache-miss sampling.
    pub seed: u64,
}

impl Default for PageIoModel {
    fn default() -> Self {
        PageIoModel {
            page_size: 4096,
            fanout: 128,
            leaf_entries: 64,
            // The paper configures MySQL with a 2 GB buffer pool.
            buffer_bytes: 2 << 30,
            seed: 0xC0FFEE,
        }
    }
}

impl PageIoModel {
    /// Depth (levels) of a B+-tree with `entries` entries.
    pub fn tree_depth(&self, entries: u64) -> u32 {
        if entries <= self.leaf_entries {
            return 1;
        }
        let mut pages = entries.div_ceil(self.leaf_entries);
        let mut depth = 1;
        while pages > 1 {
            pages = pages.div_ceil(self.fanout);
            depth += 1;
        }
        depth
    }

    /// Total pages (leaves + interior) of a tree with `entries` entries.
    pub fn tree_pages(&self, entries: u64) -> u64 {
        let mut pages = entries.div_ceil(self.leaf_entries).max(1);
        let mut total = pages;
        while pages > 1 {
            pages = pages.div_ceil(self.fanout);
            total += pages;
        }
        total
    }

    /// Fraction of the tree's pages resident in the buffer pool. The upper
    /// levels are pinned first (they are the hottest), so small trees are
    /// fully cached and large trees miss mostly on leaves.
    pub fn cached_fraction(&self, entries: u64) -> f64 {
        let total = self.tree_pages(entries);
        let cached = self.buffer_bytes / self.page_size;
        (cached as f64 / total as f64).min(1.0)
    }

    /// Expected number of *disk* page reads for one point update of a tree
    /// with `entries` entries: one access per level, each missing the
    /// buffer pool with the model's miss probability (upper levels always
    /// hit; leaves hit with the cached fraction).
    pub fn update_page_misses<R: Rng + ?Sized>(&self, entries: u64, rng: &mut R) -> u32 {
        let depth = self.tree_depth(entries);
        let cached = self.cached_fraction(entries);
        let mut misses = 0;
        // Interior levels: cached unless the tree drastically exceeds the
        // pool; model interior residency as min(1, cached * fanout).
        let interior_hit = (cached * self.fanout as f64).min(1.0);
        for _ in 0..depth.saturating_sub(1) {
            if rng.gen::<f64>() > interior_hit {
                misses += 1;
            }
        }
        // Leaf level.
        if rng.gen::<f64>() > cached {
            misses += 1;
        }
        misses
    }

    /// Models the disk time of `updates` random point-updates against an
    /// index of `entries` entries. Every update reads its missing pages,
    /// appends a small redo-log record sequentially, and — when the leaf
    /// missed the buffer pool — pays an amortised dirty-page write-back.
    /// A fully-cached index therefore costs only the log appends, which is
    /// the locality effect Propeller exploits.
    pub fn update_run_cost(&self, entries: u64, updates: u64, disk: &mut Disk) -> Duration {
        let mut rng = seeded_rng(self.seed ^ entries ^ updates);
        let mut total = Duration::ZERO;
        let cached = self.cached_fraction(entries);
        for _ in 0..updates {
            let misses = self.update_page_misses(entries, &mut rng);
            for _ in 0..misses {
                total += disk.random_read(self.page_size, &mut rng);
            }
            // Redo-log append (group committed; tiny sequential write).
            total += disk.sequential_write(256, &mut rng);
            // Dirty-page write-back is only synchronous when the pool is
            // thrashing (misses force evictions of dirty pages).
            if rng.gen::<f64>() < 0.5 * (1.0 - cached) {
                total += disk.random_write(self.page_size, &mut rng);
            }
        }
        total
    }

    /// Models the disk time of one range scan returning `matched` of
    /// `entries` entries: a root-to-leaf descent plus a sequential leaf
    /// scan, with misses governed by the cached fraction.
    pub fn scan_cost(&self, entries: u64, matched: u64, disk: &mut Disk) -> Duration {
        let mut rng = seeded_rng(self.seed ^ entries.rotate_left(17) ^ matched);
        let mut total = Duration::ZERO;
        let cached = self.cached_fraction(entries);
        let depth = self.tree_depth(entries);
        for _ in 0..depth {
            if rng.gen::<f64>() > cached {
                total += disk.random_read(self.page_size, &mut rng);
            }
        }
        let leaf_pages = matched.div_ceil(self.leaf_entries);
        for _ in 0..leaf_pages {
            if rng.gen::<f64>() > cached {
                total += disk.sequential_read(self.page_size, &mut rng);
            }
        }
        total
    }
}

/// Whole-group index I/O model (the paper's Figure 2 sensitivity study).
///
/// The Propeller prototype serialises each group's indices as regular files
/// (the K-D tree "must be loaded entirely in RAM" per §V-E), so touching a
/// *cold* partition costs a sequential load proportional to the partition's
/// file count, and evicting a dirty partition costs the matching store.
/// In-RAM updates are then nearly free. This is exactly the cost structure
/// behind Figure 2: execution time grows with partition size (2a) and with
/// the number of distinct partitions touched (2b).
#[derive(Debug, Clone)]
pub struct GroupIndexModel {
    /// Serialized index bytes per file entry (all three index kinds
    /// combined).
    pub bytes_per_entry: u64,
    /// In-RAM cost of applying one update to a loaded group.
    pub ram_update: Duration,
    /// How many groups fit in RAM at once (LRU).
    pub resident_groups: usize,
}

impl Default for GroupIndexModel {
    fn default() -> Self {
        GroupIndexModel {
            bytes_per_entry: 400,
            ram_update: Duration::from_micros(40),
            resident_groups: 2,
        }
    }
}

impl GroupIndexModel {
    /// Cost of loading (or storing) one whole group of `files` entries.
    pub fn group_transfer_cost<R: Rng + ?Sized>(
        &self,
        files: u64,
        disk: &mut Disk,
        rng: &mut R,
    ) -> Duration {
        disk.sequential_read(files * self.bytes_per_entry, rng) + disk.random_read(4096, rng)
        // initial seek to the index file
    }

    /// Models a run of `updates` *inter-partition* updates: each update
    /// involves all `groups` partitions of `files_per_group` entries each
    /// (the paper's Figure 2(b) pattern — "updates involving a large
    /// number of partitions"). An LRU of
    /// [`GroupIndexModel::resident_groups`] groups stays loaded, so runs
    /// touching at most that many partitions stay in RAM while wider
    /// updates thrash.
    pub fn striped_update_run(
        &self,
        groups: usize,
        files_per_group: u64,
        updates: u64,
        disk: &mut Disk,
        seed: u64,
    ) -> Duration {
        let mut rng = seeded_rng(seed);
        let mut total = Duration::ZERO;
        let mut resident: Vec<usize> = Vec::new(); // LRU, most recent last
        for _ in 0..updates {
            for g in 0..groups.max(1) {
                if let Some(pos) = resident.iter().position(|&r| r == g) {
                    resident.remove(pos);
                } else {
                    // Miss: load the group; evict (store) the coldest if full.
                    total += self.group_transfer_cost(files_per_group, disk, &mut rng);
                    if resident.len() >= self.resident_groups {
                        resident.remove(0);
                        total += self.group_transfer_cost(files_per_group, disk, &mut rng);
                    }
                }
                resident.push(g);
                total += self.ram_update;
            }
        }
        total
    }

    /// Models `updates` random updates over a dataset of `total_files`
    /// partitioned into groups of `files_per_group` (Figure 2(a) pattern:
    /// far more groups than fit in RAM, so essentially every update pays a
    /// group load).
    pub fn random_update_run(
        &self,
        total_files: u64,
        files_per_group: u64,
        updates: u64,
        disk: &mut Disk,
        seed: u64,
    ) -> Duration {
        let groups = (total_files / files_per_group.max(1)).max(1);
        let mut rng = seeded_rng(seed);
        let mut total = Duration::ZERO;
        let mut resident: Vec<u64> = Vec::new();
        for _ in 0..updates {
            let g = rng.gen_range(0..groups);
            if let Some(pos) = resident.iter().position(|&r| r == g) {
                resident.remove(pos);
            } else {
                total += self.group_transfer_cost(files_per_group, disk, &mut rng);
                if resident.len() >= self.resident_groups {
                    resident.remove(0);
                    total += self.group_transfer_cost(files_per_group, disk, &mut rng);
                }
            }
            resident.push(g);
            total += self.ram_update;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::DiskProfile;

    #[test]
    fn depth_monotone_in_entries() {
        let m = PageIoModel::default();
        assert_eq!(m.tree_depth(10), 1);
        let mut last = 0;
        for entries in [1_000u64, 100_000, 10_000_000, 1_000_000_000] {
            let d = m.tree_depth(entries);
            assert!(d >= last);
            last = d;
        }
        assert!(m.tree_depth(100_000_000) >= 4);
    }

    #[test]
    fn small_trees_fully_cached() {
        let m = PageIoModel::default();
        assert_eq!(m.cached_fraction(1_000), 1.0);
        assert!(m.cached_fraction(500_000_000) < 0.2);
    }

    #[test]
    fn small_index_updates_cost_less_than_huge_index_updates() {
        let m = PageIoModel::default();
        let mut disk_small = Disk::new(DiskProfile::hdd_7200());
        let mut disk_big = Disk::new(DiskProfile::hdd_7200());
        let small = m.update_run_cost(1_000, 10_000, &mut disk_small);
        let big = m.update_run_cost(100_000_000, 10_000, &mut disk_big);
        assert!(big > small * 10, "100M-entry index ({big}) must dwarf 1k-entry index ({small})");
    }

    #[test]
    fn larger_dataset_scans_cost_more() {
        let m = PageIoModel::default();
        let mut d1 = Disk::new(DiskProfile::hdd_7200());
        let mut d2 = Disk::new(DiskProfile::hdd_7200());
        let small = m.scan_cost(10_000_000, 1_000, &mut d1);
        let large = m.scan_cost(500_000_000, 1_000, &mut d2);
        assert!(large >= small);
    }

    #[test]
    fn pages_exceed_entries_over_leaf_capacity() {
        let m = PageIoModel::default();
        assert_eq!(m.tree_pages(64), 1);
        assert!(m.tree_pages(6400) > 100);
    }

    #[test]
    fn update_misses_bounded_by_depth() {
        let m = PageIoModel::default();
        let mut rng = seeded_rng(1);
        for entries in [100u64, 1_000_000, 100_000_000] {
            let depth = m.tree_depth(entries);
            for _ in 0..100 {
                assert!(m.update_page_misses(entries, &mut rng) <= depth);
            }
        }
    }

    #[test]
    fn fig2a_shape_larger_partitions_cost_more() {
        let m = GroupIndexModel::default();
        let cost_at = |s: u64| {
            let mut disk = Disk::new(DiskProfile::hdd_7200());
            m.random_update_run(200_000, s, 5_000, &mut disk, 11)
        };
        let c1k = cost_at(1_000);
        let c8k = cost_at(8_000);
        assert!(c8k > c1k, "8k-file partitions ({c8k}) should exceed 1k ({c1k})");
        assert!(c8k < c1k * 10, "growth should be roughly linear, got {c1k} -> {c8k}");
    }

    #[test]
    fn fig2a_shape_dataset_size_does_not_matter() {
        let m = GroupIndexModel::default();
        let cost_at = |n: u64| {
            let mut disk = Disk::new(DiskProfile::hdd_7200());
            m.random_update_run(n, 1_000, 5_000, &mut disk, 13)
        };
        let c50k = cost_at(50_000);
        let c200k = cost_at(200_000);
        let ratio = c200k.as_secs_f64() / c50k.as_secs_f64();
        assert!((0.8..1.25).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn fig2b_shape_more_partitions_cost_more() {
        let m = GroupIndexModel::default();
        let cost_at = |g: usize| {
            let mut disk = Disk::new(DiskProfile::hdd_7200());
            m.striped_update_run(g, 1_000, 5_000, &mut disk, 17)
        };
        let c1 = cost_at(1);
        let c4 = cost_at(4);
        let c32 = cost_at(32);
        assert!(c4 > c1 * 10, "beyond-RAM striping must thrash: {c1} -> {c4}");
        assert!(c32 >= c4, "more partitions never cheaper: {c4} -> {c32}");
    }

    #[test]
    fn resident_groups_avoid_reloads() {
        let m = GroupIndexModel { resident_groups: 8, ..GroupIndexModel::default() };
        let mut disk = Disk::new(DiskProfile::hdd_7200());
        // 4 groups stripe into an 8-slot LRU: only 4 initial loads.
        let cost = m.striped_update_run(4, 1_000, 10_000, &mut disk, 19);
        let (reads, _, _, _) = disk.stats();
        assert_eq!(reads, 8, "4 loads x 2 read calls each");
        assert!(cost < Duration::from_secs(2));
    }
}
