//! Network cost model (GbE cluster fabric).

use propeller_sim::Latency;
use propeller_types::Duration;
use rand::Rng;

/// A point-to-point network model: per-message latency plus bandwidth-
/// limited transfer, matching the paper's NetGear GbE switch fabric.
///
/// # Examples
///
/// ```
/// use propeller_sim::seeded_rng;
/// use propeller_storage::Network;
///
/// let net = Network::gigabit_ethernet();
/// let mut rng = seeded_rng(1);
/// let small = net.message_cost(100, &mut rng);
/// let large = net.message_cost(10 << 20, &mut rng);
/// assert!(large > small * 10);
/// ```
#[derive(Debug, Clone)]
pub struct Network {
    /// One-way propagation + switching latency.
    pub latency: Latency,
    /// Usable bandwidth in bytes/second.
    pub bandwidth: u64,
}

impl Network {
    /// Gigabit Ethernet through one switch: ~60–120 µs one-way, ≈118 MB/s
    /// usable.
    pub fn gigabit_ethernet() -> Self {
        Network {
            latency: Latency::uniform(Duration::from_micros(60), Duration::from_micros(120)),
            bandwidth: 118_000_000,
        }
    }

    /// A zero-cost network (for wall-clock measured runs where real channel
    /// time is already being spent).
    pub fn instantaneous() -> Self {
        Network { latency: Latency::zero(), bandwidth: u64::MAX }
    }

    /// Cost of delivering one `bytes`-sized message.
    pub fn message_cost<R: Rng + ?Sized>(&self, bytes: u64, rng: &mut R) -> Duration {
        let transfer = if self.bandwidth == u64::MAX {
            Duration::ZERO
        } else {
            Duration::from_secs_f64(bytes as f64 / self.bandwidth as f64)
        };
        self.latency.sample(rng) + transfer
    }

    /// Mean cost of delivering one `bytes`-sized message (no sampling).
    pub fn message_cost_mean(&self, bytes: u64) -> Duration {
        let transfer = if self.bandwidth == u64::MAX {
            Duration::ZERO
        } else {
            Duration::from_secs_f64(bytes as f64 / self.bandwidth as f64)
        };
        self.latency.mean() + transfer
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use propeller_sim::seeded_rng;

    #[test]
    fn gbe_latency_dominates_small_messages() {
        let net = Network::gigabit_ethernet();
        let mean = net.message_cost_mean(64);
        assert!(mean >= Duration::from_micros(60));
        assert!(mean < Duration::from_micros(200));
    }

    #[test]
    fn bandwidth_dominates_large_messages() {
        let net = Network::gigabit_ethernet();
        // 118 MB at 118 MB/s ≈ 1 s.
        let mean = net.message_cost_mean(118_000_000);
        assert!(mean > Duration::from_millis(900) && mean < Duration::from_millis(1200));
    }

    #[test]
    fn instantaneous_network_is_free() {
        let net = Network::instantaneous();
        let mut rng = seeded_rng(1);
        assert_eq!(net.message_cost(1 << 30, &mut rng), Duration::ZERO);
    }
}
