//! File-system cost profiles (Table VI substrate).
//!
//! The paper compares Propeller's FUSE-based client against native
//! (Ext4/Btrfs) and FUSE-based (NTFS-3g, ZFS-fuse, and a pass-through PTFS)
//! file systems under PostMark. Real kernels are out of reach here, so each
//! file system becomes a *cost profile*: per-operation latency
//! distributions whose relative magnitudes encode the structural difference
//! the paper measures — FUSE's double kernel crossing, copy-on-write
//! overheads, and Propeller's extra inline-indexing work on the write path.

use propeller_sim::Latency;
use propeller_types::Duration;
use rand::Rng;

/// A file-system operation, as issued by PostMark-style workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FsOp {
    /// Create an empty file.
    Create,
    /// Delete a file.
    Delete,
    /// Open an existing file.
    Open,
    /// Read `bytes`.
    Read(u64),
    /// Write/append `bytes`.
    Write(u64),
}

/// Per-operation latency profile of one file system.
///
/// # Examples
///
/// ```
/// use propeller_storage::FsCostProfile;
///
/// let ext4 = FsCostProfile::ext4();
/// let ntfs = FsCostProfile::ntfs_3g();
/// assert!(ext4.create.mean() < ntfs.create.mean());
/// ```
#[derive(Debug, Clone)]
pub struct FsCostProfile {
    /// Display name (matches the paper's Table VI rows).
    pub name: &'static str,
    /// Cost of creating a file (path resolution + inode allocation).
    pub create: Latency,
    /// Cost of deleting a file.
    pub delete: Latency,
    /// Cost of opening a file.
    pub open: Latency,
    /// Per-4-KiB-block read cost.
    pub read_4k: Latency,
    /// Per-4-KiB-block write cost.
    pub write_4k: Latency,
    /// Extra cost charged on every *write-path* operation (create, write,
    /// delete): this is where Propeller's inline indexing lands.
    pub write_path_extra: Latency,
}

impl FsCostProfile {
    /// Native Ext4 (the paper's fastest row: 16 747 creates/s).
    pub fn ext4() -> Self {
        FsCostProfile {
            name: "Ext4",
            create: Latency::uniform(Duration::from_micros(40), Duration::from_micros(80)),
            delete: Latency::uniform(Duration::from_micros(35), Duration::from_micros(70)),
            open: Latency::uniform(Duration::from_micros(4), Duration::from_micros(10)),
            read_4k: Latency::uniform(Duration::from_micros(8), Duration::from_micros(20)),
            write_4k: Latency::uniform(Duration::from_micros(15), Duration::from_micros(35)),
            write_path_extra: Latency::zero(),
        }
    }

    /// Native Btrfs (copy-on-write overhead: 5 582 creates/s).
    pub fn btrfs() -> Self {
        FsCostProfile {
            name: "Btrfs",
            create: Latency::uniform(Duration::from_micros(140), Duration::from_micros(220)),
            delete: Latency::uniform(Duration::from_micros(120), Duration::from_micros(200)),
            open: Latency::uniform(Duration::from_micros(5), Duration::from_micros(12)),
            read_4k: Latency::uniform(Duration::from_micros(10), Duration::from_micros(25)),
            write_4k: Latency::uniform(Duration::from_micros(40), Duration::from_micros(90)),
            write_path_extra: Latency::zero(),
        }
    }

    /// PTFS — the paper's pass-through FUSE file system, isolating pure
    /// FUSE double-crossing overhead (6 289 creates/s).
    pub fn ptfs() -> Self {
        FsCostProfile {
            name: "PTFS",
            create: Latency::uniform(Duration::from_micros(130), Duration::from_micros(190)),
            delete: Latency::uniform(Duration::from_micros(110), Duration::from_micros(170)),
            open: Latency::uniform(Duration::from_micros(15), Duration::from_micros(30)),
            read_4k: Latency::uniform(Duration::from_micros(25), Duration::from_micros(55)),
            write_4k: Latency::uniform(Duration::from_micros(45), Duration::from_micros(95)),
            write_path_extra: Latency::zero(),
        }
    }

    /// NTFS-3g (userspace NTFS over FUSE: 2 392 creates/s).
    pub fn ntfs_3g() -> Self {
        FsCostProfile {
            name: "NTFS-3g",
            create: Latency::uniform(Duration::from_micros(350), Duration::from_micros(480)),
            delete: Latency::uniform(Duration::from_micros(300), Duration::from_micros(430)),
            open: Latency::uniform(Duration::from_micros(25), Duration::from_micros(50)),
            read_4k: Latency::uniform(Duration::from_micros(60), Duration::from_micros(130)),
            write_4k: Latency::uniform(Duration::from_micros(120), Duration::from_micros(260)),
            write_path_extra: Latency::zero(),
        }
    }

    /// ZFS-fuse (userspace ZFS: 2 093 creates/s).
    pub fn zfs_fuse() -> Self {
        FsCostProfile {
            name: "ZFS-fuse",
            create: Latency::uniform(Duration::from_micros(400), Duration::from_micros(550)),
            delete: Latency::uniform(Duration::from_micros(340), Duration::from_micros(490)),
            open: Latency::uniform(Duration::from_micros(30), Duration::from_micros(60)),
            read_4k: Latency::uniform(Duration::from_micros(55), Duration::from_micros(120)),
            write_4k: Latency::uniform(Duration::from_micros(110), Duration::from_micros(240)),
            write_path_extra: Latency::zero(),
        }
    }

    /// Propeller's FUSE client: PTFS costs plus inline-indexing work on the
    /// write path (2 644 creates/s — the price of real-time indexing).
    pub fn propeller_fuse() -> Self {
        FsCostProfile {
            write_path_extra: Latency::uniform(
                Duration::from_micros(160),
                Duration::from_micros(280),
            ),
            name: "Propeller",
            ..FsCostProfile::ptfs()
        }
    }

    /// All Table VI profiles, in the paper's row order.
    pub fn table_six() -> Vec<FsCostProfile> {
        vec![
            FsCostProfile::ext4(),
            FsCostProfile::btrfs(),
            FsCostProfile::ptfs(),
            FsCostProfile::ntfs_3g(),
            FsCostProfile::zfs_fuse(),
            FsCostProfile::propeller_fuse(),
        ]
    }
}

/// A file-system instance: samples operation costs and tallies statistics.
///
/// # Examples
///
/// ```
/// use propeller_sim::seeded_rng;
/// use propeller_storage::{FsCostProfile, FsModel, FsOp};
///
/// let mut fs = FsModel::new(FsCostProfile::ext4());
/// let mut rng = seeded_rng(1);
/// let cost = fs.cost(FsOp::Create, &mut rng) + fs.cost(FsOp::Write(8192), &mut rng);
/// assert!(!cost.is_zero());
/// ```
#[derive(Debug, Clone)]
pub struct FsModel {
    profile: FsCostProfile,
    ops: u64,
    busy: Duration,
}

impl FsModel {
    /// Creates an instance of the given profile.
    pub fn new(profile: FsCostProfile) -> Self {
        FsModel { profile, ops: 0, busy: Duration::ZERO }
    }

    /// The profile name.
    pub fn name(&self) -> &'static str {
        self.profile.name
    }

    /// Samples the cost of one operation and tallies it.
    pub fn cost<R: Rng + ?Sized>(&mut self, op: FsOp, rng: &mut R) -> Duration {
        let base = match op {
            FsOp::Create => {
                self.profile.create.sample(rng) + self.profile.write_path_extra.sample(rng)
            }
            FsOp::Delete => {
                self.profile.delete.sample(rng) + self.profile.write_path_extra.sample(rng)
            }
            FsOp::Open => self.profile.open.sample(rng),
            FsOp::Read(bytes) => {
                let blocks = bytes.div_ceil(4096).max(1);
                let mut d = Duration::ZERO;
                for _ in 0..blocks {
                    d += self.profile.read_4k.sample(rng);
                }
                d
            }
            FsOp::Write(bytes) => {
                let blocks = bytes.div_ceil(4096).max(1);
                let mut d = self.profile.write_path_extra.sample(rng);
                for _ in 0..blocks {
                    d += self.profile.write_4k.sample(rng);
                }
                d
            }
        };
        self.ops += 1;
        self.busy += base;
        base
    }

    /// `(operations, total busy time)` tallies.
    pub fn stats(&self) -> (u64, Duration) {
        (self.ops, self.busy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use propeller_sim::seeded_rng;

    #[test]
    fn table_six_relative_order_for_creates() {
        // Paper order by create throughput:
        // Ext4 > PTFS > Btrfs > Propeller > NTFS-3g > ZFS-fuse.
        let mean = |p: FsCostProfile| (p.create.mean() + p.write_path_extra.mean()).as_micros();
        assert!(mean(FsCostProfile::ext4()) < mean(FsCostProfile::ptfs()));
        assert!(mean(FsCostProfile::ptfs()) < mean(FsCostProfile::btrfs()) + 100);
        assert!(mean(FsCostProfile::ptfs()) < mean(FsCostProfile::propeller_fuse()));
        assert!(mean(FsCostProfile::propeller_fuse()) < mean(FsCostProfile::ntfs_3g()));
        assert!(mean(FsCostProfile::ntfs_3g()) < mean(FsCostProfile::zfs_fuse()));
    }

    #[test]
    fn propeller_overhead_is_on_write_path_only() {
        let ptfs = FsCostProfile::ptfs();
        let prop = FsCostProfile::propeller_fuse();
        assert_eq!(ptfs.open.mean(), prop.open.mean());
        assert_eq!(ptfs.read_4k.mean(), prop.read_4k.mean());
        assert!(prop.write_path_extra.mean() > Duration::ZERO);
    }

    #[test]
    fn read_cost_scales_with_blocks() {
        let mut fs = FsModel::new(FsCostProfile::ext4());
        let mut rng = seeded_rng(9);
        let small: Duration = (0..50).map(|_| fs.cost(FsOp::Read(4096), &mut rng)).sum();
        let large: Duration = (0..50).map(|_| fs.cost(FsOp::Read(64 * 1024), &mut rng)).sum();
        assert!(large > small * 8);
    }

    #[test]
    fn stats_tally() {
        let mut fs = FsModel::new(FsCostProfile::btrfs());
        let mut rng = seeded_rng(10);
        fs.cost(FsOp::Create, &mut rng);
        fs.cost(FsOp::Delete, &mut rng);
        let (ops, busy) = fs.stats();
        assert_eq!(ops, 2);
        assert!(!busy.is_zero());
    }

    #[test]
    fn all_profiles_have_distinct_names() {
        let names: std::collections::HashSet<&str> =
            FsCostProfile::table_six().iter().map(|p| p.name).collect();
        assert_eq!(names.len(), 6);
    }
}
