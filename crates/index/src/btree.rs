//! A from-scratch B+-tree.
//!
//! This is the ordered index Propeller offers per ACG (paper §IV supports
//! "b-tree, hash table or K-D-tree" per user-defined index). Keys live in
//! the leaves; internal nodes hold separator keys only, as in a classical
//! B+-tree. Inserts use preemptive (top-down) node splitting; deletes are
//! lazy (entries are removed from leaves, underfull leaves are tolerated),
//! which preserves search correctness while keeping the code free of
//! rebalancing corner cases — the paper's workload is overwhelmingly
//! insert/update heavy.
//!
//! ## Persistence (structural sharing)
//!
//! Nodes are held in [`Arc`]s and every mutation path-copies: a mutator
//! walks root-to-leaf calling [`Arc::make_mut`], which clones a node only
//! when it is shared. [`BPlusTree::clone`] is therefore O(1) — it bumps
//! the root's refcount — and a clone plus a mutation costs
//! O(depth × ORDER) clones of the touched spine, with every untouched
//! subtree shared between the old and new tree. This is what lets an
//! epoch snapshot of an index group be published by cloning handles while
//! readers keep iterating the previous version untouched.

use std::fmt;
use std::ops::Bound;
use std::sync::Arc;

const ORDER: usize = 32; // max keys per leaf; max children per internal node

#[derive(Debug, Clone)]
enum Node<K, V> {
    Leaf { keys: Vec<K>, vals: Vec<V> },
    Internal { seps: Vec<K>, children: Vec<Arc<Node<K, V>>> },
}

impl<K: Ord + Clone, V> Node<K, V> {
    fn new_leaf() -> Self {
        Node::Leaf { keys: Vec::new(), vals: Vec::new() }
    }

    fn is_full(&self) -> bool {
        match self {
            Node::Leaf { keys, .. } => keys.len() >= ORDER,
            Node::Internal { children, .. } => children.len() >= ORDER,
        }
    }
}

/// An ordered map backed by a from-scratch B+-tree.
///
/// Supports point lookups, ordered range scans over arbitrary
/// [`Bound`]s, replacement inserts and lazy removal.
///
/// # Examples
///
/// ```
/// use propeller_index::BPlusTree;
///
/// let mut tree = BPlusTree::new();
/// for i in 0..100u64 {
///     tree.insert(i, i * 2);
/// }
/// assert_eq!(tree.get(&40), Some(&80));
/// let in_range: Vec<u64> = tree.range(10..13).map(|(k, _)| *k).collect();
/// assert_eq!(in_range, vec![10, 11, 12]);
/// ```
pub struct BPlusTree<K, V> {
    root: Arc<Node<K, V>>,
    len: usize,
}

/// O(1): clones share every node until one side mutates (path-copy).
impl<K, V> Clone for BPlusTree<K, V> {
    fn clone(&self) -> Self {
        BPlusTree { root: Arc::clone(&self.root), len: self.len }
    }
}

impl<K: Ord + Clone, V> Default for BPlusTree<K, V> {
    fn default() -> Self {
        BPlusTree::new()
    }
}

impl<K: Ord + Clone, V> BPlusTree<K, V> {
    /// Creates an empty tree.
    pub fn new() -> Self {
        BPlusTree { root: Arc::new(Node::new_leaf()), len: 0 }
    }

    /// Number of key–value entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Height of the tree (1 for a lone leaf). The paper's analytic disk
    /// cost model charges one page read per level.
    pub fn depth(&self) -> usize {
        let mut d = 1;
        let mut node = self.root.as_ref();
        while let Node::Internal { children, .. } = node {
            node = children[0].as_ref();
            d += 1;
        }
        d
    }

    /// Looks up `key`. Accepts any borrowed form of the key type (e.g.
    /// `&str` against `String` keys), like `std::collections::BTreeMap`.
    pub fn get<Q>(&self, key: &Q) -> Option<&V>
    where
        K: std::borrow::Borrow<Q>,
        Q: Ord + ?Sized,
    {
        let mut node = self.root.as_ref();
        loop {
            match node {
                Node::Leaf { keys, vals } => {
                    return keys.binary_search_by(|x| x.borrow().cmp(key)).ok().map(|i| &vals[i]);
                }
                Node::Internal { seps, children } => {
                    let i = seps.partition_point(|sep| sep.borrow() <= key);
                    node = children[i].as_ref();
                }
            }
        }
    }

    /// Returns `true` when `key` is present.
    pub fn contains_key<Q>(&self, key: &Q) -> bool
    where
        K: std::borrow::Borrow<Q>,
        Q: Ord + ?Sized,
    {
        self.get(key).is_some()
    }

    /// Iterates over entries with keys in `range`, in ascending key order.
    pub fn range<R>(&self, range: R) -> Range<'_, K, V>
    where
        R: std::ops::RangeBounds<K>,
    {
        let lo = clone_bound(range.start_bound());
        let hi = clone_bound(range.end_bound());
        let mut iter = Range { stack: Vec::new(), lo, hi };
        iter.push_node(&self.root);
        iter
    }

    /// Iterates over entries with keys in `range`, in *descending* key
    /// order. This is what lets an ordered scan serve `ORDER BY attr DESC
    /// LIMIT k` by walking the index from the top and stopping after `k`
    /// admitted hits instead of materializing the whole range.
    pub fn range_rev<R>(&self, range: R) -> RangeRev<'_, K, V>
    where
        R: std::ops::RangeBounds<K>,
    {
        let lo = clone_bound(range.start_bound());
        let hi = clone_bound(range.end_bound());
        let mut iter = RangeRev { stack: Vec::new(), lo, hi };
        iter.push_node(&self.root);
        iter
    }

    /// Iterates over all entries in ascending key order.
    pub fn iter(&self) -> Range<'_, K, V> {
        self.range(..)
    }

    /// First (smallest) key, if any. Robust to leaves emptied by lazy
    /// deletion.
    pub fn first_key(&self) -> Option<&K> {
        self.iter().next().map(|(k, _)| k)
    }
}

// Mutators path-copy shared nodes, so they need `V: Clone` (a spine clone
// clones the values sitting in the touched leaf).
impl<K: Ord + Clone, V: Clone> BPlusTree<K, V> {
    /// Inserts `key → value`, returning the previous value if the key was
    /// already present.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        if self.root.is_full() {
            // Split the root: lift a new internal node above it.
            let old_root = std::mem::replace(&mut self.root, Arc::new(Node::new_leaf()));
            let mut children = vec![old_root];
            let mut seps = Vec::new();
            Self::split_child(&mut seps, &mut children, 0);
            self.root = Arc::new(Node::Internal { seps, children });
        }
        let replaced = Self::insert_nonfull(Arc::make_mut(&mut self.root), key, value);
        if replaced.is_none() {
            self.len += 1;
        }
        replaced
    }

    fn split_child(seps: &mut Vec<K>, children: &mut Vec<Arc<Node<K, V>>>, i: usize) {
        let mid = ORDER / 2;
        let (sep, right) = match Arc::make_mut(&mut children[i]) {
            Node::Leaf { keys, vals } => {
                let rk = keys.split_off(mid);
                let rv = vals.split_off(mid);
                let sep = rk[0].clone();
                (sep, Node::Leaf { keys: rk, vals: rv })
            }
            Node::Internal { seps: ck, children: cc } => {
                // Promote the middle separator; it no longer lives below.
                let rk = ck.split_off(mid + 1);
                let sep = ck.pop().expect("internal node has separators");
                let rc = cc.split_off(mid + 1);
                (sep, Node::Internal { seps: rk, children: rc })
            }
        };
        seps.insert(i, sep);
        children.insert(i + 1, Arc::new(right));
    }

    fn insert_nonfull(node: &mut Node<K, V>, key: K, value: V) -> Option<V> {
        match node {
            Node::Leaf { keys, vals } => match keys.binary_search(&key) {
                Ok(i) => Some(std::mem::replace(&mut vals[i], value)),
                Err(i) => {
                    keys.insert(i, key);
                    vals.insert(i, value);
                    None
                }
            },
            Node::Internal { seps, children } => {
                let mut i = seps.partition_point(|sep| *sep <= key);
                if children[i].is_full() {
                    Self::split_child(seps, children, i);
                    if seps[i] <= key {
                        i += 1;
                    }
                }
                Self::insert_nonfull(Arc::make_mut(&mut children[i]), key, value)
            }
        }
    }

    /// Mutable lookup. Path-copies the spine down to the entry even when
    /// the tree is shared, so the returned reference is exclusively owned.
    pub fn get_mut<Q>(&mut self, key: &Q) -> Option<&mut V>
    where
        K: std::borrow::Borrow<Q>,
        Q: Ord + ?Sized,
    {
        let mut node = Arc::make_mut(&mut self.root);
        loop {
            match node {
                Node::Leaf { keys, vals } => {
                    return keys
                        .binary_search_by(|x| x.borrow().cmp(key))
                        .ok()
                        .map(|i| &mut vals[i]);
                }
                Node::Internal { seps, children } => {
                    let i = seps.partition_point(|sep| sep.borrow() <= key);
                    node = Arc::make_mut(&mut children[i]);
                }
            }
        }
    }

    /// Removes `key`, returning its value. Lazy: leaves may become
    /// underfull, but lookups and scans stay correct.
    pub fn remove<Q>(&mut self, key: &Q) -> Option<V>
    where
        K: std::borrow::Borrow<Q>,
        Q: Ord + ?Sized,
    {
        fn rec<K, V: Clone, Q>(node: &mut Node<K, V>, key: &Q) -> Option<V>
        where
            K: Ord + Clone + std::borrow::Borrow<Q>,
            Q: Ord + ?Sized,
        {
            match node {
                Node::Leaf { keys, vals } => match keys.binary_search_by(|x| x.borrow().cmp(key)) {
                    Ok(i) => {
                        keys.remove(i);
                        Some(vals.remove(i))
                    }
                    Err(_) => None,
                },
                Node::Internal { seps, children } => {
                    let i = seps.partition_point(|sep| sep.borrow() <= key);
                    rec(Arc::make_mut(&mut children[i]), key)
                }
            }
        }
        let removed = rec(Arc::make_mut(&mut self.root), key);
        if removed.is_some() {
            self.len -= 1;
        }
        removed
    }
}

fn clone_bound<K: Clone>(b: Bound<&K>) -> Bound<K> {
    match b {
        Bound::Included(k) => Bound::Included(k.clone()),
        Bound::Excluded(k) => Bound::Excluded(k.clone()),
        Bound::Unbounded => Bound::Unbounded,
    }
}

/// Ascending iterator over a key range of a [`BPlusTree`].
pub struct Range<'a, K, V> {
    /// Explicit DFS stack: (node, child/entry position).
    stack: Vec<(&'a Node<K, V>, usize)>,
    lo: Bound<K>,
    hi: Bound<K>,
}

impl<'a, K: Ord + Clone, V> Range<'a, K, V> {
    fn push_node(&mut self, node: &'a Node<K, V>) {
        match node {
            Node::Leaf { keys, .. } => {
                let start = match &self.lo {
                    Bound::Included(k) => keys.partition_point(|x| x < k),
                    Bound::Excluded(k) => keys.partition_point(|x| x <= k),
                    Bound::Unbounded => 0,
                };
                self.stack.push((node, start));
            }
            Node::Internal { seps, .. } => {
                let start = match &self.lo {
                    Bound::Included(k) | Bound::Excluded(k) => seps.partition_point(|sep| sep <= k),
                    Bound::Unbounded => 0,
                };
                self.stack.push((node, start));
            }
        }
    }

    fn above_hi(&self, key: &K) -> bool {
        match &self.hi {
            Bound::Included(k) => key > k,
            Bound::Excluded(k) => key >= k,
            Bound::Unbounded => false,
        }
    }
}

impl<'a, K: Ord + Clone, V> Iterator for Range<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            // Copy the node reference out of the stack frame so it carries
            // the full 'a lifetime, then advance the frame's cursor.
            let (node, i) = {
                let (node, pos) = self.stack.last_mut()?;
                let node: &'a Node<K, V> = node;
                let i = *pos;
                *pos += 1;
                (node, i)
            };
            match node {
                Node::Leaf { keys, vals } => {
                    if i < keys.len() {
                        let key = &keys[i];
                        if self.above_hi(key) {
                            self.stack.clear();
                            return None;
                        }
                        return Some((key, &vals[i]));
                    }
                    self.stack.pop();
                }
                Node::Internal { seps, children } => {
                    if i < children.len() {
                        // Prune subtrees entirely above the upper bound: the
                        // separator left of child i is a lower bound for it.
                        if i > 0 && self.above_hi(&seps[i - 1]) {
                            self.stack.clear();
                            return None;
                        }
                        self.push_node(children[i].as_ref());
                    } else {
                        self.stack.pop();
                    }
                }
            }
        }
    }
}

/// Descending iterator over a key range of a [`BPlusTree`].
pub struct RangeRev<'a, K, V> {
    /// Explicit DFS stack: (node, number of entries/children still
    /// unvisited from the left — the next visit is position `pos - 1`).
    stack: Vec<(&'a Node<K, V>, usize)>,
    lo: Bound<K>,
    hi: Bound<K>,
}

impl<'a, K: Ord + Clone, V> RangeRev<'a, K, V> {
    fn push_node(&mut self, node: &'a Node<K, V>) {
        match node {
            Node::Leaf { keys, .. } => {
                // One past the last in-range entry.
                let end = match &self.hi {
                    Bound::Included(k) => keys.partition_point(|x| x <= k),
                    Bound::Excluded(k) => keys.partition_point(|x| x < k),
                    Bound::Unbounded => keys.len(),
                };
                self.stack.push((node, end));
            }
            Node::Internal { seps, children } => {
                // One past the rightmost child that can hold in-range keys
                // (child i covers keys in [seps[i-1], seps[i])).
                let end = match &self.hi {
                    Bound::Included(k) | Bound::Excluded(k) => {
                        seps.partition_point(|sep| sep <= k) + 1
                    }
                    Bound::Unbounded => children.len(),
                };
                self.stack.push((node, end.min(children.len())));
            }
        }
    }

    fn below_lo(&self, key: &K) -> bool {
        match &self.lo {
            Bound::Included(k) => key < k,
            Bound::Excluded(k) => key <= k,
            Bound::Unbounded => false,
        }
    }
}

impl<'a, K: Ord + Clone, V> Iterator for RangeRev<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let (node, i) = {
                let (node, pos) = self.stack.last_mut()?;
                let node: &'a Node<K, V> = node;
                if *pos == 0 {
                    self.stack.pop();
                    continue;
                }
                *pos -= 1;
                let i = *pos;
                (node, i)
            };
            match node {
                Node::Leaf { keys, vals } => {
                    let key = &keys[i];
                    if self.below_lo(key) {
                        self.stack.clear();
                        return None;
                    }
                    return Some((key, &vals[i]));
                }
                Node::Internal { seps, children } => {
                    // Prune subtrees entirely below the lower bound: child
                    // i holds only keys < seps[i], so once that ceiling is
                    // below `lo`, every remaining (smaller) child is too.
                    if i < seps.len() && self.below_lo(&seps[i]) {
                        self.stack.clear();
                        return None;
                    }
                    self.push_node(children[i].as_ref());
                }
            }
        }
    }
}

impl<K: Ord + Clone + fmt::Debug, V: fmt::Debug> fmt::Debug for BPlusTree<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BPlusTree").field("len", &self.len).field("depth", &self.depth()).finish()
    }
}

impl<K: Ord + Clone, V: Clone> FromIterator<(K, V)> for BPlusTree<K, V> {
    fn from_iter<T: IntoIterator<Item = (K, V)>>(iter: T) -> Self {
        let mut tree = BPlusTree::new();
        for (k, v) in iter {
            tree.insert(k, v);
        }
        tree
    }
}

impl<K: Ord + Clone, V: Clone> Extend<(K, V)> for BPlusTree<K, V> {
    fn extend<T: IntoIterator<Item = (K, V)>>(&mut self, iter: T) {
        for (k, v) in iter {
            self.insert(k, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn insert_get_roundtrip() {
        let mut t = BPlusTree::new();
        for i in 0..1000u32 {
            assert_eq!(t.insert(i, i + 1), None);
        }
        for i in 0..1000u32 {
            assert_eq!(t.get(&i), Some(&(i + 1)));
        }
        assert_eq!(t.get(&1000), None);
        assert_eq!(t.len(), 1000);
    }

    #[test]
    fn insert_replaces() {
        let mut t = BPlusTree::new();
        assert_eq!(t.insert(5, "a"), None);
        assert_eq!(t.insert(5, "b"), Some("a"));
        assert_eq!(t.get(&5), Some(&"b"));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn reverse_and_shuffled_inserts() {
        let mut t = BPlusTree::new();
        for i in (0..500u32).rev() {
            t.insert(i, i);
        }
        let collected: Vec<u32> = t.iter().map(|(k, _)| *k).collect();
        assert_eq!(collected, (0..500).collect::<Vec<_>>());
    }

    #[test]
    fn depth_grows_logarithmically() {
        let mut t = BPlusTree::new();
        for i in 0..10_000u32 {
            t.insert(i, ());
        }
        let d = t.depth();
        assert!((3..=5).contains(&d), "depth {d}");
    }

    #[test]
    fn range_inclusive_exclusive_bounds() {
        let mut t = BPlusTree::new();
        for i in 0..100u32 {
            t.insert(i, ());
        }
        let v: Vec<u32> = t.range(10..20).map(|(k, _)| *k).collect();
        assert_eq!(v, (10..20).collect::<Vec<_>>());
        let v: Vec<u32> = t.range(10..=20).map(|(k, _)| *k).collect();
        assert_eq!(v, (10..=20).collect::<Vec<_>>());
        let v: Vec<u32> =
            t.range((Bound::Excluded(10), Bound::Unbounded)).map(|(k, _)| *k).collect();
        assert_eq!(v, (11..100).collect::<Vec<_>>());
        let v: Vec<u32> = t.range(..5).map(|(k, _)| *k).collect();
        assert_eq!(v, (0..5).collect::<Vec<_>>());
    }

    #[test]
    fn range_empty_and_out_of_bounds() {
        let mut t = BPlusTree::new();
        for i in 10..20u32 {
            t.insert(i, ());
        }
        assert_eq!(t.range(0..5).count(), 0);
        assert_eq!(t.range(25..30).count(), 0);
        assert_eq!(t.range(15..15).count(), 0);
    }

    #[test]
    fn remove_then_get() {
        let mut t = BPlusTree::new();
        for i in 0..2000u32 {
            t.insert(i, i);
        }
        for i in (0..2000).step_by(2) {
            assert_eq!(t.remove(&i), Some(i));
        }
        assert_eq!(t.len(), 1000);
        for i in 0..2000u32 {
            if i % 2 == 0 {
                assert_eq!(t.get(&i), None);
            } else {
                assert_eq!(t.get(&i), Some(&i));
            }
        }
        assert_eq!(t.remove(&0), None);
    }

    #[test]
    fn scan_after_heavy_removal() {
        let mut t = BPlusTree::new();
        for i in 0..1000u32 {
            t.insert(i, ());
        }
        for i in 100..900 {
            t.remove(&i);
        }
        let keys: Vec<u32> = t.iter().map(|(k, _)| *k).collect();
        let expected: Vec<u32> = (0..100).chain(900..1000).collect();
        assert_eq!(keys, expected);
    }

    #[test]
    fn get_mut_modifies() {
        let mut t = BPlusTree::new();
        t.insert("k", 1);
        *t.get_mut(&"k").unwrap() += 10;
        assert_eq!(t.get(&"k"), Some(&11));
        assert!(t.get_mut(&"missing").is_none());
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut t: BPlusTree<u32, u32> = (0..10).map(|i| (i, i)).collect();
        t.extend((10..20).map(|i| (i, i)));
        assert_eq!(t.len(), 20);
        assert!(t.contains_key(&15));
    }

    #[test]
    fn matches_btreemap_on_random_ops() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        let mut ours = BPlusTree::new();
        let mut reference = BTreeMap::new();
        for _ in 0..20_000 {
            let k: u16 = rng.gen_range(0..2000);
            match rng.gen_range(0..10) {
                0..=5 => {
                    let v: u32 = rng.gen();
                    assert_eq!(ours.insert(k, v), reference.insert(k, v));
                }
                6..=7 => {
                    assert_eq!(ours.remove(&k), reference.remove(&k));
                }
                8 => {
                    assert_eq!(ours.get(&k), reference.get(&k));
                }
                _ => {
                    let hi = k.saturating_add(rng.gen_range(0..200));
                    let ours_range: Vec<(u16, u32)> =
                        ours.range(k..hi).map(|(a, b)| (*a, *b)).collect();
                    let ref_range: Vec<(u16, u32)> =
                        reference.range(k..hi).map(|(a, b)| (*a, *b)).collect();
                    assert_eq!(ours_range, ref_range);
                }
            }
        }
        assert_eq!(ours.len(), reference.len());
        let all: Vec<(u16, u32)> = ours.iter().map(|(a, b)| (*a, *b)).collect();
        let expected: Vec<(u16, u32)> = reference.iter().map(|(a, b)| (*a, *b)).collect();
        assert_eq!(all, expected);
    }

    #[test]
    fn range_rev_mirrors_forward_ranges() {
        let mut t = BPlusTree::new();
        for i in 0..1000u32 {
            t.insert(i, i * 2);
        }
        let cases: Vec<(Bound<u32>, Bound<u32>)> = vec![
            (Bound::Unbounded, Bound::Unbounded),
            (Bound::Included(10), Bound::Excluded(20)),
            (Bound::Included(10), Bound::Included(20)),
            (Bound::Excluded(10), Bound::Unbounded),
            (Bound::Unbounded, Bound::Excluded(5)),
            (Bound::Included(500), Bound::Included(500)),
            (Bound::Included(20), Bound::Excluded(20)),
            (Bound::Included(2000), Bound::Unbounded),
        ];
        for (lo, hi) in cases {
            let mut fwd: Vec<(u32, u32)> = t.range((lo, hi)).map(|(k, v)| (*k, *v)).collect();
            fwd.reverse();
            let rev: Vec<(u32, u32)> = t.range_rev((lo, hi)).map(|(k, v)| (*k, *v)).collect();
            assert_eq!(rev, fwd, "bounds ({lo:?}, {hi:?})");
        }
    }

    #[test]
    fn range_rev_matches_btreemap_on_random_ops() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(77);
        let mut ours = BPlusTree::new();
        let mut reference = BTreeMap::new();
        for _ in 0..10_000 {
            let k: u16 = rng.gen_range(0..2000);
            match rng.gen_range(0..8) {
                0..=4 => {
                    let v: u32 = rng.gen();
                    ours.insert(k, v);
                    reference.insert(k, v);
                }
                5 => {
                    ours.remove(&k);
                    reference.remove(&k);
                }
                _ => {
                    let hi = k.saturating_add(rng.gen_range(0..300));
                    let got: Vec<(u16, u32)> =
                        ours.range_rev(k..hi).map(|(a, b)| (*a, *b)).collect();
                    let expected: Vec<(u16, u32)> =
                        reference.range(k..hi).rev().map(|(a, b)| (*a, *b)).collect();
                    assert_eq!(got, expected, "range {k}..{hi}");
                }
            }
        }
    }

    #[test]
    fn range_rev_after_heavy_removal() {
        let mut t = BPlusTree::new();
        for i in 0..1000u32 {
            t.insert(i, ());
        }
        for i in 100..900 {
            t.remove(&i);
        }
        let keys: Vec<u32> = t.range_rev(..).map(|(k, _)| *k).collect();
        let expected: Vec<u32> = (0..100).chain(900..1000).rev().collect();
        assert_eq!(keys, expected);
    }

    #[test]
    fn first_key_nonempty() {
        let mut t = BPlusTree::new();
        for i in (5..100u32).rev() {
            t.insert(i, ());
        }
        assert_eq!(t.first_key(), Some(&5));
    }

    #[test]
    fn clones_are_snapshots_under_further_mutation() {
        let mut t = BPlusTree::new();
        for i in 0..5000u32 {
            t.insert(i, i);
        }
        let snap = t.clone();
        for i in 0..5000u32 {
            if i % 3 == 0 {
                t.remove(&i);
            } else {
                t.insert(i, i + 1);
            }
        }
        for i in 5000..6000u32 {
            t.insert(i, i);
        }
        // The clone still reads exactly the pre-mutation state.
        assert_eq!(snap.len(), 5000);
        for i in 0..5000u32 {
            assert_eq!(snap.get(&i), Some(&i), "snapshot entry {i} changed under mutation");
        }
        assert_eq!(snap.get(&5500), None);
        let all: Vec<u32> = snap.iter().map(|(k, _)| *k).collect();
        assert_eq!(all, (0..5000).collect::<Vec<_>>());
        // And the mutated side sees its own writes.
        assert_eq!(t.get(&0), None);
        assert_eq!(t.get(&1), Some(&2));
        assert_eq!(t.get(&5500), Some(&5500));
    }

    #[test]
    fn string_keys() {
        let mut t = BPlusTree::new();
        for w in ["pear", "apple", "fig", "plum", "kiwi"] {
            t.insert(w.to_owned(), w.len());
        }
        let keys: Vec<String> = t.iter().map(|(k, _)| k.clone()).collect();
        assert_eq!(keys, vec!["apple", "fig", "kiwi", "pear", "plum"]);
        let mid: Vec<String> =
            t.range("b".to_owned().."l".to_owned()).map(|(k, _)| k.clone()).collect();
        assert_eq!(mid, vec!["fig", "kiwi"]);
    }
}
