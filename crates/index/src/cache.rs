//! The lazy index cache (paper §IV "Index Node").
//!
//! Index Nodes "aggressively cache the file-indexing requests": each
//! request is appended to the WAL and buffered in memory, and the buffer is
//! committed to the actual indices only when (1) a timeout expires (paper
//! default 5 s) or (2) a search request arrives — whichever happens first.
//! This hides index-maintenance latency from the I/O critical path while
//! preserving search consistency.

use propeller_types::{Duration, Timestamp};

use crate::ops::IndexOp;

/// A commit-deferral buffer for [`IndexOp`]s.
///
/// The cache never applies operations itself — callers drain it (on
/// timeout or before a search) and apply the drained batch to the indices.
///
/// # Examples
///
/// ```
/// use propeller_index::{IndexCache, IndexOp};
/// use propeller_types::{Duration, FileId, Timestamp};
///
/// let mut cache = IndexCache::new(Duration::from_secs(5));
/// let t0 = Timestamp::from_secs(100);
/// cache.push(IndexOp::Remove(FileId::new(1)), t0);
///
/// assert!(!cache.timed_out(t0 + Duration::from_secs(3)));
/// assert!(cache.timed_out(t0 + Duration::from_secs(6)));
/// let batch = cache.drain(t0 + Duration::from_secs(6));
/// assert_eq!(batch.len(), 1);
/// assert!(cache.is_empty());
/// ```
#[derive(Debug)]
pub struct IndexCache {
    pending: Vec<IndexOp>,
    timeout: Duration,
    /// Time of the first op in the current batch (timeouts run from the
    /// oldest uncommitted request, bounding its staleness).
    oldest: Option<Timestamp>,
    /// Total ops ever drained (statistics).
    drained_ops: u64,
    /// Number of drain calls that returned a non-empty batch.
    commits: u64,
}

impl IndexCache {
    /// Creates a cache with the given commit timeout.
    pub fn new(timeout: Duration) -> Self {
        IndexCache { pending: Vec::new(), timeout, oldest: None, drained_ops: 0, commits: 0 }
    }

    /// The configured commit timeout.
    pub fn timeout(&self) -> Duration {
        self.timeout
    }

    /// Buffers an operation observed at `now`.
    pub fn push(&mut self, op: IndexOp, now: Timestamp) {
        if self.pending.is_empty() {
            self.oldest = Some(now);
        }
        self.pending.push(op);
    }

    /// Buffers a whole batch observed at `now` — the cache half of WAL
    /// group commit (the owning group logged the batch as one frame).
    pub fn push_batch(&mut self, ops: Vec<IndexOp>, now: Timestamp) {
        if ops.is_empty() {
            return;
        }
        if self.pending.is_empty() {
            self.oldest = Some(now);
        }
        self.pending.extend(ops);
    }

    /// Number of buffered operations.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// The buffered operations, oldest first (read-only; draining goes
    /// through [`IndexCache::drain`]). Lets the owning group project what
    /// committing would change — e.g. the net file-count effect reported
    /// in heartbeats — without consuming the batch.
    pub fn pending(&self) -> &[IndexOp] {
        &self.pending
    }

    /// Returns `true` when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Whether the oldest buffered op has waited at least the timeout.
    pub fn timed_out(&self, now: Timestamp) -> bool {
        match self.oldest {
            Some(t0) => now.since(t0) >= self.timeout,
            None => false,
        }
    }

    /// Drains all buffered operations (commit point). Callers apply the
    /// returned batch to the indices and then truncate the WAL.
    pub fn drain(&mut self, _now: Timestamp) -> Vec<IndexOp> {
        self.oldest = None;
        if !self.pending.is_empty() {
            self.commits += 1;
            self.drained_ops += self.pending.len() as u64;
        }
        std::mem::take(&mut self.pending)
    }

    /// Total operations drained over the cache's lifetime.
    pub fn drained_ops(&self) -> u64 {
        self.drained_ops
    }

    /// Number of non-empty commits over the cache's lifetime.
    pub fn commit_count(&self) -> u64 {
        self.commits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use propeller_types::FileId;

    fn op(i: u64) -> IndexOp {
        IndexOp::Remove(FileId::new(i))
    }

    #[test]
    fn timeout_runs_from_oldest_op() {
        let mut c = IndexCache::new(Duration::from_secs(5));
        let t0 = Timestamp::from_secs(0);
        c.push(op(1), t0);
        c.push(op(2), t0 + Duration::from_secs(4));
        // 5s after the *first* op, even though the second is younger.
        assert!(c.timed_out(t0 + Duration::from_secs(5)));
    }

    #[test]
    fn empty_cache_never_times_out() {
        let c = IndexCache::new(Duration::from_secs(5));
        assert!(!c.timed_out(Timestamp::from_secs(1_000_000)));
    }

    #[test]
    fn drain_resets_clock_and_counts() {
        let mut c = IndexCache::new(Duration::from_secs(5));
        let t0 = Timestamp::from_secs(0);
        c.push(op(1), t0);
        c.push(op(2), t0);
        let batch = c.drain(t0 + Duration::from_secs(1));
        assert_eq!(batch.len(), 2);
        assert!(c.is_empty());
        assert!(!c.timed_out(t0 + Duration::from_secs(100)));
        assert_eq!(c.commit_count(), 1);
        assert_eq!(c.drained_ops(), 2);
    }

    #[test]
    fn empty_drain_is_not_a_commit() {
        let mut c = IndexCache::new(Duration::from_secs(5));
        assert!(c.drain(Timestamp::EPOCH).is_empty());
        assert_eq!(c.commit_count(), 0);
    }

    #[test]
    fn batch_preserves_op_order() {
        let mut c = IndexCache::new(Duration::from_secs(1));
        let t = Timestamp::EPOCH;
        for i in 0..10 {
            c.push(op(i), t);
        }
        let batch = c.drain(t);
        let ids: Vec<u64> = batch.iter().map(|o| o.file().raw()).collect();
        assert_eq!(ids, (0..10).collect::<Vec<_>>());
    }
}
