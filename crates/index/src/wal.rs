//! Write-ahead log with CRC-protected framing.
//!
//! Index Nodes append every file-indexing request to a WAL before caching
//! it in memory (paper §IV "Index Node"), so acknowledged updates survive a
//! crash. Frames are `[len: u32 LE][crc32: u32 LE][payload]`; replay stops
//! at the first torn or corrupt frame, which models the standard
//! "valid prefix" recovery contract.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use bytes::{Buf, BufMut, BytesMut};
use propeller_types::{Error, Result};

/// CRC-32 (IEEE 802.3, reflected) computed bytewise with a generated table.
pub fn crc32(data: &[u8]) -> u32 {
    const fn make_table() -> [u32; 256] {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    }
    const TABLE: [u32; 256] = make_table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

#[derive(Debug)]
enum Backend {
    Memory(BytesMut),
    File { file: File, path: PathBuf },
}

/// An append-only write-ahead log.
///
/// Two backends: in-memory (for modeled-mode experiments and tests) and a
/// real file (for durability tests and measured mode). Both share the frame
/// format, so recovery code is backend-agnostic.
///
/// # Examples
///
/// ```
/// use propeller_index::Wal;
///
/// let mut wal = Wal::in_memory();
/// wal.append(b"op-1").unwrap();
/// wal.append(b"op-2").unwrap();
/// let frames = wal.replay().unwrap();
/// assert_eq!(frames, vec![b"op-1".to_vec(), b"op-2".to_vec()]);
/// ```
#[derive(Debug)]
pub struct Wal {
    backend: Backend,
    entries: u64,
    bytes: u64,
}

impl Wal {
    /// Creates an in-memory WAL.
    pub fn in_memory() -> Self {
        Wal { backend: Backend::Memory(BytesMut::new()), entries: 0, bytes: 0 }
    }

    /// Opens (or creates) a file-backed WAL, counting any existing valid
    /// frames. Any torn or corrupt tail beyond the valid prefix — the
    /// residue of a crash mid-append — is **truncated away**: leaving it
    /// in place would park every later append *behind* the bad frame,
    /// where replay (which stops at the first bad frame) can never reach
    /// it, silently losing acknowledged ops on the next recovery.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] if the file cannot be opened, read or
    /// truncated.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new().create(true).read(true).append(true).open(&path)?;
        let mut wal = Wal { backend: Backend::File { file, path }, entries: 0, bytes: 0 };
        let frames = wal.replay()?;
        wal.entries = frames.len() as u64;
        wal.bytes = frames.iter().map(|f| f.len() as u64 + 8).sum();
        if let Backend::File { file, .. } = &mut wal.backend {
            if file.metadata()?.len() > wal.bytes {
                file.set_len(wal.bytes)?;
                file.seek(SeekFrom::End(0))?;
            }
        }
        Ok(wal)
    }

    /// Appends one payload as a framed record.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] on file-backend write failures.
    pub fn append(&mut self, payload: &[u8]) -> Result<()> {
        let mut frame = BytesMut::with_capacity(payload.len() + 8);
        frame.put_u32_le(payload.len() as u32);
        frame.put_u32_le(crc32(payload));
        frame.put_slice(payload);
        match &mut self.backend {
            Backend::Memory(buf) => buf.extend_from_slice(&frame),
            Backend::File { file, .. } => {
                file.write_all(&frame)?;
            }
        }
        self.entries += 1;
        self.bytes += frame.len() as u64;
        Ok(())
    }

    /// Forces buffered data to stable storage (no-op for the memory
    /// backend).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] if `fsync` fails.
    pub fn sync(&mut self) -> Result<()> {
        if let Backend::File { file, .. } = &mut self.backend {
            file.sync_data()?;
        }
        Ok(())
    }

    /// Reads back all valid frames from the start of the log. Stops at the
    /// first torn or corrupt frame.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] if the file backend cannot be read.
    pub fn replay(&mut self) -> Result<Vec<Vec<u8>>> {
        let raw: Vec<u8> = match &mut self.backend {
            Backend::Memory(buf) => buf.to_vec(),
            Backend::File { file, .. } => {
                let mut v = Vec::new();
                file.seek(SeekFrom::Start(0))?;
                file.read_to_end(&mut v)?;
                file.seek(SeekFrom::End(0))?;
                v
            }
        };
        let mut frames = Vec::new();
        let mut cursor = &raw[..];
        while cursor.len() >= 8 {
            let len = (&cursor[0..4]).get_u32_le() as usize;
            let crc = (&cursor[4..8]).get_u32_le();
            if cursor.len() < 8 + len {
                break; // torn tail
            }
            let payload = &cursor[8..8 + len];
            if crc32(payload) != crc {
                break; // corrupt tail
            }
            frames.push(payload.to_vec());
            cursor = &cursor[8 + len..];
        }
        Ok(frames)
    }

    /// Discards all log content (called after a successful index commit).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] if the file backend cannot be truncated.
    pub fn truncate(&mut self) -> Result<()> {
        match &mut self.backend {
            Backend::Memory(buf) => buf.clear(),
            Backend::File { file, .. } => {
                file.set_len(0)?;
                file.seek(SeekFrom::Start(0))?;
            }
        }
        self.entries = 0;
        self.bytes = 0;
        Ok(())
    }

    /// Number of frames appended since the last truncate.
    pub fn entry_count(&self) -> u64 {
        self.entries
    }

    /// The backing file path, or `None` for the in-memory backend.
    pub fn path(&self) -> Option<&Path> {
        match &self.backend {
            Backend::Memory(_) => None,
            Backend::File { path, .. } => Some(path),
        }
    }

    /// Bytes appended since the last truncate (including frame headers).
    pub fn byte_size(&self) -> u64 {
        self.bytes
    }

    /// Injects raw bytes at the tail (test hook for corruption scenarios).
    #[doc(hidden)]
    pub fn append_raw_for_test(&mut self, raw: &[u8]) -> Result<()> {
        match &mut self.backend {
            Backend::Memory(buf) => buf.extend_from_slice(raw),
            Backend::File { file, .. } => file.write_all(raw).map_err(Error::from)?,
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard test vector: "123456789" -> 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn memory_append_replay() {
        let mut wal = Wal::in_memory();
        for i in 0..10u32 {
            wal.append(&i.to_le_bytes()).unwrap();
        }
        let frames = wal.replay().unwrap();
        assert_eq!(frames.len(), 10);
        assert_eq!(frames[3], 3u32.to_le_bytes());
        assert_eq!(wal.entry_count(), 10);
    }

    #[test]
    fn empty_payloads_are_legal() {
        let mut wal = Wal::in_memory();
        wal.append(b"").unwrap();
        wal.append(b"x").unwrap();
        assert_eq!(wal.replay().unwrap(), vec![b"".to_vec(), b"x".to_vec()]);
    }

    #[test]
    fn truncate_clears() {
        let mut wal = Wal::in_memory();
        wal.append(b"abc").unwrap();
        wal.truncate().unwrap();
        assert!(wal.replay().unwrap().is_empty());
        assert_eq!(wal.entry_count(), 0);
        assert_eq!(wal.byte_size(), 0);
    }

    #[test]
    fn torn_tail_is_dropped() {
        let mut wal = Wal::in_memory();
        wal.append(b"good").unwrap();
        // A frame header promising 100 bytes with only 3 present.
        let mut torn = Vec::new();
        torn.extend_from_slice(&100u32.to_le_bytes());
        torn.extend_from_slice(&0u32.to_le_bytes());
        torn.extend_from_slice(b"abc");
        wal.append_raw_for_test(&torn).unwrap();
        assert_eq!(wal.replay().unwrap(), vec![b"good".to_vec()]);
    }

    #[test]
    fn corrupt_crc_stops_replay() {
        let mut wal = Wal::in_memory();
        wal.append(b"first").unwrap();
        let mut bad = Vec::new();
        bad.extend_from_slice(&5u32.to_le_bytes());
        bad.extend_from_slice(&0xDEAD_BEEFu32.to_le_bytes()); // wrong crc
        bad.extend_from_slice(b"wrong");
        wal.append_raw_for_test(&bad).unwrap();
        wal.append(b"after").unwrap(); // unreachable past corruption
        assert_eq!(wal.replay().unwrap(), vec![b"first".to_vec()]);
    }

    #[test]
    fn file_backend_round_trip() {
        let dir = std::env::temp_dir().join(format!("propeller-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.wal");
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(b"persisted-1").unwrap();
            wal.append(b"persisted-2").unwrap();
            wal.sync().unwrap();
        }
        {
            let mut wal = Wal::open(&path).unwrap();
            assert_eq!(wal.entry_count(), 2);
            let frames = wal.replay().unwrap();
            assert_eq!(frames, vec![b"persisted-1".to_vec(), b"persisted-2".to_vec()]);
            wal.truncate().unwrap();
        }
        {
            let mut wal = Wal::open(&path).unwrap();
            assert!(wal.replay().unwrap().is_empty());
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn appends_after_a_torn_tail_survive_reopen() {
        let dir = std::env::temp_dir().join(format!("propeller-wal-torn-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn-tail.wal");
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(b"acked-1").unwrap();
            wal.append(b"acked-2").unwrap();
            // Crash mid-append: a header promising 64 bytes, 3 present.
            let mut torn = Vec::new();
            torn.extend_from_slice(&64u32.to_le_bytes());
            torn.extend_from_slice(&0u32.to_le_bytes());
            torn.extend_from_slice(b"abc");
            wal.append_raw_for_test(&torn).unwrap();
            wal.sync().unwrap();
        }
        {
            // Recovery: the valid prefix survives, the torn tail is
            // truncated, and new appends land where replay can reach them.
            let mut wal = Wal::open(&path).unwrap();
            assert_eq!(wal.entry_count(), 2);
            wal.append(b"acked-3").unwrap();
            wal.sync().unwrap();
        }
        {
            // The second recovery must see ALL acknowledged frames. The
            // old `Wal::open` left the torn bytes in place, so "acked-3"
            // sat unreachable behind them and was silently lost here.
            let mut wal = Wal::open(&path).unwrap();
            assert_eq!(
                wal.replay().unwrap(),
                vec![b"acked-1".to_vec(), b"acked-2".to_vec(), b"acked-3".to_vec()]
            );
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_crc_tail_is_truncated_on_reopen() {
        let dir = std::env::temp_dir().join(format!("propeller-wal-crc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corrupt-tail.wal");
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(b"good").unwrap();
            let mut bad = Vec::new();
            bad.extend_from_slice(&5u32.to_le_bytes());
            bad.extend_from_slice(&0xDEAD_BEEFu32.to_le_bytes());
            bad.extend_from_slice(b"wrong");
            wal.append_raw_for_test(&bad).unwrap();
            wal.sync().unwrap();
        }
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(b"after").unwrap();
            assert_eq!(wal.replay().unwrap(), vec![b"good".to_vec(), b"after".to_vec()]);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn replay_is_idempotent() {
        let mut wal = Wal::in_memory();
        wal.append(b"one").unwrap();
        assert_eq!(wal.replay().unwrap(), wal.replay().unwrap());
    }
}
