//! Write-ahead log with CRC-protected framing and real log sequence
//! numbers.
//!
//! Index Nodes append every file-indexing request to a WAL before caching
//! it in memory (paper §IV "Index Node"), so acknowledged updates survive a
//! crash. Frames are `[len: u32 LE][crc32: u32 LE][payload]`; replay stops
//! at the first torn or corrupt frame, which models the standard
//! "valid prefix" recovery contract.
//!
//! Every frame carries an implicit **log sequence number**: the `i`-th
//! frame of a log whose base LSN is `b` has LSN `b + i`, LSNs start at 1,
//! and the base survives restarts through a small CRC-protected file
//! header. LSNs are what anchor snapshots to the log: a snapshot stamped
//! with LSN `s` covers every frame with LSN `≤ s`, recovery replays only
//! the suffix (`> s`), and [`Wal::truncate_upto`] discards the covered
//! prefix so the log stays bounded without ever renumbering the frames
//! that remain.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use bytes::{Buf, BufMut, BytesMut};
use propeller_types::{Error, Result};

/// CRC-32 (IEEE 802.3, reflected) computed bytewise with a generated table.
pub fn crc32(data: &[u8]) -> u32 {
    const fn make_table() -> [u32; 256] {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    }
    const TABLE: [u32; 256] = make_table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

/// Magic prefix of a headered WAL file.
const MAGIC: [u8; 4] = *b"PWAL";
/// On-disk format version.
const VERSION: u32 = 1;
/// Header layout: `[magic 4][version u32][base_lsn u64][crc32 u32]` where
/// the CRC covers the version and base LSN bytes.
const HEADER_LEN: usize = 4 + 4 + 8 + 4;

fn encode_header(base_lsn: u64) -> [u8; HEADER_LEN] {
    let mut buf = [0u8; HEADER_LEN];
    buf[0..4].copy_from_slice(&MAGIC);
    buf[4..8].copy_from_slice(&VERSION.to_le_bytes());
    buf[8..16].copy_from_slice(&base_lsn.to_le_bytes());
    let crc = crc32(&buf[4..16]);
    buf[16..20].copy_from_slice(&crc.to_le_bytes());
    buf
}

#[derive(Debug)]
enum Backend {
    Memory(BytesMut),
    File { file: File, path: PathBuf },
}

/// An append-only write-ahead log.
///
/// Two backends: in-memory (for modeled-mode experiments and tests) and a
/// real file (for durability tests and measured mode). Both share the frame
/// format, so recovery code is backend-agnostic.
///
/// # Examples
///
/// ```
/// use propeller_index::Wal;
///
/// let mut wal = Wal::in_memory();
/// assert_eq!(wal.append(b"op-1").unwrap(), 1);
/// assert_eq!(wal.append(b"op-2").unwrap(), 2);
/// let frames = wal.replay().unwrap();
/// assert_eq!(frames, vec![b"op-1".to_vec(), b"op-2".to_vec()]);
/// ```
#[derive(Debug)]
pub struct Wal {
    backend: Backend,
    entries: u64,
    /// Frame bytes currently in the log (headers of the frames included,
    /// the file header excluded).
    bytes: u64,
    /// LSN of the first frame currently in the log. LSNs start at 1; the
    /// base only moves forward (truncation), never back.
    base_lsn: u64,
}

impl Wal {
    /// Creates an in-memory WAL.
    pub fn in_memory() -> Self {
        Wal { backend: Backend::Memory(BytesMut::new()), entries: 0, bytes: 0, base_lsn: 1 }
    }

    /// Opens (or creates) a file-backed WAL, counting any existing valid
    /// frames. Any torn or corrupt tail beyond the valid prefix — the
    /// residue of a crash mid-append — is **truncated away**: leaving it
    /// in place would park every later append *behind* the bad frame,
    /// where replay (which stops at the first bad frame) can never reach
    /// it, silently losing acknowledged ops on the next recovery.
    ///
    /// A fresh file gets a CRC-protected header carrying the base LSN;
    /// headerless files (logs written before LSNs existed) open with base
    /// LSN 1 and gain a header on their next truncation.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] if the file cannot be opened, read or
    /// truncated, and [`Error::Corrupt`] when a full-size header fails its
    /// CRC (a torn, partial header is treated as an empty log instead —
    /// the crash happened before the first append could follow it).
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new().create(true).read(true).append(true).open(&path)?;
        let mut raw = Vec::new();
        file.seek(SeekFrom::Start(0))?;
        file.read_to_end(&mut raw)?;
        let (base_lsn, header_len) = if raw.is_empty() {
            file.write_all(&encode_header(1))?;
            (1, HEADER_LEN)
        } else if raw.starts_with(&MAGIC) {
            if raw.len() < HEADER_LEN {
                // Torn header: the crash hit the very first write. Nothing
                // after a partial header can be a valid frame; reset.
                file.set_len(0)?;
                file.seek(SeekFrom::End(0))?;
                file.write_all(&encode_header(1))?;
                (1, HEADER_LEN)
            } else {
                let crc = u32::from_le_bytes(raw[16..20].try_into().expect("4 bytes"));
                if crc32(&raw[4..16]) != crc {
                    return Err(Error::Corrupt(format!(
                        "wal header crc mismatch in {}",
                        path.display()
                    )));
                }
                (u64::from_le_bytes(raw[8..16].try_into().expect("8 bytes")), HEADER_LEN)
            }
        } else {
            // Legacy headerless log: every byte is frame data, base LSN 1.
            (1, 0)
        };
        let frames = scan_frames(&raw[header_len.min(raw.len())..]);
        let bytes: u64 = frames.iter().map(|f| f.len() as u64 + 8).sum();
        if file.metadata()?.len() > header_len as u64 + bytes {
            file.set_len(header_len as u64 + bytes)?;
        }
        file.seek(SeekFrom::End(0))?;
        Ok(Wal {
            backend: Backend::File { file, path },
            entries: frames.len() as u64,
            bytes,
            base_lsn,
        })
    }

    /// Appends one payload as a framed record, returning the LSN the frame
    /// was assigned.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] on file-backend write failures.
    pub fn append(&mut self, payload: &[u8]) -> Result<u64> {
        let mut frame = BytesMut::with_capacity(payload.len() + 8);
        frame.put_u32_le(payload.len() as u32);
        frame.put_u32_le(crc32(payload));
        frame.put_slice(payload);
        match &mut self.backend {
            Backend::Memory(buf) => buf.extend_from_slice(&frame),
            Backend::File { file, .. } => {
                file.write_all(&frame)?;
            }
        }
        let lsn = self.base_lsn + self.entries;
        self.entries += 1;
        self.bytes += frame.len() as u64;
        Ok(lsn)
    }

    /// Forces buffered data to stable storage (no-op for the memory
    /// backend).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] if `fsync` fails.
    pub fn sync(&mut self) -> Result<()> {
        if let Backend::File { file, .. } = &mut self.backend {
            file.sync_data()?;
        }
        Ok(())
    }

    fn raw_frames(&mut self) -> Result<Vec<u8>> {
        Ok(match &mut self.backend {
            Backend::Memory(buf) => buf.to_vec(),
            Backend::File { file, .. } => {
                let mut v = Vec::new();
                file.seek(SeekFrom::Start(0))?;
                file.read_to_end(&mut v)?;
                file.seek(SeekFrom::End(0))?;
                if v.starts_with(&MAGIC) && v.len() >= HEADER_LEN {
                    v.split_off(HEADER_LEN)
                } else {
                    v
                }
            }
        })
    }

    /// Reads back all valid frames currently in the log. Stops at the
    /// first torn or corrupt frame.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] if the file backend cannot be read.
    pub fn replay(&mut self) -> Result<Vec<Vec<u8>>> {
        let raw = self.raw_frames()?;
        Ok(scan_frames(&raw))
    }

    /// Reads back the valid frames with LSN strictly greater than
    /// `after_lsn`, paired with their LSNs — the suffix-replay entry point
    /// for snapshot-anchored recovery.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] if the file backend cannot be read.
    pub fn replay_from(&mut self, after_lsn: u64) -> Result<Vec<(u64, Vec<u8>)>> {
        let base = self.base_lsn;
        Ok(self
            .replay()?
            .into_iter()
            .enumerate()
            .map(|(i, payload)| (base + i as u64, payload))
            .filter(|&(lsn, _)| lsn > after_lsn)
            .collect())
    }

    /// Discards all log content, advancing the base LSN past every frame
    /// dropped so sequence numbers stay monotone across the truncation.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] if the file backend cannot be truncated.
    pub fn truncate(&mut self) -> Result<()> {
        self.base_lsn += self.entries;
        match &mut self.backend {
            Backend::Memory(buf) => buf.clear(),
            Backend::File { file, .. } => {
                file.set_len(0)?;
                file.seek(SeekFrom::End(0))?;
                file.write_all(&encode_header(self.base_lsn))?;
            }
        }
        self.entries = 0;
        self.bytes = 0;
        Ok(())
    }

    /// Discards every frame with LSN `≤ lsn`, keeping the suffix with its
    /// original sequence numbers — called after a snapshot covering `lsn`
    /// has been made durable, so the log holds only what recovery still
    /// needs to replay. LSNs at or below the current base are a no-op.
    ///
    /// The file backend rewrites the log through a temp file renamed into
    /// place, so a crash mid-truncation leaves either the old or the new
    /// log, never a torn hybrid.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] on file-backend failures.
    pub fn truncate_upto(&mut self, lsn: u64) -> Result<()> {
        if lsn < self.base_lsn {
            return Ok(());
        }
        let frames = self.replay()?;
        let drop_n = ((lsn + 1).saturating_sub(self.base_lsn) as usize).min(frames.len());
        let kept = &frames[drop_n..];
        let new_base = self.base_lsn + drop_n as u64;
        let mut content = BytesMut::new();
        for payload in kept {
            content.put_u32_le(payload.len() as u32);
            content.put_u32_le(crc32(payload));
            content.put_slice(payload);
        }
        let bytes = content.len() as u64;
        match &mut self.backend {
            Backend::Memory(buf) => *buf = content,
            Backend::File { file, path } => {
                let tmp = path.with_extension("wal.tmp");
                {
                    let mut out = File::create(&tmp)?;
                    out.write_all(&encode_header(new_base))?;
                    out.write_all(&content)?;
                    out.sync_data()?;
                }
                std::fs::rename(&tmp, &*path)?;
                let mut reopened =
                    OpenOptions::new().create(true).read(true).append(true).open(&*path)?;
                reopened.seek(SeekFrom::End(0))?;
                *file = reopened;
            }
        }
        self.base_lsn = new_base;
        self.entries = kept.len() as u64;
        self.bytes = bytes;
        Ok(())
    }

    /// Discards all log content and **re-bases** the sequence so the next
    /// appended frame is assigned LSN `last_lsn + 1` — the entry point for
    /// seeding a replica at its primary's replication position. Unlike
    /// [`Wal::truncate`], which can only move the base past frames it
    /// holds, this jumps the base to an arbitrary point so a freshly
    /// seeded follower continues the primary's LSN sequence exactly.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] if the file backend cannot be truncated.
    pub fn reset_to(&mut self, last_lsn: u64) -> Result<()> {
        self.base_lsn = last_lsn + 1;
        match &mut self.backend {
            Backend::Memory(buf) => buf.clear(),
            Backend::File { file, .. } => {
                file.set_len(0)?;
                file.seek(SeekFrom::End(0))?;
                file.write_all(&encode_header(self.base_lsn))?;
            }
        }
        self.entries = 0;
        self.bytes = 0;
        Ok(())
    }

    /// Number of frames currently in the log.
    pub fn entry_count(&self) -> u64 {
        self.entries
    }

    /// LSN of the first frame currently in the log (the next frame to be
    /// appended when the log is empty).
    pub fn first_lsn(&self) -> u64 {
        self.base_lsn
    }

    /// The LSN the next appended frame will be assigned.
    pub fn next_lsn(&self) -> u64 {
        self.base_lsn + self.entries
    }

    /// LSN of the most recently appended frame still relevant to the log's
    /// sequence (0 when nothing has ever been appended).
    pub fn last_lsn(&self) -> u64 {
        self.base_lsn + self.entries - 1
    }

    /// The backing file path, or `None` for the in-memory backend.
    pub fn path(&self) -> Option<&Path> {
        match &self.backend {
            Backend::Memory(_) => None,
            Backend::File { path, .. } => Some(path),
        }
    }

    /// Returns `true` when the log survives a process crash (file backend).
    pub fn is_durable(&self) -> bool {
        matches!(self.backend, Backend::File { .. })
    }

    /// Frame bytes currently in the log (including frame headers).
    pub fn byte_size(&self) -> u64 {
        self.bytes
    }

    /// Injects raw bytes at the tail (test hook for corruption scenarios).
    #[doc(hidden)]
    pub fn append_raw_for_test(&mut self, raw: &[u8]) -> Result<()> {
        match &mut self.backend {
            Backend::Memory(buf) => buf.extend_from_slice(raw),
            Backend::File { file, .. } => file.write_all(raw).map_err(Error::from)?,
        }
        Ok(())
    }
}

/// Splits raw log bytes into valid frames, stopping at the first torn or
/// corrupt one.
fn scan_frames(mut cursor: &[u8]) -> Vec<Vec<u8>> {
    let mut frames = Vec::new();
    while cursor.len() >= 8 {
        let len = (&cursor[0..4]).get_u32_le() as usize;
        let crc = (&cursor[4..8]).get_u32_le();
        if cursor.len() < 8 + len {
            break; // torn tail
        }
        let payload = &cursor[8..8 + len];
        if crc32(payload) != crc {
            break; // corrupt tail
        }
        frames.push(payload.to_vec());
        cursor = &cursor[8 + len..];
    }
    frames
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard test vector: "123456789" -> 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn memory_append_replay() {
        let mut wal = Wal::in_memory();
        for i in 0..10u32 {
            wal.append(&i.to_le_bytes()).unwrap();
        }
        let frames = wal.replay().unwrap();
        assert_eq!(frames.len(), 10);
        assert_eq!(frames[3], 3u32.to_le_bytes());
        assert_eq!(wal.entry_count(), 10);
    }

    #[test]
    fn empty_payloads_are_legal() {
        let mut wal = Wal::in_memory();
        wal.append(b"").unwrap();
        wal.append(b"x").unwrap();
        assert_eq!(wal.replay().unwrap(), vec![b"".to_vec(), b"x".to_vec()]);
    }

    #[test]
    fn truncate_clears_and_advances_the_base() {
        let mut wal = Wal::in_memory();
        wal.append(b"abc").unwrap();
        wal.truncate().unwrap();
        assert!(wal.replay().unwrap().is_empty());
        assert_eq!(wal.entry_count(), 0);
        assert_eq!(wal.byte_size(), 0);
        // LSNs never restart: the next append continues the sequence.
        assert_eq!(wal.append(b"next").unwrap(), 2);
    }

    #[test]
    fn lsns_are_monotone_and_returned_by_append() {
        let mut wal = Wal::in_memory();
        assert_eq!(wal.append(b"a").unwrap(), 1);
        assert_eq!(wal.append(b"b").unwrap(), 2);
        assert_eq!(wal.next_lsn(), 3);
        assert_eq!(wal.first_lsn(), 1);
        assert_eq!(wal.last_lsn(), 2);
    }

    #[test]
    fn truncate_upto_keeps_the_suffix_with_its_lsns() {
        let mut wal = Wal::in_memory();
        for i in 0..10u32 {
            wal.append(&i.to_le_bytes()).unwrap();
        }
        wal.truncate_upto(6).unwrap();
        assert_eq!(wal.entry_count(), 4);
        assert_eq!(wal.first_lsn(), 7);
        let suffix = wal.replay_from(0).unwrap();
        assert_eq!(
            suffix,
            (7u64..=10)
                .map(|lsn| (lsn, ((lsn - 1) as u32).to_le_bytes().to_vec()))
                .collect::<Vec<_>>()
        );
        // Below-base truncation is a no-op.
        wal.truncate_upto(3).unwrap();
        assert_eq!(wal.entry_count(), 4);
        // Appends continue the sequence.
        assert_eq!(wal.append(b"tail").unwrap(), 11);
    }

    #[test]
    fn reset_to_rebases_the_sequence() {
        let mut wal = Wal::in_memory();
        wal.append(b"old-1").unwrap();
        wal.append(b"old-2").unwrap();
        wal.reset_to(41).unwrap();
        assert!(wal.replay().unwrap().is_empty());
        assert_eq!(wal.first_lsn(), 42);
        assert_eq!(wal.append(b"seeded").unwrap(), 42);
    }

    #[test]
    fn reset_to_survives_file_reopen() {
        let path = temp_path("reset-to");
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(b"pre-seed").unwrap();
            wal.reset_to(99).unwrap();
            wal.sync().unwrap();
        }
        {
            let mut wal = Wal::open(&path).unwrap();
            assert_eq!(wal.entry_count(), 0);
            assert_eq!(wal.append(b"post-seed").unwrap(), 100);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn replay_from_filters_by_lsn() {
        let mut wal = Wal::in_memory();
        for i in 0..5u32 {
            wal.append(&i.to_le_bytes()).unwrap();
        }
        let suffix = wal.replay_from(3).unwrap();
        assert_eq!(suffix.len(), 2);
        assert_eq!(suffix[0].0, 4);
        assert_eq!(suffix[1].0, 5);
    }

    #[test]
    fn torn_tail_is_dropped() {
        let mut wal = Wal::in_memory();
        wal.append(b"good").unwrap();
        // A frame header promising 100 bytes with only 3 present.
        let mut torn = Vec::new();
        torn.extend_from_slice(&100u32.to_le_bytes());
        torn.extend_from_slice(&0u32.to_le_bytes());
        torn.extend_from_slice(b"abc");
        wal.append_raw_for_test(&torn).unwrap();
        assert_eq!(wal.replay().unwrap(), vec![b"good".to_vec()]);
    }

    #[test]
    fn corrupt_crc_stops_replay() {
        let mut wal = Wal::in_memory();
        wal.append(b"first").unwrap();
        let mut bad = Vec::new();
        bad.extend_from_slice(&5u32.to_le_bytes());
        bad.extend_from_slice(&0xDEAD_BEEFu32.to_le_bytes()); // wrong crc
        bad.extend_from_slice(b"wrong");
        wal.append_raw_for_test(&bad).unwrap();
        wal.append(b"after").unwrap(); // unreachable past corruption
        assert_eq!(wal.replay().unwrap(), vec![b"first".to_vec()]);
    }

    fn temp_path(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("propeller-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{tag}.wal"));
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn file_backend_round_trip() {
        let path = temp_path("round-trip");
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(b"persisted-1").unwrap();
            wal.append(b"persisted-2").unwrap();
            wal.sync().unwrap();
        }
        {
            let mut wal = Wal::open(&path).unwrap();
            assert_eq!(wal.entry_count(), 2);
            let frames = wal.replay().unwrap();
            assert_eq!(frames, vec![b"persisted-1".to_vec(), b"persisted-2".to_vec()]);
            wal.truncate().unwrap();
        }
        {
            let mut wal = Wal::open(&path).unwrap();
            assert!(wal.replay().unwrap().is_empty());
            // The base LSN survived the truncate and the reopen.
            assert_eq!(wal.append(b"x").unwrap(), 3);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn base_lsn_survives_reopen_after_truncate_upto() {
        let path = temp_path("lsn-reopen");
        {
            let mut wal = Wal::open(&path).unwrap();
            for i in 0..8u32 {
                wal.append(&i.to_le_bytes()).unwrap();
            }
            wal.truncate_upto(5).unwrap();
            wal.sync().unwrap();
        }
        {
            let mut wal = Wal::open(&path).unwrap();
            assert_eq!(wal.first_lsn(), 6);
            assert_eq!(wal.entry_count(), 3);
            assert_eq!(
                wal.replay_from(0).unwrap().iter().map(|(l, _)| *l).collect::<Vec<_>>(),
                vec![6, 7, 8]
            );
            assert_eq!(wal.append(b"y").unwrap(), 9);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn appends_after_a_torn_tail_survive_reopen() {
        let path = temp_path("torn-tail");
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(b"acked-1").unwrap();
            wal.append(b"acked-2").unwrap();
            // Crash mid-append: a header promising 64 bytes, 3 present.
            let mut torn = Vec::new();
            torn.extend_from_slice(&64u32.to_le_bytes());
            torn.extend_from_slice(&0u32.to_le_bytes());
            torn.extend_from_slice(b"abc");
            wal.append_raw_for_test(&torn).unwrap();
            wal.sync().unwrap();
        }
        {
            // Recovery: the valid prefix survives, the torn tail is
            // truncated, and new appends land where replay can reach them.
            let mut wal = Wal::open(&path).unwrap();
            assert_eq!(wal.entry_count(), 2);
            assert_eq!(wal.append(b"acked-3").unwrap(), 3);
            wal.sync().unwrap();
        }
        {
            // The second recovery must see ALL acknowledged frames. The
            // old `Wal::open` left the torn bytes in place, so "acked-3"
            // sat unreachable behind them and was silently lost here.
            let mut wal = Wal::open(&path).unwrap();
            assert_eq!(
                wal.replay().unwrap(),
                vec![b"acked-1".to_vec(), b"acked-2".to_vec(), b"acked-3".to_vec()]
            );
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_crc_tail_is_truncated_on_reopen() {
        let path = temp_path("corrupt-tail");
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(b"good").unwrap();
            let mut bad = Vec::new();
            bad.extend_from_slice(&5u32.to_le_bytes());
            bad.extend_from_slice(&0xDEAD_BEEFu32.to_le_bytes());
            bad.extend_from_slice(b"wrong");
            wal.append_raw_for_test(&bad).unwrap();
            wal.sync().unwrap();
        }
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(b"after").unwrap();
            assert_eq!(wal.replay().unwrap(), vec![b"good".to_vec(), b"after".to_vec()]);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn legacy_headerless_log_opens_with_base_one() {
        let path = temp_path("legacy");
        {
            // A pre-LSN log: raw frames, no header.
            let mut raw = Vec::new();
            for payload in [b"one".as_slice(), b"two"] {
                raw.extend_from_slice(&(payload.len() as u32).to_le_bytes());
                raw.extend_from_slice(&crc32(payload).to_le_bytes());
                raw.extend_from_slice(payload);
            }
            std::fs::write(&path, raw).unwrap();
        }
        let mut wal = Wal::open(&path).unwrap();
        assert_eq!(wal.entry_count(), 2);
        assert_eq!(wal.first_lsn(), 1);
        assert_eq!(wal.replay().unwrap(), vec![b"one".to_vec(), b"two".to_vec()]);
        assert_eq!(wal.append(b"three").unwrap(), 3);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_header_resets_to_an_empty_log() {
        let path = temp_path("torn-header");
        std::fs::write(&path, &MAGIC[..3]).unwrap();
        let mut wal = Wal::open(&path).unwrap();
        assert_eq!(wal.entry_count(), 0);
        assert_eq!(wal.append(b"x").unwrap(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_header_is_rejected() {
        let path = temp_path("bad-header");
        let mut header = encode_header(7).to_vec();
        header[9] ^= 0xFF; // flip a base-LSN byte under the CRC
        std::fs::write(&path, header).unwrap();
        assert!(matches!(Wal::open(&path), Err(Error::Corrupt(_))));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn replay_is_idempotent() {
        let mut wal = Wal::in_memory();
        wal.append(b"one").unwrap();
        assert_eq!(wal.replay().unwrap(), wal.replay().unwrap());
    }
}
