//! Index operations and their binary codec.
//!
//! [`IndexOp`] is the unit of work an Index Node receives from clients:
//! upsert a file's indexable record or remove a file. Ops are encoded with
//! a compact hand-rolled binary format (length-prefixed, little-endian) for
//! the WAL; the codec is deliberately independent of `serde` so the on-log
//! format is stable and cheap.

use bytes::{Buf, BufMut, BytesMut};
use propeller_types::{Error, FileId, InodeAttrs, Result, Timestamp, Value};
use serde::{Deserialize, Serialize};

/// The full indexable record for one file: inode attributes, extracted
/// keywords and user-defined attributes (paper §IV: Propeller indexes
/// arbitrary user-defined attributes, not just inode metadata).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FileRecord {
    /// The file this record describes.
    pub file: FileId,
    /// Standard inode metadata.
    pub attrs: InodeAttrs,
    /// Keywords extracted from the path or content.
    pub keywords: Vec<String>,
    /// User-defined attributes.
    pub custom: Vec<(String, Value)>,
}

impl FileRecord {
    /// A record with only inode attributes.
    pub fn new(file: FileId, attrs: InodeAttrs) -> Self {
        FileRecord { file, attrs, keywords: Vec::new(), custom: Vec::new() }
    }

    /// Adds a keyword (builder style).
    pub fn with_keyword(mut self, kw: impl Into<String>) -> Self {
        self.keywords.push(kw.into());
        self
    }

    /// Adds a custom attribute (builder style).
    pub fn with_custom(mut self, name: impl Into<String>, value: Value) -> Self {
        self.custom.push((name.into(), value));
        self
    }

    /// Adds extracted content text as the conventional `"content"` custom
    /// attribute (builder style). The inverted index tokenizes it along
    /// with the keywords and every other string-valued custom attribute.
    pub fn with_content(mut self, text: impl Into<String>) -> Self {
        self.custom.push(("content".into(), Value::Str(text.into())));
        self
    }
}

/// One indexing operation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum IndexOp {
    /// Insert or replace a file's record.
    Upsert(FileRecord),
    /// Remove a file's record.
    Remove(FileId),
}

impl IndexOp {
    /// The file this op targets.
    pub fn file(&self) -> FileId {
        match self {
            IndexOp::Upsert(r) => r.file,
            IndexOp::Remove(f) => *f,
        }
    }

    /// Encodes the op for the WAL.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = BytesMut::new();
        match self {
            IndexOp::Upsert(r) => {
                buf.put_u8(1);
                encode_record_into(&mut buf, r);
            }
            IndexOp::Remove(f) => {
                buf.put_u8(2);
                buf.put_u64_le(f.raw());
            }
        }
        buf.to_vec()
    }

    /// Decodes an op from WAL bytes.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corrupt`] when the bytes are malformed.
    pub fn decode(mut data: &[u8]) -> Result<IndexOp> {
        let tag = take_u8(&mut data)?;
        match tag {
            1 => Ok(IndexOp::Upsert(decode_record(&mut data)?)),
            2 => Ok(IndexOp::Remove(FileId::new(take_u64(&mut data)?))),
            other => Err(Error::Corrupt(format!("unknown index op tag {other}"))),
        }
    }

    /// Encodes a whole batch of ops as **one** WAL frame payload (tag 3:
    /// `[count][len][op]...`) — the group-commit format. One framed append
    /// (and one syscall on the file backend) covers the entire
    /// `IndexBatch` instead of one frame per op.
    pub fn encode_batch(ops: &[IndexOp]) -> Vec<u8> {
        let mut buf = BytesMut::new();
        buf.put_u8(3);
        buf.put_u32_le(ops.len() as u32);
        for op in ops {
            let bytes = op.encode();
            buf.put_u32_le(bytes.len() as u32);
            buf.put_slice(&bytes);
        }
        buf.to_vec()
    }

    /// Decodes one WAL frame into its ops: batch frames (tag 3) yield
    /// every member, classic single-op frames yield one — so recovery
    /// reads logs written before group commit unchanged.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corrupt`] when the bytes are malformed.
    pub fn decode_frame(data: &[u8]) -> Result<Vec<IndexOp>> {
        if data.first() != Some(&3) {
            return Ok(vec![IndexOp::decode(data)?]);
        }
        let mut cursor = &data[1..];
        let n = take_u32(&mut cursor)? as usize;
        let mut ops = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            let len = take_u32(&mut cursor)? as usize;
            need(cursor, len)?;
            let (bytes, rest) = cursor.split_at(len);
            ops.push(IndexOp::decode(bytes)?);
            cursor = rest;
        }
        if !cursor.is_empty() {
            return Err(Error::Corrupt(format!("{} trailing bytes after batch", cursor.len())));
        }
        Ok(ops)
    }
}

/// Encodes one record's fields (no tag byte) — shared by the op codec and
/// the snapshot writer, so a snapshot file and a WAL frame describe a
/// record with identical bytes.
pub(crate) fn encode_record_into(buf: &mut BytesMut, r: &FileRecord) {
    buf.put_u64_le(r.file.raw());
    buf.put_u64_le(r.attrs.size);
    buf.put_u64_le(r.attrs.mtime.as_micros());
    buf.put_u64_le(r.attrs.ctime.as_micros());
    buf.put_u32_le(r.attrs.uid);
    buf.put_u32_le(r.attrs.gid);
    buf.put_u32_le(r.attrs.mode);
    buf.put_u32_le(r.attrs.nlink);
    buf.put_u32_le(r.keywords.len() as u32);
    for kw in &r.keywords {
        put_str(buf, kw);
    }
    buf.put_u32_le(r.custom.len() as u32);
    for (name, value) in &r.custom {
        put_str(buf, name);
        put_value(buf, value);
    }
}

/// Decodes one record's fields (no tag byte); the counterpart of
/// [`encode_record_into`].
pub(crate) fn decode_record(data: &mut &[u8]) -> Result<FileRecord> {
    let file = FileId::new(take_u64(data)?);
    let attrs = InodeAttrs {
        size: take_u64(data)?,
        mtime: Timestamp::from_micros(take_u64(data)?),
        ctime: Timestamp::from_micros(take_u64(data)?),
        uid: take_u32(data)?,
        gid: take_u32(data)?,
        mode: take_u32(data)?,
        nlink: take_u32(data)?,
    };
    let nk = take_u32(data)? as usize;
    let mut keywords = Vec::with_capacity(nk.min(1024));
    for _ in 0..nk {
        keywords.push(take_str(data)?);
    }
    let nc = take_u32(data)? as usize;
    let mut custom = Vec::with_capacity(nc.min(1024));
    for _ in 0..nc {
        let name = take_str(data)?;
        let value = take_value(data)?;
        custom.push((name, value));
    }
    Ok(FileRecord { file, attrs, keywords, custom })
}

pub(crate) fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn put_value(buf: &mut BytesMut, v: &Value) {
    match v {
        Value::U64(x) => {
            buf.put_u8(0);
            buf.put_u64_le(*x);
        }
        Value::I64(x) => {
            buf.put_u8(1);
            buf.put_i64_le(*x);
        }
        Value::F64(x) => {
            buf.put_u8(2);
            buf.put_f64_le(*x);
        }
        Value::Str(s) => {
            buf.put_u8(3);
            put_str(buf, s);
        }
    }
}

pub(crate) fn need(data: &[u8], n: usize) -> Result<()> {
    if data.len() < n {
        Err(Error::Corrupt(format!("truncated op: need {n} bytes, have {}", data.len())))
    } else {
        Ok(())
    }
}

pub(crate) fn take_u8(data: &mut &[u8]) -> Result<u8> {
    need(data, 1)?;
    Ok(data.get_u8())
}

pub(crate) fn take_u32(data: &mut &[u8]) -> Result<u32> {
    need(data, 4)?;
    Ok(data.get_u32_le())
}

pub(crate) fn take_u64(data: &mut &[u8]) -> Result<u64> {
    need(data, 8)?;
    Ok(data.get_u64_le())
}

pub(crate) fn take_str(data: &mut &[u8]) -> Result<String> {
    let len = take_u32(data)? as usize;
    need(data, len)?;
    let (s, rest) = data.split_at(len);
    let out = String::from_utf8(s.to_vec())
        .map_err(|e| Error::Corrupt(format!("invalid utf-8 in op: {e}")))?;
    *data = rest;
    Ok(out)
}

fn take_value(data: &mut &[u8]) -> Result<Value> {
    let tag = take_u8(data)?;
    Ok(match tag {
        0 => Value::U64(take_u64(data)?),
        1 => {
            need(data, 8)?;
            Value::I64(data.get_i64_le())
        }
        2 => {
            need(data, 8)?;
            Value::F64(data.get_f64_le())
        }
        3 => Value::Str(take_str(data)?),
        other => return Err(Error::Corrupt(format!("unknown value tag {other}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record() -> FileRecord {
        FileRecord::new(
            FileId::new(42),
            InodeAttrs::builder()
                .size(1 << 30)
                .mtime(Timestamp::from_secs(1_000_000))
                .uid(501)
                .gid(20)
                .mode(0o600)
                .nlink(2)
                .build(),
        )
        .with_keyword("firefox")
        .with_keyword("profile")
        .with_custom("energy", Value::F64(-3.25))
        .with_custom("tag", Value::from("docked"))
    }

    #[test]
    fn upsert_round_trip() {
        let op = IndexOp::Upsert(sample_record());
        let decoded = IndexOp::decode(&op.encode()).unwrap();
        assert_eq!(decoded, op);
    }

    #[test]
    fn remove_round_trip() {
        let op = IndexOp::Remove(FileId::new(7));
        assert_eq!(IndexOp::decode(&op.encode()).unwrap(), op);
        assert_eq!(op.file(), FileId::new(7));
    }

    #[test]
    fn empty_record_round_trip() {
        let op = IndexOp::Upsert(FileRecord::new(FileId::new(0), InodeAttrs::default()));
        assert_eq!(IndexOp::decode(&op.encode()).unwrap(), op);
    }

    #[test]
    fn truncated_bytes_rejected() {
        let op = IndexOp::Upsert(sample_record());
        let bytes = op.encode();
        for cut in [0, 1, 5, bytes.len() / 2, bytes.len() - 1] {
            let err = IndexOp::decode(&bytes[..cut]);
            assert!(err.is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn unknown_tag_rejected() {
        assert!(matches!(IndexOp::decode(&[9, 0, 0]), Err(Error::Corrupt(_))));
    }

    #[test]
    fn invalid_utf8_rejected() {
        // Build an op with a keyword, then corrupt the keyword bytes.
        let op = IndexOp::Upsert(
            FileRecord::new(FileId::new(1), InodeAttrs::default()).with_keyword("abcd"),
        );
        let mut bytes = op.encode();
        let pos = bytes.len() - 4 - 4; // start of "abcd" (before custom count)
        bytes[pos] = 0xFF;
        bytes[pos + 1] = 0xFE;
        assert!(IndexOp::decode(&bytes).is_err());
    }

    #[test]
    fn batch_frame_round_trips() {
        let ops = vec![
            IndexOp::Upsert(sample_record()),
            IndexOp::Remove(FileId::new(9)),
            IndexOp::Upsert(FileRecord::new(FileId::new(3), InodeAttrs::default())),
        ];
        let frame = IndexOp::encode_batch(&ops);
        assert_eq!(IndexOp::decode_frame(&frame).unwrap(), ops);
        // Empty batches are legal frames.
        assert!(IndexOp::decode_frame(&IndexOp::encode_batch(&[])).unwrap().is_empty());
    }

    #[test]
    fn decode_frame_reads_classic_single_op_frames() {
        let op = IndexOp::Upsert(sample_record());
        assert_eq!(IndexOp::decode_frame(&op.encode()).unwrap(), vec![op]);
        let op = IndexOp::Remove(FileId::new(7));
        assert_eq!(IndexOp::decode_frame(&op.encode()).unwrap(), vec![op]);
    }

    #[test]
    fn truncated_batch_frame_rejected() {
        let ops = vec![IndexOp::Upsert(sample_record()), IndexOp::Remove(FileId::new(1))];
        let frame = IndexOp::encode_batch(&ops);
        for cut in [1usize, 5, 9, frame.len() / 2, frame.len() - 1] {
            assert!(IndexOp::decode_frame(&frame[..cut]).is_err(), "cut at {cut}");
        }
        // Trailing garbage after the declared members is corruption.
        let mut padded = frame.clone();
        padded.push(0);
        assert!(IndexOp::decode_frame(&padded).is_err());
    }

    #[test]
    fn all_value_kinds_round_trip() {
        let op = IndexOp::Upsert(
            FileRecord::new(FileId::new(5), InodeAttrs::default())
                .with_custom("a", Value::U64(u64::MAX))
                .with_custom("b", Value::I64(i64::MIN))
                .with_custom("c", Value::F64(f64::MIN_POSITIVE))
                .with_custom("d", Value::Str(String::new())),
        );
        assert_eq!(IndexOp::decode(&op.encode()).unwrap(), op);
    }
}
