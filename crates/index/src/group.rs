//! The per-ACG index group.
//!
//! Every ACG owns one [`AcgIndexGroup`] on its Index Node (paper §IV): a
//! record store plus a *named index table* mapping user-chosen index names
//! to concrete structures (B+-tree, hash table or K-D tree — "each ACG can
//! have all three types"). Updates flow through the WAL and the lazy
//! [`IndexCache`]; a commit applies buffered ops to every index. Searches
//! must observe all acknowledged updates, so the owning node commits
//! before serving a search (the paper's consistency rule).
//!
//! ## Durability
//!
//! A group with an in-memory WAL truncates its log at every commit (the
//! historical behaviour — nothing in memory survives a crash anyway). A
//! group with a **file-backed** WAL keeps committed frames in the log
//! until a [`AcgIndexGroup::snapshot`] covers them: the snapshot
//! serializes the committed state stamped with the WAL LSN it reflects,
//! and the log is truncated up to the *previous* retained snapshot's LSN
//! (two-checkpoint retention: a corrupt newest snapshot still recovers
//! fully from the older one plus a longer suffix). Recovery
//! ([`AcgIndexGroup::recover`]) loads the newest valid snapshot and
//! replays only the WAL suffix past its LSN, falling back to older
//! snapshots and ultimately to a full replay when files fail validation.

use std::collections::HashMap;
use std::ops::{Bound, Deref};
use std::path::PathBuf;
use std::sync::Arc;

use propeller_types::{AcgId, AttrName, Duration, Error, FileId, Result, Timestamp, Value};
use serde::{Deserialize, Serialize};

use crate::btree::BPlusTree;
use crate::cache::IndexCache;
use crate::inverted::InvertedIndex;
use crate::kdtree::KdTree;
use crate::ops::{FileRecord, IndexOp};
use crate::snapshot::{self, SnapshotData};
use crate::wal::Wal;

/// The concrete structure behind a named index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IndexKind {
    /// Ordered B+-tree (range and point queries).
    BTree,
    /// Hash table (point queries).
    Hash,
    /// K-D tree (multi-attribute range queries).
    Kd,
    /// Inverted index over tokenized keywords and text-valued custom
    /// attributes (term search with BM25 ranking).
    Inverted,
}

/// A user-defined index: a globally unique name, a structure kind, and the
/// attribute(s) it covers (one for `BTree`/`Hash`, one or more for `Kd`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IndexSpec {
    /// Globally unique index name (paper §IV "Workflow").
    pub name: String,
    /// Backing structure.
    pub kind: IndexKind,
    /// Covered attributes.
    pub attrs: Vec<AttrName>,
}

impl IndexSpec {
    /// A B+-tree index over one attribute.
    pub fn btree(name: impl Into<String>, attr: AttrName) -> Self {
        IndexSpec { name: name.into(), kind: IndexKind::BTree, attrs: vec![attr] }
    }

    /// A hash index over one attribute.
    pub fn hash(name: impl Into<String>, attr: AttrName) -> Self {
        IndexSpec { name: name.into(), kind: IndexKind::Hash, attrs: vec![attr] }
    }

    /// A K-D-tree index over several attributes.
    pub fn kd(name: impl Into<String>, attrs: Vec<AttrName>) -> Self {
        IndexSpec { name: name.into(), kind: IndexKind::Kd, attrs }
    }

    /// An inverted text index. It implicitly covers every keyword and
    /// string-valued custom attribute, so it names no attributes.
    pub fn inverted(name: impl Into<String>) -> Self {
        IndexSpec { name: name.into(), kind: IndexKind::Inverted, attrs: Vec::new() }
    }
}

/// Configuration for an [`AcgIndexGroup`].
#[derive(Debug)]
pub struct GroupConfig {
    /// Lazy-commit timeout (paper default: 5 seconds).
    pub commit_timeout: Duration,
    /// Write-ahead log backing this group.
    pub wal: Wal,
    /// Create the paper's default indices (B+-tree on size and mtime, hash
    /// on keyword, K-D tree on (size, mtime)) plus the content inverted
    /// index for ranked term search.
    pub default_indices: bool,
    /// Where [`AcgIndexGroup::snapshot`] writes its checkpoint files and
    /// recovery looks for them. `None` (the default) disables snapshots.
    pub snapshot_dir: Option<PathBuf>,
}

impl Default for GroupConfig {
    fn default() -> Self {
        GroupConfig {
            commit_timeout: Duration::from_secs(5),
            wal: Wal::in_memory(),
            default_indices: true,
            snapshot_dir: None,
        }
    }
}

/// What [`AcgIndexGroup::recover_with_report`] found and did.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// LSN of the snapshot the recovery was anchored to (`None` = no
    /// usable snapshot; the whole WAL was replayed).
    pub snapshot_lsn: Option<u64>,
    /// Records restored from the snapshot.
    pub snapshot_records: usize,
    /// Ops replayed from the WAL suffix.
    pub replayed_ops: usize,
    /// Snapshot files skipped because they failed validation (torn,
    /// corrupt or mislabeled); recovery fell back past each of them.
    pub snapshots_skipped: usize,
}

/// A sorted posting list of files holding a given attribute value.
type PostingList = Vec<FileId>;

fn posting_insert(list: &mut PostingList, file: FileId) {
    if let Err(pos) = list.binary_search(&file) {
        list.insert(pos, file);
    }
}

fn posting_remove(list: &mut PostingList, file: FileId) {
    if let Ok(pos) = list.binary_search(&file) {
        list.remove(pos);
    }
}

/// The immutable, published read side of an ACG's index group: the
/// committed record store plus every index root as of one commit.
///
/// An epoch is a *persistent* (structurally shared) value: its B+-trees,
/// K-D tree and inverted indices all path-copy on mutation, so cloning an
/// epoch is O(#indices) refcount bumps and two epochs share all untouched
/// nodes. [`AcgIndexGroup::commit`] publishes a new epoch with a single
/// `Arc` swap; readers that pinned the previous epoch (via
/// [`AcgIndexGroup::pin`]) keep reading it unperturbed until their last
/// pin drops, at which point its unshared nodes are freed.
///
/// All search-side accessors live here; [`AcgIndexGroup`] derefs to its
/// current epoch so existing read call sites keep working.
#[derive(Debug, Clone)]
pub struct AcgEpoch {
    id: AcgId,
    /// Publish counter: bumped once per epoch swap (commit with a
    /// non-empty batch, index create/drop, seed install).
    generation: u64,
    records: BPlusTree<FileId, Arc<FileRecord>>,
    specs: Vec<IndexSpec>,
    btrees: HashMap<AttrName, BPlusTree<Value, Arc<PostingList>>>,
    /// Hash-kind indices. They keep the hash index's planner role (point
    /// probes only, preferred over B+-trees for equality) but are
    /// tree-backed: a real bucket table would cost O(buckets) per
    /// copy-on-write clone, while the tree path-copies in O(log n).
    hashes: HashMap<AttrName, BPlusTree<Value, Arc<PostingList>>>,
    kds: HashMap<String, (Vec<AttrName>, KdTree)>,
    inverteds: HashMap<String, InvertedIndex>,
    /// WAL LSN through which ops have been applied into the indices: the
    /// commit watermark a snapshot of this epoch is stamped with.
    applied_lsn: u64,
    ops_applied: u64,
}

impl AcgEpoch {
    fn empty(id: AcgId) -> Self {
        AcgEpoch {
            id,
            generation: 0,
            records: BPlusTree::new(),
            specs: Vec::new(),
            btrees: HashMap::new(),
            hashes: HashMap::new(),
            kds: HashMap::new(),
            inverteds: HashMap::new(),
            applied_lsn: 0,
            ops_applied: 0,
        }
    }

    /// This epoch's ACG id.
    pub fn id(&self) -> AcgId {
        self.id
    }

    /// Publish counter of this epoch (how many swaps preceded it).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The WAL LSN through which ops were committed into this epoch.
    pub fn applied_lsn(&self) -> u64 {
        self.applied_lsn
    }

    /// Number of operations applied to the indices over the group's life
    /// up to this epoch.
    pub fn ops_applied(&self) -> u64 {
        self.ops_applied
    }

    /// Number of indexed files.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` when no file is indexed.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The named index table (paper: each ACG has a table mapping index
    /// names to structures).
    pub fn index_specs(&self) -> &[IndexSpec] {
        &self.specs
    }

    fn create_index(&mut self, spec: IndexSpec) -> Result<()> {
        if self.specs.iter().any(|s| s.name == spec.name) {
            return Err(Error::IndexExists(spec.name));
        }
        match spec.kind {
            IndexKind::BTree | IndexKind::Hash => {
                if spec.attrs.len() != 1 {
                    return Err(Error::Config(format!(
                        "index {:?} needs exactly one attribute",
                        spec.name
                    )));
                }
            }
            IndexKind::Kd => {
                if spec.attrs.is_empty() {
                    return Err(Error::Config(format!(
                        "k-d index {:?} needs at least one attribute",
                        spec.name
                    )));
                }
            }
            IndexKind::Inverted => {
                if !spec.attrs.is_empty() {
                    return Err(Error::Config(format!(
                        "inverted index {:?} covers all text implicitly; it takes no attributes",
                        spec.name
                    )));
                }
            }
        }
        match spec.kind {
            IndexKind::BTree | IndexKind::Hash => {
                let attr = spec.attrs[0].clone();
                let mut tree = BPlusTree::new();
                for (_, record) in self.records.iter() {
                    for value in Self::record_values(record, &attr) {
                        match tree.get_mut(&value) {
                            Some(list) => posting_insert(Arc::make_mut(list), record.file),
                            None => {
                                tree.insert(value, Arc::new(vec![record.file]));
                            }
                        }
                    }
                }
                if spec.kind == IndexKind::BTree {
                    self.btrees.insert(attr, tree);
                } else {
                    self.hashes.insert(attr, tree);
                }
            }
            IndexKind::Kd => {
                let attrs = spec.attrs.clone();
                let points: Vec<(Vec<f64>, FileId)> = self
                    .records
                    .iter()
                    .filter_map(|(_, r)| Self::kd_point(r, &attrs).map(|p| (p, r.file)))
                    .collect();
                let tree = KdTree::bulk_load(attrs.len(), points);
                self.kds.insert(spec.name.clone(), (attrs, tree));
            }
            IndexKind::Inverted => {
                let mut inv = InvertedIndex::new();
                for (_, record) in self.records.iter() {
                    inv.insert(record);
                }
                self.inverteds.insert(spec.name.clone(), inv);
            }
        }
        self.specs.push(spec);
        Ok(())
    }

    fn drop_index(&mut self, name: &str) -> Result<()> {
        let pos = self
            .specs
            .iter()
            .position(|s| s.name == name)
            .ok_or_else(|| Error::IndexNotFound(name.to_owned()))?;
        let spec = self.specs.remove(pos);
        match spec.kind {
            IndexKind::BTree => {
                let attr = &spec.attrs[0];
                if !self
                    .specs
                    .iter()
                    .any(|s| s.kind == IndexKind::BTree && s.attrs.first() == Some(attr))
                {
                    self.btrees.remove(attr);
                }
            }
            IndexKind::Hash => {
                let attr = &spec.attrs[0];
                if !self
                    .specs
                    .iter()
                    .any(|s| s.kind == IndexKind::Hash && s.attrs.first() == Some(attr))
                {
                    self.hashes.remove(attr);
                }
            }
            IndexKind::Kd => {
                self.kds.remove(&spec.name);
            }
            IndexKind::Inverted => {
                self.inverteds.remove(&spec.name);
            }
        }
        Ok(())
    }

    fn apply(&mut self, op: IndexOp) {
        self.ops_applied += 1;
        match op {
            IndexOp::Upsert(record) => {
                if let Some(old) = self.records.remove(&record.file) {
                    self.unindex(&old);
                }
                self.index(&record);
                self.records.insert(record.file, Arc::new(record));
            }
            IndexOp::Remove(file) => {
                if let Some(old) = self.records.remove(&file) {
                    self.unindex(&old);
                }
            }
        }
    }

    fn index(&mut self, record: &FileRecord) {
        for (attr, tree) in self.btrees.iter_mut().chain(self.hashes.iter_mut()) {
            for value in Self::record_values(record, attr) {
                match tree.get_mut(&value) {
                    Some(list) => posting_insert(Arc::make_mut(list), record.file),
                    None => {
                        tree.insert(value, Arc::new(vec![record.file]));
                    }
                }
            }
        }
        for (attrs, tree) in self.kds.values_mut() {
            if let Some(point) = Self::kd_point(record, attrs) {
                tree.insert(&point, record.file);
            }
        }
        for inv in self.inverteds.values_mut() {
            inv.insert(record);
        }
    }

    fn unindex(&mut self, record: &FileRecord) {
        for (attr, tree) in self.btrees.iter_mut().chain(self.hashes.iter_mut()) {
            for value in Self::record_values(record, attr) {
                if let Some(list) = tree.get_mut(&value) {
                    posting_remove(Arc::make_mut(list), record.file);
                }
            }
        }
        for (attrs, tree) in self.kds.values_mut() {
            if let Some(point) = Self::kd_point(record, attrs) {
                tree.remove(&point, record.file);
            }
        }
        for inv in self.inverteds.values_mut() {
            inv.remove(record);
        }
    }

    /// The values a record contributes to an attribute's index.
    fn record_values(record: &FileRecord, attr: &AttrName) -> Vec<Value> {
        match attr {
            AttrName::Keyword => record.keywords.iter().map(|k| Value::from(k.as_str())).collect(),
            AttrName::Custom(name) => {
                record.custom.iter().filter(|(n, _)| n == name).map(|(_, v)| v.clone()).collect()
            }
            builtin => record.attrs.get(builtin).into_iter().collect(),
        }
    }

    /// The K-D point of a record over `attrs`, or `None` when any attribute
    /// is missing or multi-valued.
    fn kd_point(record: &FileRecord, attrs: &[AttrName]) -> Option<Vec<f64>> {
        let mut point = Vec::with_capacity(attrs.len());
        for attr in attrs {
            let values = Self::record_values(record, attr);
            if values.len() != 1 {
                return None;
            }
            point.push(values[0].axis_projection());
        }
        Some(point)
    }

    // --- Search-side accessors (the owning node commits before opening a
    // search, then executes against a pinned epoch) ----------------------

    /// Files with `attr == value`, using a hash-kind index when available,
    /// a B+-tree otherwise, and a full record scan as last resort.
    pub fn lookup_eq(&self, attr: &AttrName, value: &Value) -> Vec<FileId> {
        if let Some(table) = self.hashes.get(attr) {
            return table.get(value).map(|l| (**l).clone()).unwrap_or_default();
        }
        if let Some(tree) = self.btrees.get(attr) {
            return tree.get(value).map(|l| (**l).clone()).unwrap_or_default();
        }
        self.scan(|record| Self::record_values(record, attr).iter().any(|v| v == value))
    }

    /// Files with `attr` in the given bounds, using a B+-tree when
    /// available, a full scan otherwise.
    pub fn lookup_range(&self, attr: &AttrName, lo: Bound<Value>, hi: Bound<Value>) -> Vec<FileId> {
        if let Some(tree) = self.btrees.get(attr) {
            let mut out: Vec<FileId> =
                tree.range((lo, hi)).flat_map(|(_, list)| list.iter().copied()).collect();
            out.sort_unstable();
            out.dedup();
            return out;
        }
        let in_lo = |v: &Value| match &lo {
            Bound::Included(b) => v >= b,
            Bound::Excluded(b) => v > b,
            Bound::Unbounded => true,
        };
        let in_hi = |v: &Value| match &hi {
            Bound::Included(b) => v <= b,
            Bound::Excluded(b) => v < b,
            Bound::Unbounded => true,
        };
        self.scan(|record| Self::record_values(record, attr).iter().any(|v| in_lo(v) && in_hi(v)))
    }

    /// Multi-attribute inclusive box query via a covering K-D index.
    /// Returns `None` when no K-D index covers exactly these attributes
    /// (the planner then falls back to per-attribute lookups).
    pub fn lookup_kd(&self, attrs: &[AttrName], lo: &[f64], hi: &[f64]) -> Option<Vec<FileId>> {
        self.kds.values().find_map(
            |(kd_attrs, tree)| {
                if kd_attrs == attrs {
                    Some(tree.range(lo, hi))
                } else {
                    None
                }
            },
        )
    }

    // --- Streaming candidate accessors -----------------------------------
    //
    // The iterator-returning variants of the lookups above: they yield
    // `&FileRecord` directly (candidate ids resolve against the record
    // store as the consumer pulls), so the executor never materializes a
    // `Vec<FileId>` superset nor re-hashes candidates through the store.

    /// Streams the records with `attr == value` through a hash-kind index
    /// (or a B+-tree point probe as fallback). Returns `None` when no
    /// index covers `attr` — the caller falls back to a full scan. Records
    /// are unique: a posting list holds each file at most once.
    pub fn candidates_eq<'a>(
        &'a self,
        attr: &AttrName,
        value: &Value,
    ) -> Option<impl Iterator<Item = &'a FileRecord> + 'a> {
        let list: &[FileId] = if let Some(table) = self.hashes.get(attr) {
            table.get(value).map_or(&[], |l| l.as_slice())
        } else if let Some(tree) = self.btrees.get(attr) {
            tree.get(value).map_or(&[], |l| l.as_slice())
        } else {
            return None;
        };
        Some(list.iter().filter_map(move |f| self.records.get(f).map(|r| &**r)))
    }

    /// Streams the records with `attr` in the given bounds off a B+-tree.
    /// Returns `None` when no B+-tree covers `attr`. A record holding
    /// several values for a multi-valued attribute may be yielded once per
    /// in-range value; single-valued (builtin) attributes yield each
    /// record at most once.
    pub fn candidates_range<'a>(
        &'a self,
        attr: &AttrName,
        lo: Bound<Value>,
        hi: Bound<Value>,
    ) -> Option<impl Iterator<Item = &'a FileRecord> + 'a> {
        let tree = self.btrees.get(attr)?;
        Some(
            tree.range((lo, hi))
                .flat_map(|(_, list)| list.iter())
                .filter_map(move |f| self.records.get(f).map(|r| &**r)),
        )
    }

    /// Streams the records inside a K-D box query. Returns `None` when no
    /// K-D index covers exactly these attributes. Records are unique (one
    /// point per file per index).
    pub fn candidates_kd<'a>(
        &'a self,
        attrs: &[AttrName],
        lo: &'a [f64],
        hi: &'a [f64],
    ) -> Option<impl Iterator<Item = &'a FileRecord> + 'a> {
        let (_, tree) = self.kds.values().find(|(kd_attrs, _)| kd_attrs == attrs)?;
        Some(tree.range_iter(lo, hi).filter_map(move |f| self.records.get(&f).map(|r| &**r)))
    }

    /// Streams *every* record holding `attr` within the bounds, in `attr`
    /// order (ascending or descending), tie-broken by ascending file id
    /// within equal values. Returns `None` when no B+-tree covers `attr`.
    ///
    /// For single-valued builtin attributes this walks the group in exact
    /// result order for a sort over `attr`, which is what lets the
    /// executor terminate after `k` admitted hits (posting lists are
    /// file-id sorted, matching the sort's tie-break).
    pub fn candidates_ordered<'a>(
        &'a self,
        attr: &AttrName,
        lo: Bound<Value>,
        hi: Bound<Value>,
        descending: bool,
    ) -> Option<Box<dyn Iterator<Item = &'a FileRecord> + 'a>> {
        let tree = self.btrees.get(attr)?;
        let resolve = move |f: &FileId| self.records.get(f).map(|r| &**r);
        if descending {
            Some(Box::new(
                tree.range_rev((lo, hi)).flat_map(|(_, list)| list.iter()).filter_map(resolve),
            ))
        } else {
            Some(Box::new(
                tree.range((lo, hi)).flat_map(|(_, list)| list.iter()).filter_map(resolve),
            ))
        }
    }

    /// Full scan with a predicate (the executor's fallback path). Results
    /// come out sorted (the record store iterates in file-id order).
    pub fn scan<F: Fn(&FileRecord) -> bool>(&self, pred: F) -> Vec<FileId> {
        self.records.iter().filter(|(_, r)| pred(r)).map(|(f, _)| *f).collect()
    }

    /// The indexed record for `file`, if any.
    pub fn record(&self, file: FileId) -> Option<&FileRecord> {
        self.records.get(&file).map(|r| &**r)
    }

    /// Iterates over all indexed records (in file-id order).
    pub fn records(&self) -> impl Iterator<Item = &FileRecord> {
        self.records.iter().map(|(_, r)| &**r)
    }

    /// Files currently indexed (sorted).
    pub fn files(&self) -> Vec<FileId> {
        self.records.iter().map(|(f, _)| *f).collect()
    }

    /// Depth of the B+-tree over `attr` (for analytic disk-cost models).
    pub fn btree_depth(&self, attr: &AttrName) -> Option<usize> {
        self.btrees.get(attr).map(|t| t.depth())
    }

    /// The epoch's inverted text index, if one exists (several specs would
    /// hold identical structures, so the executor takes any).
    pub fn inverted(&self) -> Option<&InvertedIndex> {
        self.inverteds.values().next()
    }
}

/// A snapshot write prepared by [`AcgIndexGroup::begin_snapshot`]: the
/// pinned epoch plus everything needed to serialize it. The write runs on
/// any thread — the group (and its actor) keeps committing while the
/// pinned epoch is streamed to disk.
#[derive(Debug, Clone)]
pub struct EpochSnapshotJob {
    dir: PathBuf,
    /// The LSN the snapshot will be stamped with (the pinned epoch's
    /// applied LSN).
    pub lsn: u64,
    /// The pinned epoch being serialized.
    pub epoch: Arc<AcgEpoch>,
}

impl EpochSnapshotJob {
    /// Serializes the pinned epoch to the snapshot directory. Safe to call
    /// off the owning thread.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] on write failures.
    pub fn write(&self) -> Result<PathBuf> {
        snapshot::write_snapshot(
            &self.dir,
            self.epoch.id(),
            self.lsn,
            self.epoch.index_specs(),
            self.epoch.records(),
        )
    }
}

/// The index group of one ACG: the mutable *build side* (WAL + lazy
/// cache + snapshot bookkeeping) wrapped around the currently published
/// [`AcgEpoch`].
///
/// The group derefs to its current epoch, so all search-side accessors
/// ([`AcgEpoch::lookup_eq`], [`AcgEpoch::candidates_range`], …) are
/// callable directly on the group. Concurrent readers call
/// [`AcgIndexGroup::pin`] to hold the epoch across a whole search or
/// paginated session; [`AcgIndexGroup::commit`] publishes the next epoch
/// without disturbing them.
///
/// # Examples
///
/// ```
/// use propeller_index::{AcgIndexGroup, FileRecord, GroupConfig, IndexOp};
/// use propeller_types::{AcgId, AttrName, FileId, InodeAttrs, Timestamp, Value};
///
/// let mut group = AcgIndexGroup::new(AcgId::new(1), GroupConfig::default());
/// let t = Timestamp::from_secs(1);
/// let record = FileRecord::new(
///     FileId::new(7),
///     InodeAttrs::builder().size(32 << 20).build(),
/// );
/// group.enqueue(IndexOp::Upsert(record), t).unwrap();
/// group.commit(t).unwrap();
///
/// let hits = group.lookup_range(
///     &AttrName::Size,
///     std::ops::Bound::Included(Value::U64(16 << 20)),
///     std::ops::Bound::Unbounded,
/// );
/// assert_eq!(hits, vec![FileId::new(7)]);
/// ```
#[derive(Debug)]
pub struct AcgIndexGroup {
    /// The published epoch. Mutations go through `Arc::make_mut`: while
    /// nothing else pins the epoch this is an in-place edit; once a reader
    /// pins it, the first mutation clones the epoch head (cheap — all
    /// index roots are structurally shared) and edits the copy, which the
    /// next publish swaps in.
    epoch: Arc<AcgEpoch>,
    wal: Wal,
    cache: IndexCache,
    /// Where snapshots live (`None` = snapshots disabled).
    snapshot_dir: Option<PathBuf>,
    /// LSN of the newest snapshot written or recovered from (`None` before
    /// the first).
    snapshot_lsn: Option<u64>,
    /// Ops logged since the last snapshot — the trigger metric an Index
    /// Node compares against its snapshot thresholds (approximate by
    /// design; it resets on snapshot and recovery).
    wal_ops: u64,
    /// Frame bytes logged since the last snapshot (same trigger role as
    /// `wal_ops`; the raw retained log size would keep re-firing the
    /// bytes threshold, because two-checkpoint retention deliberately
    /// keeps the previous inter-checkpoint window in the log).
    wal_trigger_bytes: u64,
    /// Whether a [`begin_snapshot`](AcgIndexGroup::begin_snapshot) job is
    /// outstanding (at most one at a time).
    snapshot_in_flight: bool,
}

impl Deref for AcgIndexGroup {
    type Target = AcgEpoch;

    fn deref(&self) -> &AcgEpoch {
        &self.epoch
    }
}

impl AcgIndexGroup {
    /// Creates an empty group.
    pub fn new(id: AcgId, config: GroupConfig) -> Self {
        let mut group = AcgIndexGroup {
            epoch: Arc::new(AcgEpoch::empty(id)),
            wal: config.wal,
            cache: IndexCache::new(config.commit_timeout),
            snapshot_dir: config.snapshot_dir,
            snapshot_lsn: None,
            wal_ops: 0,
            wal_trigger_bytes: 0,
            snapshot_in_flight: false,
        };
        if config.default_indices {
            for spec in [
                IndexSpec::btree("size_btree", AttrName::Size),
                IndexSpec::btree("mtime_btree", AttrName::Mtime),
                IndexSpec::hash("keyword_hash", AttrName::Keyword),
                IndexSpec::kd("inode_kd", vec![AttrName::Size, AttrName::Mtime]),
                IndexSpec::inverted("content_inverted"),
            ] {
                group.create_index(spec).expect("default index names are unique");
            }
        }
        group
    }

    /// Rebuilds a group from a decoded snapshot: records are installed
    /// directly and every index from the snapshot's named-index table is
    /// re-created and backfilled (the K-D trees bulk-load balanced).
    fn from_snapshot(data: SnapshotData, config: GroupConfig) -> Result<Self> {
        let mut epoch = AcgEpoch::empty(data.acg);
        epoch.applied_lsn = data.lsn;
        epoch.ops_applied = data.records.len() as u64;
        for record in data.records {
            epoch.records.insert(record.file, Arc::new(record));
        }
        for spec in data.specs {
            epoch.create_index(spec)?;
        }
        Ok(AcgIndexGroup {
            epoch: Arc::new(epoch),
            wal: config.wal,
            cache: IndexCache::new(config.commit_timeout),
            snapshot_dir: config.snapshot_dir,
            snapshot_lsn: Some(data.lsn),
            wal_ops: 0,
            wal_trigger_bytes: 0,
            snapshot_in_flight: false,
        })
    }

    /// Recovers a group from its durable state: the newest **valid**
    /// snapshot (when a snapshot directory is configured) plus the WAL
    /// suffix past that snapshot's LSN. Snapshot files that fail
    /// validation are skipped — recovery falls back to the next older one
    /// and, while the log is still complete (never checkpoint-truncated),
    /// to a full WAL replay. Returns the group and the number of WAL ops
    /// replayed.
    ///
    /// The WAL is left intact on the file backend (it is still the only
    /// durable record of the replayed suffix until the next snapshot); the
    /// in-memory backend truncates as before.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corrupt`] if a logged op fails to decode (frames
    /// with bad CRCs were already dropped by WAL replay), **or when no
    /// snapshot validates and the WAL was already truncated past its first
    /// frame** — the pre-checkpoint state is provably unrecoverable and a
    /// silently partial group must not come back as whole. [`Error::Io`]
    /// surfaces WAL I/O failures.
    pub fn recover(id: AcgId, config: GroupConfig) -> Result<(Self, usize)> {
        let (group, report) = Self::recover_with_report(id, config)?;
        Ok((group, report.replayed_ops))
    }

    /// [`AcgIndexGroup::recover`] with the full [`RecoveryReport`]
    /// (snapshot anchor, records restored, ops replayed, files skipped).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`AcgIndexGroup::recover`].
    pub fn recover_with_report(
        id: AcgId,
        mut config: GroupConfig,
    ) -> Result<(Self, RecoveryReport)> {
        let mut report = RecoveryReport::default();
        let mut base: Option<SnapshotData> = None;
        if let Some(dir) = &config.snapshot_dir {
            for (_, path) in snapshot::list_snapshots(dir, id) {
                match snapshot::read_snapshot(&path) {
                    Ok(data) if data.acg == id => {
                        base = Some(data);
                        break;
                    }
                    _ => report.snapshots_skipped += 1,
                }
            }
        }
        // Refuse a provably partial recovery: a durable WAL's base only
        // moves past 1 when a snapshot once covered the dropped prefix
        // (commits never truncate the file backend). If no snapshot
        // validates now, the prefix is unrecoverable — surfacing the
        // corruption beats silently serving a truncated group as whole.
        if base.is_none() && config.snapshot_dir.is_some() && config.wal.is_durable() {
            let first = config.wal.first_lsn();
            if first > 1 {
                return Err(Error::Corrupt(format!(
                    "acg {} has no valid snapshot but its wal starts at lsn {first}: \
                     frames 1..{first} were checkpoint-covered and are gone; \
                     refusing partial recovery",
                    id.raw()
                )));
            }
        }
        let snap_lsn = base.as_ref().map_or(0, |d| d.lsn);
        let frames = config.wal.replay_from(snap_lsn)?;
        let mut group = match base {
            Some(data) => {
                report.snapshot_lsn = Some(data.lsn);
                report.snapshot_records = data.records.len();
                Self::from_snapshot(data, config)?
            }
            None => AcgIndexGroup::new(id, config),
        };
        let mut last_lsn = snap_lsn;
        let mut suffix_bytes = 0u64;
        {
            let epoch = Arc::make_mut(&mut group.epoch);
            for (lsn, frame) in frames {
                // A frame is either one classic single-op record or a
                // group-committed batch; recovery replays both.
                for op in IndexOp::decode_frame(&frame)? {
                    epoch.apply(op);
                    report.replayed_ops += 1;
                }
                suffix_bytes += frame.len() as u64 + 8;
                last_lsn = lsn;
            }
            epoch.applied_lsn = last_lsn;
        }
        group.wal_ops = report.replayed_ops as u64;
        group.wal_trigger_bytes = suffix_bytes;
        if !group.wal.is_durable() {
            group.wal.truncate()?;
        }
        Ok((group, report))
    }

    /// Pins the currently published epoch: the returned handle keeps
    /// reading a consistent committed state no matter how many commits,
    /// index changes or snapshots happen afterwards. Memory is reclaimed
    /// when the last pin of an epoch drops (unshared index nodes free with
    /// it).
    pub fn pin(&self) -> Arc<AcgEpoch> {
        Arc::clone(&self.epoch)
    }

    /// Starts an off-thread snapshot: pins the current epoch and returns a
    /// job that serializes it on **any** thread while this group keeps
    /// committing. Returns `None` when snapshots are disabled, when the
    /// applied state is already covered by the newest snapshot, or while a
    /// previous job is still outstanding (at most one at a time).
    ///
    /// The caller must complete the job with
    /// [`AcgIndexGroup::finish_snapshot`] on success or
    /// [`AcgIndexGroup::abort_snapshot`] on failure.
    pub fn begin_snapshot(&mut self) -> Option<EpochSnapshotJob> {
        let dir = self.snapshot_dir.clone()?;
        if self.snapshot_in_flight {
            return None;
        }
        let lsn = self.epoch.applied_lsn;
        if self.snapshot_lsn == Some(lsn) {
            return None; // nothing committed since the last one
        }
        self.snapshot_in_flight = true;
        Some(EpochSnapshotJob { dir, lsn, epoch: self.pin() })
    }

    /// Installs a snapshot completed off-thread (written by
    /// [`EpochSnapshotJob::write`]): truncates the WAL up to the previous
    /// retained snapshot's LSN, prunes files older than that
    /// (two-checkpoint retention) and resets the snapshot trigger metrics.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] if the WAL truncation fails; the snapshot
    /// file itself is already safely on disk in that case.
    pub fn finish_snapshot(&mut self, lsn: u64) -> Result<()> {
        self.snapshot_in_flight = false;
        // Two-checkpoint retention: the log keeps everything the *older*
        // retained snapshot still needs; before the first snapshot there
        // is nothing safe to drop.
        let keep_from = self.snapshot_lsn.unwrap_or(0);
        self.wal.truncate_upto(keep_from)?;
        if let Some(dir) = &self.snapshot_dir {
            snapshot::prune_snapshots(dir, self.epoch.id, keep_from);
        }
        self.snapshot_lsn = Some(lsn);
        self.wal_ops = self.cache.len() as u64;
        self.wal_trigger_bytes = 0;
        Ok(())
    }

    /// Clears the in-flight marker after a failed off-thread snapshot
    /// write; the previous snapshot set stays intact and the triggers stay
    /// armed, so the next maintenance pass retries.
    pub fn abort_snapshot(&mut self) {
        self.snapshot_in_flight = false;
    }

    /// Whether an off-thread snapshot job is outstanding.
    pub fn snapshot_in_flight(&self) -> bool {
        self.snapshot_in_flight
    }

    /// Writes a snapshot of the **committed** state (stamped with the
    /// current applied LSN) synchronously on the calling thread, then
    /// truncates the WAL up to the previous retained snapshot's LSN and
    /// prunes snapshot files older than that. Pending (logged but
    /// uncommitted) ops have LSNs past the stamp, so they survive in the
    /// log — snapshotting never requires a commit. This is
    /// [`AcgIndexGroup::begin_snapshot`] + [`EpochSnapshotJob::write`] +
    /// [`AcgIndexGroup::finish_snapshot`] in one call; Index Nodes use the
    /// split form to keep the write off their actor thread.
    ///
    /// Two checkpoints are retained: should the newest file be torn or
    /// corrupted on disk, recovery still reassembles the full state from
    /// the previous one plus the longer WAL suffix.
    ///
    /// Returns the covered LSN, or `None` when no snapshot directory is
    /// configured.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] on snapshot-write or WAL-truncation failures;
    /// the previous snapshot set stays intact in that case.
    pub fn snapshot(&mut self) -> Result<Option<u64>> {
        if self.snapshot_dir.is_none() {
            return Ok(None);
        }
        let Some(job) = self.begin_snapshot() else {
            // Already covered (or a background job holds the slot): the
            // applied state is what the newest stamp reflects.
            return Ok(Some(self.epoch.applied_lsn));
        };
        let lsn = job.lsn;
        match job.write() {
            Ok(_) => {
                self.finish_snapshot(lsn)?;
                Ok(Some(lsn))
            }
            Err(e) => {
                self.abort_snapshot();
                Err(e)
            }
        }
    }

    /// Number of currently buffered (uncommitted) operations.
    pub fn pending_ops(&self) -> usize {
        self.cache.len()
    }

    /// The file count this group will hold once its buffered ops commit:
    /// [`AcgEpoch::len`] plus the *net* effect of the pending batch.
    /// A pending upsert only counts when the file is not already indexed
    /// (re-upserts replace in place), a pending remove only when it is;
    /// several pending ops on one file collapse to the last one. This is
    /// the scale an Index Node heartbeats to the Master — raw
    /// `len + pending_ops` over-counted re-upsert-heavy ACGs and could
    /// trigger spurious splits.
    pub fn projected_len(&self) -> usize {
        let mut delta: i64 = 0;
        // Tracks each touched file's projected presence as the pending
        // batch replays over the committed state.
        let mut projected: HashMap<FileId, bool> = HashMap::new();
        for op in self.cache.pending() {
            let file = op.file();
            let before = projected
                .get(&file)
                .copied()
                .unwrap_or_else(|| self.epoch.records.contains_key(&file));
            let after = matches!(op, IndexOp::Upsert(_));
            match (before, after) {
                (false, true) => delta += 1,
                (true, false) => delta -= 1,
                _ => {}
            }
            projected.insert(file, after);
        }
        (self.epoch.len() as i64 + delta).max(0) as usize
    }

    /// Commit statistics: `(commits, drained_ops)`.
    pub fn commit_stats(&self) -> (u64, u64) {
        (self.cache.commit_count(), self.cache.drained_ops())
    }

    /// Creates a user-defined index, backfills it from existing records
    /// and publishes the resulting epoch.
    ///
    /// # Errors
    ///
    /// Returns [`Error::IndexExists`] for duplicate names and
    /// [`Error::Config`] for invalid attribute arity.
    pub fn create_index(&mut self, spec: IndexSpec) -> Result<()> {
        let epoch = Arc::make_mut(&mut self.epoch);
        epoch.create_index(spec)?;
        epoch.generation += 1;
        Ok(())
    }

    /// Drops a user-defined index by name and publishes the resulting
    /// epoch. The backing structure is freed unless another spec still
    /// uses it (B+-tree/hash structures are shared per attribute).
    ///
    /// # Errors
    ///
    /// Returns [`Error::IndexNotFound`] for unknown names.
    pub fn drop_index(&mut self, name: &str) -> Result<()> {
        let epoch = Arc::make_mut(&mut self.epoch);
        epoch.drop_index(name)?;
        epoch.generation += 1;
        Ok(())
    }

    /// Appends an op to the WAL and buffers it in the cache; commits
    /// automatically if the cache has timed out. Returns `true` if a
    /// commit happened.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] if the WAL append fails; the op is *not*
    /// buffered in that case (no acknowledged-but-unlogged state).
    pub fn enqueue(&mut self, op: IndexOp, now: Timestamp) -> Result<bool> {
        let before = self.wal.byte_size();
        self.wal.append(&op.encode())?;
        self.wal_ops += 1;
        self.wal_trigger_bytes += self.wal.byte_size() - before;
        self.cache.push(op, now);
        if self.cache.timed_out(now) {
            self.commit(now)?;
            return Ok(true);
        }
        Ok(false)
    }

    /// Appends a whole batch to the WAL as **one** group-committed frame
    /// and buffers every op — one framed write (one syscall on the file
    /// backend) instead of one per op. Single-op batches keep the classic
    /// per-op frame, so logs stay readable by pre-batch recovery. Commits
    /// automatically if the cache has timed out; returns `true` if a
    /// commit happened.
    ///
    /// The batch is all-or-nothing: if the WAL append fails, *no* op is
    /// buffered (no acknowledged-but-unlogged state).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] if the WAL append fails.
    pub fn enqueue_batch(&mut self, ops: Vec<IndexOp>, now: Timestamp) -> Result<bool> {
        match ops.len() {
            0 => Ok(false),
            1 => self.enqueue(ops.into_iter().next().expect("len checked"), now),
            _ => {
                let before = self.wal.byte_size();
                self.wal.append(&IndexOp::encode_batch(&ops))?;
                self.wal_ops += ops.len() as u64;
                self.wal_trigger_bytes += self.wal.byte_size() - before;
                self.cache.push_batch(ops, now);
                if self.cache.timed_out(now) {
                    self.commit(now)?;
                    return Ok(true);
                }
                Ok(false)
            }
        }
    }

    /// Commits all buffered ops and **publishes a new epoch**: the batch
    /// is applied to a (structurally shared) successor of the current
    /// epoch, the applied-LSN watermark advances, the generation bumps and
    /// the `Arc` swaps — readers pinned on the previous epoch are never
    /// disturbed. While nothing pins the current epoch the "copy" is an
    /// in-place edit (`Arc::make_mut` sees a unique reference).
    ///
    /// An in-memory WAL is truncated here (its log buys no durability, so
    /// there is no reason to retain it); a file-backed WAL keeps the
    /// committed frames until a snapshot covers them — that log suffix is
    /// what lets a crashed node restore its committed state. Returns the
    /// number of ops applied.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] if the WAL truncate fails.
    pub fn commit(&mut self, now: Timestamp) -> Result<usize> {
        let batch = self.cache.drain(now);
        let n = batch.len();
        if n > 0 {
            let last_lsn = self.wal.last_lsn();
            let epoch = Arc::make_mut(&mut self.epoch);
            for op in batch {
                epoch.apply(op);
            }
            epoch.applied_lsn = last_lsn;
            epoch.generation += 1;
            if !self.wal.is_durable() {
                self.wal.truncate()?;
            }
        }
        Ok(n)
    }

    /// Forces the WAL to stable storage (no-op for the memory backend) —
    /// the Index Node calls this before acknowledging a durable batch.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] if `fsync` fails.
    pub fn sync_wal(&mut self) -> Result<()> {
        self.wal.sync()
    }

    /// Whether this group's WAL survives a process crash (file backend).
    pub fn is_durable(&self) -> bool {
        self.wal.is_durable()
    }

    /// LSN of the newest snapshot written or recovered from, if any.
    pub fn snapshot_lsn(&self) -> Option<u64> {
        self.snapshot_lsn
    }

    /// Ops logged since the last snapshot (the Index Node's snapshot
    /// trigger metric).
    pub fn wal_ops(&self) -> u64 {
        self.wal_ops
    }

    /// Frame bytes currently retained in the WAL (raw log size; includes
    /// the previous inter-checkpoint window the retention policy keeps).
    pub fn wal_bytes(&self) -> u64 {
        self.wal.byte_size()
    }

    /// Frame bytes logged since the last snapshot — the Index Node's
    /// bytes-threshold trigger metric. Unlike [`AcgIndexGroup::wal_bytes`]
    /// this resets at every snapshot, so one oversized checkpoint window
    /// cannot re-fire the trigger into back-to-back full-group snapshots.
    pub fn wal_bytes_since_snapshot(&self) -> u64 {
        self.wal_trigger_bytes
    }

    /// Whether the cache is due for a background commit.
    pub fn commit_due(&self, now: Timestamp) -> bool {
        self.cache.timed_out(now)
    }

    /// LSN of the most recent frame this group has logged — the group's
    /// **replication position**. A follower whose `last_lsn` equals its
    /// primary's holds every acknowledged op; the difference bounds its
    /// staleness in frames.
    pub fn last_lsn(&self) -> u64 {
        self.wal.last_lsn()
    }

    /// LSN of the oldest frame still retained in the WAL. Frames below it
    /// were checkpoint-truncated (or committed, on the in-memory backend)
    /// and can no longer be shipped to a trailing follower — catch-up past
    /// this point needs a full snapshot seed instead.
    pub fn first_retained_lsn(&self) -> u64 {
        self.wal.first_lsn()
    }

    /// Whether every frame past `after_lsn` is still retained in the WAL,
    /// i.e. whether [`AcgIndexGroup::wal_frames_after`] can bring a
    /// follower at `after_lsn` fully current without a snapshot seed.
    pub fn can_ship_frames_after(&self, after_lsn: u64) -> bool {
        after_lsn + 1 >= self.wal.first_lsn()
    }

    /// The retained WAL frames with LSN strictly greater than `after_lsn`,
    /// paired with their LSNs — what a primary ships to a trailing
    /// follower. Callers should check
    /// [`AcgIndexGroup::can_ship_frames_after`] first: when the log was
    /// already truncated past `after_lsn` the returned suffix silently
    /// starts later and replaying it alone would leave a gap.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] if the file backend cannot be read.
    pub fn wal_frames_after(&mut self, after_lsn: u64) -> Result<Vec<(u64, Vec<u8>)>> {
        self.wal.replay_from(after_lsn)
    }

    /// Replaces this group's contents wholesale with a snapshot shipped
    /// from its primary, aligning the WAL so the next replicated frame is
    /// assigned LSN `lsn + 1` — the seed path for a brand-new or
    /// hopelessly trailing follower. Pending ops are discarded (they are
    /// part of the history the seed supersedes), every stale checkpoint
    /// file is deleted, and when snapshots are configured a fresh one is
    /// written immediately so a crash right after the seed recovers to the
    /// seeded state rather than anchoring to a checkpoint from the
    /// pre-seed LSN sequence. The seeded state publishes as a new epoch.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] on WAL-reset or snapshot-write failures.
    pub fn install_seed(
        &mut self,
        records: Vec<FileRecord>,
        lsn: u64,
        now: Timestamp,
    ) -> Result<()> {
        let _ = self.cache.drain(now);
        {
            let epoch = Arc::make_mut(&mut self.epoch);
            for file in epoch.files() {
                epoch.apply(IndexOp::Remove(file));
            }
            for record in records {
                epoch.apply(IndexOp::Upsert(record));
            }
            epoch.applied_lsn = lsn;
            epoch.generation += 1;
        }
        self.wal.reset_to(lsn)?;
        self.wal_ops = 0;
        self.wal_trigger_bytes = 0;
        self.snapshot_lsn = None;
        if let Some(dir) = self.snapshot_dir.clone() {
            for (_, path) in snapshot::list_snapshots(&dir, self.epoch.id) {
                let _ = std::fs::remove_file(path);
            }
            snapshot::write_snapshot(
                &dir,
                self.epoch.id,
                lsn,
                &self.epoch.specs,
                self.epoch.records(),
            )?;
            self.snapshot_lsn = Some(lsn);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use propeller_types::InodeAttrs;

    fn group() -> AcgIndexGroup {
        AcgIndexGroup::new(AcgId::new(1), GroupConfig::default())
    }

    fn record(file: u64, size: u64, mtime_s: u64) -> FileRecord {
        FileRecord::new(
            FileId::new(file),
            InodeAttrs::builder().size(size).mtime(Timestamp::from_secs(mtime_s)).build(),
        )
    }

    fn t(s: u64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    #[test]
    fn pinned_epochs_are_isolated_from_later_commits() {
        let mut g = group();
        for i in 0..100u64 {
            g.enqueue(IndexOp::Upsert(record(i, i * 10, i)), t(0)).unwrap();
        }
        g.commit(t(0)).unwrap();
        let pinned = g.pin();
        let gen_before = pinned.generation();

        // Churn heavily after the pin: removals, re-upserts, new files.
        for i in 0..50u64 {
            g.enqueue(IndexOp::Remove(FileId::new(i)), t(1)).unwrap();
        }
        for i in 100..200u64 {
            g.enqueue(IndexOp::Upsert(record(i, i * 10, i)), t(1)).unwrap();
        }
        g.commit(t(1)).unwrap();

        // The pinned epoch still reads the first commit, exactly.
        assert_eq!(pinned.len(), 100);
        assert_eq!(pinned.generation(), gen_before);
        assert_eq!(
            pinned.lookup_range(&AttrName::Size, Bound::Unbounded, Bound::Unbounded),
            (0..100).map(FileId::new).collect::<Vec<_>>(),
        );
        assert!(pinned.record(FileId::new(0)).is_some());
        assert!(pinned.record(FileId::new(150)).is_none());

        // The live group reads the second commit and a higher generation.
        assert_eq!(g.len(), 150);
        assert!(g.generation() > gen_before);
        assert!(g.record(FileId::new(0)).is_none());
        assert!(g.record(FileId::new(150)).is_some());
    }

    #[test]
    fn snapshot_job_serializes_the_pinned_epoch_despite_later_commits() {
        let dir = std::env::temp_dir().join(format!("propeller-epoch-snap-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let mut g = AcgIndexGroup::new(
            AcgId::new(9),
            GroupConfig { snapshot_dir: Some(dir.clone()), ..Default::default() },
        );
        for i in 0..20u64 {
            g.enqueue(IndexOp::Upsert(record(i, i, 0)), t(0)).unwrap();
        }
        g.commit(t(0)).unwrap();

        let job = g.begin_snapshot().expect("dirty group with a snapshot dir");
        assert!(g.snapshot_in_flight());
        assert!(g.begin_snapshot().is_none(), "one job at a time");

        // Commit *between* begin and write: the job still serializes the
        // pinned 20-record epoch, not the live 21-record one.
        g.enqueue(IndexOp::Upsert(record(99, 99, 0)), t(1)).unwrap();
        g.commit(t(1)).unwrap();
        let lsn = job.lsn;
        let path = job.write().unwrap();
        g.finish_snapshot(lsn).unwrap();
        assert!(!g.snapshot_in_flight());
        assert_eq!(g.snapshot_lsn(), Some(lsn));

        let data = snapshot::read_snapshot(&path).unwrap();
        assert_eq!(data.lsn, lsn);
        assert_eq!(data.records.len(), 20, "snapshot reflects the pinned epoch");
    }

    #[test]
    fn wal_frames_ship_to_an_aligned_follower() {
        let mut primary = group();
        let mut follower = group();
        for i in 0..3u64 {
            primary
                .enqueue_batch(
                    vec![
                        IndexOp::Upsert(record(i, i * 10 + 1, 0)),
                        IndexOp::Upsert(record(i + 10, i * 10 + 2, 0)),
                    ],
                    t(0),
                )
                .unwrap();
        }
        assert!(primary.can_ship_frames_after(0));
        let frames = primary.wal_frames_after(0).unwrap();
        assert_eq!(frames.len(), 3, "one frame per replicated batch");
        for (lsn, payload) in frames {
            assert_eq!(lsn, follower.last_lsn() + 1, "shipped frames stay contiguous");
            let ops = IndexOp::decode_frame(&payload).unwrap();
            follower.enqueue_batch(ops, t(0)).unwrap();
            follower.commit(t(0)).unwrap();
            assert_eq!(follower.last_lsn(), lsn, "follower assigns the primary's LSN");
        }
        primary.commit(t(0)).unwrap();
        assert_eq!(follower.len(), primary.len());
        assert_eq!(follower.last_lsn(), primary.last_lsn());
    }

    #[test]
    fn committed_in_memory_frames_cannot_be_shipped() {
        let mut g = group();
        g.enqueue(IndexOp::Upsert(record(1, 1, 0)), t(0)).unwrap();
        g.commit(t(0)).unwrap();
        assert!(!g.can_ship_frames_after(0), "in-memory commits truncate the log");
        assert!(g.can_ship_frames_after(g.last_lsn()), "a current follower needs nothing");
    }

    #[test]
    fn install_seed_replaces_state_and_aligns_the_lsn() {
        let mut primary = group();
        for i in 0..5u64 {
            primary.enqueue(IndexOp::Upsert(record(i, i * 10 + 1, 0)), t(0)).unwrap();
        }
        primary.commit(t(0)).unwrap();
        let mut follower = group();
        // Divergent junk: one committed record and one pending op, both of
        // which the seed must supersede.
        follower.enqueue(IndexOp::Upsert(record(99, 7, 0)), t(0)).unwrap();
        follower.commit(t(0)).unwrap();
        follower.enqueue(IndexOp::Upsert(record(98, 8, 0)), t(0)).unwrap();
        let seed: Vec<FileRecord> = primary.records().cloned().collect();
        follower.install_seed(seed, primary.last_lsn(), t(0)).unwrap();
        assert_eq!(follower.len(), 5);
        assert_eq!(follower.pending_ops(), 0);
        assert!(follower.lookup_eq(&AttrName::Size, &Value::U64(7)).is_empty());
        assert_eq!(follower.last_lsn(), primary.last_lsn());
        // The next replicated frame continues the primary's sequence.
        follower.enqueue(IndexOp::Upsert(record(50, 1, 0)), t(0)).unwrap();
        assert_eq!(follower.last_lsn(), primary.last_lsn() + 1);
    }

    #[test]
    fn seeded_follower_recovers_to_the_seed() {
        let dir = std::env::temp_dir().join(format!("propeller-seed-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let cfg = || GroupConfig {
            wal: Wal::open(dir.join("seed.wal")).unwrap(),
            snapshot_dir: Some(dir.clone()),
            ..GroupConfig::default()
        };
        {
            let mut f = AcgIndexGroup::new(AcgId::new(9), cfg());
            f.enqueue(IndexOp::Upsert(record(1, 11, 0)), t(0)).unwrap();
            f.commit(t(0)).unwrap();
            f.install_seed(vec![record(2, 22, 0), record(3, 33, 0)], 40, t(0)).unwrap();
            f.sync_wal().unwrap();
        }
        // A crash right after the seed must come back as the seed: the WAL
        // was re-based to the primary's sequence and the stale pre-seed
        // checkpoints are gone, so recovery anchors to the seed snapshot.
        let (g, report) = AcgIndexGroup::recover_with_report(AcgId::new(9), cfg()).unwrap();
        assert_eq!(report.snapshot_lsn, Some(40));
        assert_eq!(g.len(), 2);
        assert_eq!(g.last_lsn(), 40);
        assert!(g.lookup_eq(&AttrName::Size, &Value::U64(11)).is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn upsert_then_range_lookup() {
        let mut g = group();
        for i in 0..100 {
            g.enqueue(IndexOp::Upsert(record(i, i * 1024, i)), t(0)).unwrap();
        }
        g.commit(t(0)).unwrap();
        let hits = g.lookup_range(
            &AttrName::Size,
            Bound::Included(Value::U64(50 * 1024)),
            Bound::Unbounded,
        );
        assert_eq!(hits.len(), 50);
        assert!(hits.contains(&FileId::new(99)));
    }

    #[test]
    fn uncommitted_ops_are_invisible_until_commit() {
        let mut g = group();
        g.enqueue(IndexOp::Upsert(record(1, 100, 0)), t(0)).unwrap();
        assert!(g.lookup_eq(&AttrName::Size, &Value::U64(100)).is_empty());
        g.commit(t(1)).unwrap();
        assert_eq!(g.lookup_eq(&AttrName::Size, &Value::U64(100)), vec![FileId::new(1)]);
    }

    #[test]
    fn timeout_triggers_auto_commit() {
        let mut g = group();
        g.enqueue(IndexOp::Upsert(record(1, 1, 0)), t(0)).unwrap();
        // 6 seconds later (past the 5s default), the next enqueue commits.
        let committed = g.enqueue(IndexOp::Upsert(record(2, 2, 0)), t(6)).unwrap();
        assert!(committed);
        assert_eq!(g.len(), 2);
        assert_eq!(g.pending_ops(), 0);
    }

    #[test]
    fn upsert_replaces_old_attribute_values() {
        let mut g = group();
        g.enqueue(IndexOp::Upsert(record(1, 100, 0)), t(0)).unwrap();
        g.enqueue(IndexOp::Upsert(record(1, 999, 0)), t(0)).unwrap();
        g.commit(t(0)).unwrap();
        assert!(g.lookup_eq(&AttrName::Size, &Value::U64(100)).is_empty());
        assert_eq!(g.lookup_eq(&AttrName::Size, &Value::U64(999)), vec![FileId::new(1)]);
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn remove_clears_all_indices() {
        let mut g = group();
        let rec = record(5, 4096, 10);
        g.enqueue(IndexOp::Upsert(rec), t(0)).unwrap();
        g.enqueue(IndexOp::Remove(FileId::new(5)), t(0)).unwrap();
        g.commit(t(0)).unwrap();
        assert!(g.lookup_eq(&AttrName::Size, &Value::U64(4096)).is_empty());
        assert!(g
            .lookup_kd(&[AttrName::Size, AttrName::Mtime], &[0.0, 0.0], &[1e18, 1e18])
            .unwrap()
            .is_empty());
        assert!(g.is_empty());
    }

    #[test]
    fn keyword_hash_lookup() {
        let mut g = group();
        let rec = record(1, 10, 0).with_keyword("firefox").with_keyword("cache");
        g.enqueue(IndexOp::Upsert(rec), t(0)).unwrap();
        g.commit(t(0)).unwrap();
        assert_eq!(g.lookup_eq(&AttrName::Keyword, &Value::from("firefox")), vec![FileId::new(1)]);
        assert_eq!(g.lookup_eq(&AttrName::Keyword, &Value::from("cache")), vec![FileId::new(1)]);
        assert!(g.lookup_eq(&AttrName::Keyword, &Value::from("chrome")).is_empty());
    }

    #[test]
    fn kd_box_query_matches_scan() {
        let mut g = group();
        for i in 0..200 {
            g.enqueue(IndexOp::Upsert(record(i, (i * 13) % 997, (i * 7) % 91)), t(0)).unwrap();
        }
        g.commit(t(0)).unwrap();
        let kd = g
            .lookup_kd(
                &[AttrName::Size, AttrName::Mtime],
                &[100.0, 10.0 * 1e6],
                &[500.0, 60.0 * 1e6],
            )
            .unwrap();
        let scan = g.scan(|r| {
            (100..=500).contains(&r.attrs.size)
                && (Timestamp::from_secs(10)..=Timestamp::from_secs(60)).contains(&r.attrs.mtime)
        });
        assert_eq!(kd, scan);
        assert!(!kd.is_empty());
    }

    #[test]
    fn custom_attribute_index() {
        let mut g = group();
        g.create_index(IndexSpec::btree("energy_idx", AttrName::custom("energy"))).unwrap();
        for i in 0..10 {
            let rec = record(i, 1, 0).with_custom("energy", Value::F64(i as f64 * -1.5));
            g.enqueue(IndexOp::Upsert(rec), t(0)).unwrap();
        }
        g.commit(t(0)).unwrap();
        let hits = g.lookup_range(
            &AttrName::custom("energy"),
            Bound::Included(Value::F64(-5.0)),
            Bound::Included(Value::F64(-2.0)),
        );
        assert_eq!(hits.len(), 2); // -3.0 and -4.5
    }

    #[test]
    fn create_index_backfills_existing_records() {
        let mut g = group();
        g.enqueue(IndexOp::Upsert(record(1, 77, 0)), t(0)).unwrap();
        g.commit(t(0)).unwrap();
        g.create_index(IndexSpec::hash("size_hash", AttrName::Size)).unwrap();
        assert_eq!(g.lookup_eq(&AttrName::Size, &Value::U64(77)), vec![FileId::new(1)]);
    }

    #[test]
    fn duplicate_index_name_rejected() {
        let mut g = group();
        let err = g.create_index(IndexSpec::btree("size_btree", AttrName::Size));
        assert!(matches!(err, Err(Error::IndexExists(_))));
    }

    #[test]
    fn drop_index_frees_structure_unless_shared() {
        let mut g = group();
        g.enqueue(IndexOp::Upsert(record(1, 77, 0)), t(0)).unwrap();
        g.commit(t(0)).unwrap();
        // A second B+-tree spec over size shares the size structure.
        g.create_index(IndexSpec::btree("size_btree2", AttrName::Size)).unwrap();
        g.drop_index("size_btree2").unwrap();
        // The default size_btree still answers.
        assert_eq!(g.lookup_eq(&AttrName::Size, &Value::U64(77)), vec![FileId::new(1)]);
        // Dropping the last spec over the attribute frees it; the name is
        // reusable and re-creation backfills.
        g.drop_index("size_btree").unwrap();
        assert!(!g.index_specs().iter().any(|s| s.name == "size_btree"));
        g.create_index(IndexSpec::btree("size_btree", AttrName::Size)).unwrap();
        assert_eq!(g.lookup_eq(&AttrName::Size, &Value::U64(77)), vec![FileId::new(1)]);
        // Unknown names are typed errors.
        assert!(matches!(g.drop_index("nope"), Err(Error::IndexNotFound(_))));
    }

    #[test]
    fn invalid_index_arity_rejected() {
        let mut g = group();
        let bad = IndexSpec {
            name: "bad".into(),
            kind: IndexKind::BTree,
            attrs: vec![AttrName::Size, AttrName::Uid],
        };
        assert!(matches!(g.create_index(bad), Err(Error::Config(_))));
        let empty_kd = IndexSpec { name: "kd0".into(), kind: IndexKind::Kd, attrs: vec![] };
        assert!(matches!(g.create_index(empty_kd), Err(Error::Config(_))));
    }

    #[test]
    fn enqueue_batch_logs_one_frame_for_the_whole_batch() {
        let mut g = group();
        let ops: Vec<IndexOp> = (0..50).map(|i| IndexOp::Upsert(record(i, i, 0))).collect();
        g.enqueue_batch(ops, t(0)).unwrap();
        assert_eq!(g.wal.entry_count(), 1, "group commit: one frame, not 50");
        assert_eq!(g.pending_ops(), 50);
        g.commit(t(0)).unwrap();
        assert_eq!(g.len(), 50);
        // A single-op batch keeps the classic per-op frame.
        g.enqueue_batch(vec![IndexOp::Remove(FileId::new(0))], t(1)).unwrap();
        assert_eq!(g.wal.entry_count(), 1);
        // Timed-out caches still auto-commit through the batch path.
        let committed = g.enqueue_batch(
            vec![IndexOp::Upsert(record(100, 1, 0)), IndexOp::Upsert(record(101, 1, 0))],
            t(100),
        );
        assert!(committed.unwrap());
        assert_eq!(g.pending_ops(), 0);
        assert_eq!(g.len(), 51);
    }

    #[test]
    fn recovery_replays_mixed_single_and_batch_frames() {
        let mut wal = Wal::in_memory();
        // A classic single-op frame, then a group-committed batch, then
        // another single frame — the shape of a log written across the
        // format transition.
        wal.append(&IndexOp::Upsert(record(1, 10, 0)).encode()).unwrap();
        let batch: Vec<IndexOp> = (2..6).map(|i| IndexOp::Upsert(record(i, i * 10, 0))).collect();
        wal.append(&IndexOp::encode_batch(&batch)).unwrap();
        wal.append(&IndexOp::Remove(FileId::new(1)).encode()).unwrap();
        let config = GroupConfig { wal, ..GroupConfig::default() };
        let (g, recovered) = AcgIndexGroup::recover(AcgId::new(9), config).unwrap();
        assert_eq!(recovered, 6);
        assert_eq!(g.len(), 4);
        assert!(g.lookup_eq(&AttrName::Size, &Value::U64(10)).is_empty());
        assert_eq!(g.lookup_eq(&AttrName::Size, &Value::U64(40)), vec![FileId::new(4)]);
    }

    #[test]
    fn recovery_replays_acknowledged_ops() {
        let mut wal = Wal::in_memory();
        for i in 0..5 {
            wal.append(&IndexOp::Upsert(record(i, i * 10, 0)).encode()).unwrap();
        }
        wal.append(&IndexOp::Remove(FileId::new(0)).encode()).unwrap();
        let config = GroupConfig { wal, ..GroupConfig::default() };
        let (g, recovered) = AcgIndexGroup::recover(AcgId::new(9), config).unwrap();
        assert_eq!(recovered, 6);
        assert_eq!(g.len(), 4);
        assert!(g.lookup_eq(&AttrName::Size, &Value::U64(0)).is_empty());
        assert_eq!(g.lookup_eq(&AttrName::Size, &Value::U64(40)), vec![FileId::new(4)]);
    }

    #[test]
    fn ops_counters_track_work() {
        let mut g = group();
        for i in 0..10 {
            g.enqueue(IndexOp::Upsert(record(i, i, 0)), t(0)).unwrap();
        }
        g.commit(t(0)).unwrap();
        assert_eq!(g.ops_applied(), 10);
        let (commits, drained) = g.commit_stats();
        assert_eq!(commits, 1);
        assert_eq!(drained, 10);
    }

    #[test]
    fn scan_fallback_for_unindexed_attr() {
        let mut g = group();
        g.enqueue(
            IndexOp::Upsert(record(1, 1, 0).with_custom("owner_tag", Value::from("alice"))),
            t(0),
        )
        .unwrap();
        g.commit(t(0)).unwrap();
        // No index over "owner_tag": lookup_eq must still find it via scan.
        assert_eq!(
            g.lookup_eq(&AttrName::custom("owner_tag"), &Value::from("alice")),
            vec![FileId::new(1)]
        );
    }

    #[test]
    fn streaming_candidates_agree_with_materializing_lookups() {
        let mut g = group();
        for i in 0..300 {
            let rec = record(i, (i * 13) % 997, (i * 7) % 91).with_keyword(if i % 3 == 0 {
                "fizz"
            } else {
                "buzz"
            });
            g.enqueue(IndexOp::Upsert(rec), t(0)).unwrap();
        }
        g.commit(t(0)).unwrap();

        let mut eq: Vec<FileId> = g
            .candidates_eq(&AttrName::Keyword, &Value::from("fizz"))
            .unwrap()
            .map(|r| r.file)
            .collect();
        eq.sort_unstable();
        assert_eq!(eq, g.lookup_eq(&AttrName::Keyword, &Value::from("fizz")));

        let (lo, hi) = (Bound::Included(Value::U64(100)), Bound::Excluded(Value::U64(500)));
        let mut range: Vec<FileId> = g
            .candidates_range(&AttrName::Size, lo.clone(), hi.clone())
            .unwrap()
            .map(|r| r.file)
            .collect();
        range.sort_unstable();
        assert_eq!(range, g.lookup_range(&AttrName::Size, lo, hi));

        let attrs = [AttrName::Size, AttrName::Mtime];
        let (klo, khi) = ([100.0, 10.0 * 1e6], [500.0, 60.0 * 1e6]);
        let mut kd: Vec<FileId> =
            g.candidates_kd(&attrs, &klo, &khi).unwrap().map(|r| r.file).collect();
        kd.sort_unstable();
        assert_eq!(kd, g.lookup_kd(&attrs, &klo, &khi).unwrap());

        // No covering index => None, so the executor can fall back.
        assert!(g.candidates_eq(&AttrName::custom("nope"), &Value::U64(1)).is_none());
        assert!(g
            .candidates_range(&AttrName::custom("nope"), Bound::Unbounded, Bound::Unbounded)
            .is_none());
        assert!(g.candidates_kd(&[AttrName::Uid], &[0.0], &[1.0]).is_none());
    }

    #[test]
    fn candidates_ordered_walks_in_sort_order_both_ways() {
        let mut g = group();
        for i in 0..100 {
            // Duplicate sizes exercise the file-id tie-break.
            g.enqueue(IndexOp::Upsert(record(i, (i % 10) * 64, 0)), t(0)).unwrap();
        }
        g.commit(t(0)).unwrap();
        let asc: Vec<(u64, FileId)> = g
            .candidates_ordered(&AttrName::Size, Bound::Unbounded, Bound::Unbounded, false)
            .unwrap()
            .map(|r| (r.attrs.size, r.file))
            .collect();
        assert_eq!(asc.len(), 100);
        assert!(asc.windows(2).all(|w| w[0] <= w[1]), "ascending (size, file) order");
        let desc: Vec<(u64, FileId)> = g
            .candidates_ordered(&AttrName::Size, Bound::Unbounded, Bound::Unbounded, true)
            .unwrap()
            .map(|r| (r.attrs.size, r.file))
            .collect();
        // Descending by size, ascending file id within equal sizes.
        assert!(desc.windows(2).all(|w| w[0].0 > w[1].0 || (w[0].0 == w[1].0 && w[0].1 < w[1].1)));
        let bounded: Vec<u64> = g
            .candidates_ordered(
                &AttrName::Size,
                Bound::Included(Value::U64(128)),
                Bound::Excluded(Value::U64(320)),
                false,
            )
            .unwrap()
            .map(|r| r.attrs.size)
            .collect();
        assert!(bounded.iter().all(|&s| (128..320).contains(&s)));
        assert_eq!(bounded.len(), 30, "sizes 128, 192, 256 x 10 files each");
    }

    #[test]
    fn projected_len_nets_out_pending_ops() {
        let mut g = group();
        for i in 0..10 {
            g.enqueue(IndexOp::Upsert(record(i, i, 0)), t(0)).unwrap();
        }
        g.commit(t(0)).unwrap();
        assert_eq!(g.projected_len(), 10, "no pending ops: projected == len");
        // Re-upserts of indexed files change nothing.
        for i in 0..10 {
            g.enqueue(IndexOp::Upsert(record(i, i + 100, 0)), t(1)).unwrap();
        }
        assert_eq!(g.pending_ops(), 10);
        assert_eq!(g.projected_len(), 10, "re-upserts must not inflate scale");
        // Net adds and removes count once each.
        g.enqueue(IndexOp::Upsert(record(50, 1, 0)), t(1)).unwrap();
        g.enqueue(IndexOp::Remove(FileId::new(3)), t(1)).unwrap();
        assert_eq!(g.projected_len(), 10, "one add, one remove");
        // Several ops on one file collapse to the last: remove then
        // re-add of file 3, add-then-remove of a brand new file.
        g.enqueue(IndexOp::Upsert(record(3, 9, 0)), t(1)).unwrap();
        g.enqueue(IndexOp::Upsert(record(60, 1, 0)), t(1)).unwrap();
        g.enqueue(IndexOp::Remove(FileId::new(60)), t(1)).unwrap();
        assert_eq!(g.projected_len(), 11, "files 0..10 plus file 50");
        g.commit(t(2)).unwrap();
        assert_eq!(g.len(), 11, "commit agrees with the projection");
        assert_eq!(g.projected_len(), 11);
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("propeller-group-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn durable_config(dir: &std::path::Path, acg: u64) -> GroupConfig {
        GroupConfig {
            wal: Wal::open(dir.join(format!("acg-{acg}.wal"))).unwrap(),
            snapshot_dir: Some(dir.to_path_buf()),
            ..GroupConfig::default()
        }
    }

    #[test]
    fn snapshot_plus_wal_suffix_restores_committed_and_pending_state() {
        let dir = temp_dir("snap-suffix");
        let acg = AcgId::new(3);
        {
            let mut g = AcgIndexGroup::new(acg, durable_config(&dir, 3));
            for i in 0..60 {
                g.enqueue(IndexOp::Upsert(record(i, i * 10, i)), t(0)).unwrap();
            }
            g.commit(t(0)).unwrap();
            let covered = g.snapshot().unwrap().expect("snapshot dir configured");
            assert_eq!(covered, g.applied_lsn());
            assert_eq!(g.snapshot_lsn(), Some(covered));
            // Post-snapshot: more committed ops and a pending tail.
            g.enqueue(IndexOp::Remove(FileId::new(0)), t(1)).unwrap();
            g.enqueue(IndexOp::Upsert(record(100, 7, 0)), t(1)).unwrap();
            g.commit(t(1)).unwrap();
            g.enqueue(IndexOp::Upsert(record(101, 7, 0)), t(2)).unwrap();
            g.sync_wal().unwrap();
            // Crash.
        }
        let (g, report) = AcgIndexGroup::recover_with_report(acg, durable_config(&dir, 3)).unwrap();
        assert!(report.snapshot_lsn.is_some(), "recovery anchored to the snapshot");
        assert_eq!(report.snapshot_records, 60);
        assert_eq!(report.replayed_ops, 3, "only the suffix replays");
        assert_eq!(g.len(), 61, "60 - 1 removed + 2 added");
        assert_eq!(g.lookup_eq(&AttrName::Size, &Value::U64(7)).len(), 2);
        assert!(g.lookup_eq(&AttrName::Size, &Value::U64(0)).is_empty(), "remove replayed");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_truncates_the_wal_with_two_checkpoint_retention() {
        let dir = temp_dir("retention");
        let acg = AcgId::new(4);
        let mut g = AcgIndexGroup::new(acg, durable_config(&dir, 4));
        let mut lsns = Vec::new();
        for round in 0..3u64 {
            for i in 0..20 {
                g.enqueue(IndexOp::Upsert(record(round * 100 + i, i, 0)), t(round)).unwrap();
            }
            g.commit(t(round)).unwrap();
            lsns.push(g.snapshot().unwrap().unwrap());
        }
        // Keep-2: the newest two snapshot files survive, older are pruned.
        let listed: Vec<u64> =
            crate::snapshot::list_snapshots(&dir, acg).into_iter().map(|(lsn, _)| lsn).collect();
        assert_eq!(listed, vec![lsns[2], lsns[1]]);
        // The log is truncated at the *previous* snapshot's LSN: frames the
        // older retained checkpoint still needs survive, everything before
        // it is gone.
        assert_eq!(g.wal.first_lsn(), lsns[1] + 1);
        assert!(g.wal.entry_count() < 60, "log bounded: {} frames", g.wal.entry_count());
        // A corrupt NEWEST snapshot falls back to the previous one plus
        // the longer suffix and still restores everything.
        let (_, newest) = crate::snapshot::list_snapshots(&dir, acg)[0].clone();
        let mut bytes = std::fs::read(&newest).unwrap();
        let ix = bytes.len() - 9;
        bytes[ix] ^= 0xFF;
        std::fs::write(&newest, bytes).unwrap();
        let (recovered, report) =
            AcgIndexGroup::recover_with_report(acg, durable_config(&dir, 4)).unwrap();
        assert_eq!(report.snapshots_skipped, 1);
        assert_eq!(report.snapshot_lsn, Some(lsns[1]));
        assert_eq!(recovered.len(), 60, "all three rounds restored");
        // With BOTH retained snapshots corrupt, the truncated WAL alone
        // cannot reassemble the pre-checkpoint state: recovery must
        // refuse loudly instead of serving a silently partial group.
        let (_, previous) = crate::snapshot::list_snapshots(&dir, acg)[1].clone();
        std::fs::write(&previous, b"PSNPgarbage").unwrap();
        let err = AcgIndexGroup::recover_with_report(acg, durable_config(&dir, 4));
        assert!(
            matches!(err, Err(Error::Corrupt(_))),
            "partial recovery must be refused, got {err:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_only_snapshot_falls_back_to_full_wal_replay() {
        let dir = temp_dir("full-fallback");
        let acg = AcgId::new(5);
        {
            let mut g = AcgIndexGroup::new(acg, durable_config(&dir, 5));
            for i in 0..30 {
                g.enqueue(IndexOp::Upsert(record(i, i, 0)), t(0)).unwrap();
            }
            g.commit(t(0)).unwrap();
            g.snapshot().unwrap().unwrap();
            g.sync_wal().unwrap();
        }
        // The first snapshot never truncates the log (there is no previous
        // checkpoint to anchor a shorter suffix to), so corrupting it must
        // degrade recovery to a complete WAL replay — not data loss.
        let (_, path) = crate::snapshot::list_snapshots(&dir, acg)[0].clone();
        std::fs::write(&path, b"PSNPgarbage").unwrap();
        let (g, report) = AcgIndexGroup::recover_with_report(acg, durable_config(&dir, 5)).unwrap();
        assert_eq!(report.snapshot_lsn, None);
        assert_eq!(report.snapshots_skipped, 1);
        assert_eq!(report.replayed_ops, 30);
        assert_eq!(g.len(), 30);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_restores_custom_index_table() {
        let dir = temp_dir("specs");
        let acg = AcgId::new(6);
        {
            let mut g = AcgIndexGroup::new(acg, durable_config(&dir, 6));
            g.create_index(IndexSpec::btree("energy_idx", AttrName::custom("energy"))).unwrap();
            for i in 0..10 {
                let rec = record(i, 1, 0).with_custom("energy", Value::F64(i as f64));
                g.enqueue(IndexOp::Upsert(rec), t(0)).unwrap();
            }
            g.commit(t(0)).unwrap();
            g.snapshot().unwrap().unwrap();
        }
        let (g, _) = AcgIndexGroup::recover_with_report(acg, durable_config(&dir, 6)).unwrap();
        assert!(g.index_specs().iter().any(|s| s.name == "energy_idx"));
        let hits = g.lookup_range(
            &AttrName::custom("energy"),
            Bound::Included(Value::F64(3.0)),
            Bound::Included(Value::F64(5.0)),
        );
        assert_eq!(hits.len(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn inverted_index_tracks_upserts_and_removes() {
        let mut g = group();
        let rec1 = record(1, 10, 0).with_keyword("annual report").with_content("sales figures");
        let rec2 = record(2, 20, 0).with_keyword("memo").with_content("sales memo");
        g.enqueue(IndexOp::Upsert(rec1), t(0)).unwrap();
        g.enqueue(IndexOp::Upsert(rec2), t(0)).unwrap();
        g.commit(t(0)).unwrap();
        let inv = g.inverted().expect("default inverted index exists");
        assert_eq!(inv.df("sales"), 2);
        assert_eq!(inv.df("report"), 1);
        assert_eq!(inv.doc_count(), 2);
        // An upsert replaces the old token set.
        g.enqueue(IndexOp::Upsert(record(1, 10, 0).with_keyword("draft")), t(1)).unwrap();
        g.commit(t(1)).unwrap();
        let inv = g.inverted().unwrap();
        assert_eq!(inv.df("report"), 0);
        assert_eq!(inv.df("draft"), 1);
        assert_eq!(inv.df("sales"), 1);
        // A remove clears the document entirely.
        g.enqueue(IndexOp::Remove(FileId::new(2)), t(2)).unwrap();
        g.commit(t(2)).unwrap();
        let inv = g.inverted().unwrap();
        assert_eq!(inv.df("sales"), 0);
        assert_eq!(inv.doc_count(), 1);
    }

    #[test]
    fn inverted_index_create_drop_symmetry() {
        let mut g = group();
        g.enqueue(IndexOp::Upsert(record(1, 10, 0).with_keyword("alpha")), t(0)).unwrap();
        g.commit(t(0)).unwrap();
        // Dropping the default frees the structure; re-creation backfills.
        g.drop_index("content_inverted").unwrap();
        assert!(g.inverted().is_none());
        g.create_index(IndexSpec::inverted("content_inverted")).unwrap();
        assert_eq!(g.inverted().unwrap().df("alpha"), 1);
        // The arity rule: an inverted spec names no attributes.
        let bad = IndexSpec {
            name: "bad".into(),
            kind: IndexKind::Inverted,
            attrs: vec![AttrName::Size],
        };
        assert!(matches!(g.create_index(bad), Err(Error::Config(_))));
    }

    #[test]
    fn snapshot_restores_inverted_postings_and_df() {
        let dir = temp_dir("inverted");
        let acg = AcgId::new(7);
        let fingerprint = {
            let mut g = AcgIndexGroup::new(acg, durable_config(&dir, 7));
            for i in 0..40 {
                let rec = record(i, i, 0)
                    .with_keyword(format!("file{i}.log"))
                    .with_content(format!("entry {} common", i % 5));
                g.enqueue(IndexOp::Upsert(rec), t(0)).unwrap();
            }
            g.commit(t(0)).unwrap();
            g.snapshot().unwrap().unwrap();
            // Post-snapshot suffix: one more upsert and one remove.
            g.enqueue(IndexOp::Upsert(record(100, 1, 0).with_keyword("tail")), t(1)).unwrap();
            g.enqueue(IndexOp::Remove(FileId::new(0)), t(1)).unwrap();
            g.commit(t(1)).unwrap();
            g.sync_wal().unwrap();
            g.inverted().unwrap().fingerprint()
        };
        let (g, report) = AcgIndexGroup::recover_with_report(acg, durable_config(&dir, 7)).unwrap();
        assert!(report.snapshot_lsn.is_some());
        assert_eq!(report.replayed_ops, 2);
        let inv = g.inverted().expect("inverted index recovered from the spec table");
        assert_eq!(inv.fingerprint(), fingerprint, "identical postings and df tables");
        assert_eq!(inv.df("common"), 39, "40 docs minus the removed one");
        assert_eq!(inv.df("tail"), 1, "wal suffix replayed into the postings");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn files_and_records_accessors() {
        let mut g = group();
        g.enqueue(IndexOp::Upsert(record(3, 1, 0)), t(0)).unwrap();
        g.enqueue(IndexOp::Upsert(record(1, 1, 0)), t(0)).unwrap();
        g.commit(t(0)).unwrap();
        assert_eq!(g.files(), vec![FileId::new(1), FileId::new(3)]);
        assert!(g.record(FileId::new(3)).is_some());
        assert!(g.record(FileId::new(9)).is_none());
        assert_eq!(g.records().count(), 2);
        assert!(g.btree_depth(&AttrName::Size).unwrap() >= 1);
    }
}
