//! A from-scratch K-D tree over file attributes.
//!
//! The third index kind Propeller supports per ACG (paper §IV). Points are
//! `k`-dimensional projections of attribute values (see
//! [`propeller_types::Value::axis_projection`]); payloads are [`FileId`]s.
//! Axis-aligned range queries answer multi-attribute predicates such as
//! `size > 1 GB ∧ mtime < 1 day` in one traversal.
//!
//! Updates use lazy deletion with automatic rebuild: removing marks a
//! tombstone, and when tombstones outnumber half the live points the tree
//! is rebuilt from scratch with balanced median splits. The paper notes its
//! prototype serialises whole K-D trees per group; this implementation is
//! `serde`-serialisable for the same reason.
//!
//! Inserts self-balance **scapegoat style**: K-D trees admit no rotations,
//! so when an insert lands deeper than the α-height bound
//! (`log₃⁄₂ n`, α = 2/3) the lowest α-weight-unbalanced ancestor on the
//! insertion path — the scapegoat — is rebuilt with balanced median
//! splits. The amortized cost is O(log n) per insert, which keeps
//! fully-monotone point streams (a bulk load sorted by size with
//! sequential mtimes — exactly what a commit of scanned files looks like)
//! from degenerating the tree into a linked list and the commit into
//! O(n²). Routing is lexicographic on `(coordinate, payload)`: the
//! payload tie-break gives *identical* points distinct routing keys, so
//! even a run of byte-equal points (thousands of empty files sharing one
//! mtime) balances instead of chaining beyond what any rebuild can fix.

use std::sync::Arc;

use propeller_types::FileId;
use serde::{Deserialize, Serialize};

/// Weight-balance ratio α as `ALPHA_NUM / ALPHA_DEN` (2/3): a subtree is a
/// scapegoat candidate when one child holds more than α of its nodes, and
/// the depth bound is `log_{1/α}` of the node count.
const ALPHA_NUM: usize = 2;
const ALPHA_DEN: usize = 3;

#[derive(Debug, Clone, Serialize, Deserialize)]
struct KdNode {
    point: Vec<f64>,
    payload: FileId,
    deleted: bool,
    /// Nodes in this subtree, tombstones included (they still cost a
    /// visit, so balance is kept over physical nodes).
    size: usize,
    left: Option<Arc<KdNode>>,
    right: Option<Arc<KdNode>>,
}

fn subtree_size(node: &Option<Arc<KdNode>>) -> usize {
    node.as_ref().map_or(0, |n| n.size)
}

/// The routing discriminator every traversal shares: a key belongs in the
/// LEFT subtree when it is lexicographically below the node on
/// `(point[axis], payload)`. The payload tie-break is what keeps runs of
/// *identical* points balanceable — with axis-only routing equal
/// coordinates always went right, forming a chain no median rebuild could
/// flatten (and therefore an unbounded recursion depth).
fn goes_left(point: &[f64], payload: FileId, n: &KdNode, axis: usize) -> bool {
    match point[axis].total_cmp(&n.point[axis]) {
        std::cmp::Ordering::Less => true,
        std::cmp::Ordering::Greater => false,
        std::cmp::Ordering::Equal => payload < n.payload,
    }
}

/// What a recursive insert reports on unwind.
enum Ins {
    /// An identical tombstoned entry was resurrected in place.
    Resurrected,
    /// Inserted within the depth bound (or a scapegoat already rebuilt).
    Done,
    /// Inserted past the depth bound; no ancestor below was α-unbalanced
    /// yet — the unwind keeps looking for the scapegoat.
    Deep,
}

/// A `k`-dimensional tree mapping points to [`FileId`]s.
///
/// # Examples
///
/// ```
/// use propeller_index::KdTree;
/// use propeller_types::FileId;
///
/// let mut tree = KdTree::new(2); // (size, mtime)
/// tree.insert(&[100.0, 5.0], FileId::new(1));
/// tree.insert(&[900.0, 2.0], FileId::new(2));
///
/// // Files with size in [500, 1000] and mtime in [0, 3]:
/// let hits = tree.range(&[500.0, 0.0], &[1000.0, 3.0]);
/// assert_eq!(hits, vec![FileId::new(2)]);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KdTree {
    dims: usize,
    root: Option<Arc<KdNode>>,
    live: usize,
    tombstones: usize,
}

impl KdTree {
    /// Creates an empty tree over `dims` dimensions.
    ///
    /// # Panics
    ///
    /// Panics if `dims` is zero.
    pub fn new(dims: usize) -> Self {
        assert!(dims > 0, "a K-D tree needs at least one dimension");
        KdTree { dims, root: None, live: 0, tombstones: 0 }
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Number of live points.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Returns `true` when the tree holds no live points.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Height of the tree, counting tombstoned nodes (they still cost a
    /// visit). Zero for an empty tree.
    pub fn depth(&self) -> usize {
        fn rec(node: &Option<Arc<KdNode>>) -> usize {
            match node {
                None => 0,
                Some(n) => 1 + rec(&n.left).max(rec(&n.right)),
            }
        }
        rec(&self.root)
    }

    /// The α-height bound for a tree of `total` nodes: inserts landing
    /// deeper trigger a scapegoat rebuild. `log_{3/2} n ≈ 1.71 log₂ n`,
    /// floored generously so tiny trees never thrash.
    fn depth_limit(total: usize) -> usize {
        let lg2 = (usize::BITS - total.max(1).leading_zeros()) as usize;
        (lg2 * 12 / 7).max(8)
    }

    /// Inserts a point with its payload. When the insert lands deeper than
    /// the α-height bound, the lowest α-weight-unbalanced ancestor is
    /// rebuilt balanced (amortized O(log n) — see the module docs).
    ///
    /// # Panics
    ///
    /// Panics if `point.len() != self.dims()`.
    pub fn insert(&mut self, point: &[f64], payload: FileId) {
        assert_eq!(point.len(), self.dims, "point dimensionality mismatch");
        let dims = self.dims;
        let max_depth = Self::depth_limit(self.live + self.tombstones + 1);
        let mut dropped_tombs = 0usize;
        let out = Self::insert_rec(
            &mut self.root,
            point,
            payload,
            0,
            dims,
            max_depth,
            &mut dropped_tombs,
        );
        self.tombstones -= dropped_tombs;
        match out {
            Ins::Resurrected => {
                self.tombstones -= 1;
                self.live += 1;
            }
            Ins::Done => self.live += 1,
            Ins::Deep => {
                // Every ancestor is α-weight-balanced yet the tree is too
                // deep (tombstone skew can do this): rebuild the whole
                // tree, which also sheds the tombstones.
                self.live += 1;
                self.rebuild();
            }
        }
    }

    /// Recursive insert with subtree-size maintenance and scapegoat
    /// detection on unwind. `dropped_tombs` accumulates tombstones shed by
    /// a subtree rebuild so the caller can fix the tree-level counter.
    fn insert_rec(
        slot: &mut Option<Arc<KdNode>>,
        point: &[f64],
        payload: FileId,
        depth: usize,
        dims: usize,
        max_depth: usize,
        dropped_tombs: &mut usize,
    ) -> Ins {
        let Some(n) = slot else {
            *slot = Some(Arc::new(KdNode {
                point: point.to_vec(),
                payload,
                deleted: false,
                size: 1,
                left: None,
                right: None,
            }));
            return if depth > max_depth { Ins::Deep } else { Ins::Done };
        };
        // Copy-on-write: shared nodes on the insertion path are cloned so
        // pinned snapshots of the tree never observe the mutation.
        let n = Arc::make_mut(n);
        // Resurrect an identical tombstoned entry in place.
        if n.deleted && n.payload == payload && n.point == point {
            n.deleted = false;
            return Ins::Resurrected;
        }
        let axis = depth % dims;
        let child = if goes_left(point, payload, n, axis) { &mut n.left } else { &mut n.right };
        let out =
            Self::insert_rec(child, point, payload, depth + 1, dims, max_depth, dropped_tombs);
        let rebuild_here = match out {
            Ins::Resurrected => return Ins::Resurrected,
            Ins::Done => {
                // A scapegoat rebuild below shed tombstones: this
                // ancestor's count shrinks by them net of the insert.
                n.size = n.size + 1 - *dropped_tombs;
                false
            }
            Ins::Deep => {
                n.size += 1;
                // The scapegoat is the lowest ancestor one of whose
                // children outweighs α of it.
                subtree_size(&n.left).max(subtree_size(&n.right)) * ALPHA_DEN > n.size * ALPHA_NUM
            }
        };
        if rebuild_here {
            let sub = slot.take();
            let total = subtree_size(&sub);
            let mut points = Vec::with_capacity(total);
            Self::collect_live(&sub, &mut points);
            *dropped_tombs += total - points.len();
            *slot = Self::build_balanced(&mut points[..], depth, dims);
            return Ins::Done;
        }
        match out {
            Ins::Deep => Ins::Deep,
            _ => Ins::Done,
        }
    }

    /// Removes the entry with exactly this point and payload. Returns
    /// `true` if found. Triggers a balanced rebuild when tombstones
    /// outnumber half the live points.
    pub fn remove(&mut self, point: &[f64], payload: FileId) -> bool {
        assert_eq!(point.len(), self.dims, "point dimensionality mismatch");
        let dims = self.dims;
        let mut node = &mut self.root;
        let mut depth = 0usize;
        loop {
            match node {
                None => return false,
                Some(n) => {
                    let n = Arc::make_mut(n);
                    if !n.deleted && n.payload == payload && n.point == point {
                        n.deleted = true;
                        self.live -= 1;
                        self.tombstones += 1;
                        if self.tombstones > self.live / 2 + 8 {
                            self.rebuild();
                        }
                        return true;
                    }
                    let axis = depth % dims;
                    if goes_left(point, payload, n, axis) {
                        node = &mut n.left;
                    } else {
                        node = &mut n.right;
                    }
                    depth += 1;
                }
            }
        }
    }

    /// Collects all live payloads whose points lie in the inclusive box
    /// `[lo, hi]` per dimension.
    ///
    /// # Panics
    ///
    /// Panics if the bounds' dimensionality differs from the tree's.
    pub fn range(&self, lo: &[f64], hi: &[f64]) -> Vec<FileId> {
        let mut out: Vec<FileId> = self.range_iter(lo, hi).collect();
        out.sort_unstable();
        out
    }

    /// Lazily yields the live payloads whose points lie in the inclusive
    /// box `[lo, hi]`, in unspecified order. This is the streaming variant
    /// of [`KdTree::range`]: candidates are produced one at a time, so a
    /// consumer with a result bound never forces the whole box to
    /// materialize.
    ///
    /// # Panics
    ///
    /// Panics if the bounds' dimensionality differs from the tree's.
    pub fn range_iter<'a>(&'a self, lo: &'a [f64], hi: &'a [f64]) -> RangeIter<'a> {
        assert_eq!(lo.len(), self.dims, "lower bound dimensionality mismatch");
        assert_eq!(hi.len(), self.dims, "upper bound dimensionality mismatch");
        RangeIter {
            stack: self.root.as_deref().map(|n| (n, 0)).into_iter().collect(),
            lo,
            hi,
            dims: self.dims,
        }
    }

    /// Rebuilds the tree with balanced median splits, dropping tombstones.
    pub fn rebuild(&mut self) {
        let mut points: Vec<(Vec<f64>, FileId)> = Vec::with_capacity(self.live);
        Self::collect_live(&self.root.take(), &mut points);
        self.tombstones = 0;
        self.live = points.len();
        self.root = Self::build_balanced(&mut points[..], 0, self.dims);
    }

    /// Builds a balanced tree from a point set (bulk load).
    ///
    /// # Examples
    ///
    /// ```
    /// use propeller_index::KdTree;
    /// use propeller_types::FileId;
    ///
    /// let points: Vec<(Vec<f64>, FileId)> =
    ///     (0..100).map(|i| (vec![i as f64], FileId::new(i))).collect();
    /// let tree = KdTree::bulk_load(1, points);
    /// assert_eq!(tree.len(), 100);
    /// assert!(tree.depth() <= 8, "balanced depth, got {}", tree.depth());
    /// ```
    pub fn bulk_load(dims: usize, mut points: Vec<(Vec<f64>, FileId)>) -> Self {
        assert!(dims > 0, "a K-D tree needs at least one dimension");
        let live = points.len();
        let root = Self::build_balanced(&mut points[..], 0, dims);
        KdTree { dims, root, live, tombstones: 0 }
    }

    fn collect_live(node: &Option<Arc<KdNode>>, out: &mut Vec<(Vec<f64>, FileId)>) {
        if let Some(n) = node {
            if !n.deleted {
                out.push((n.point.clone(), n.payload));
            }
            Self::collect_live(&n.left, out);
            Self::collect_live(&n.right, out);
        }
    }

    fn build_balanced(
        points: &mut [(Vec<f64>, FileId)],
        depth: usize,
        dims: usize,
    ) -> Option<Arc<KdNode>> {
        if points.is_empty() {
            return None;
        }
        let axis = depth % dims;
        let mid = points.len() / 2;
        // The comparator is exactly the routing order (`goes_left`):
        // axis value with the payload tie-break. The median split then
        // preserves the traversal invariant even for duplicate-heavy
        // data, and identical points spread across both halves instead
        // of chaining down one spine.
        points.select_nth_unstable_by(mid, |a, b| {
            a.0[axis].total_cmp(&b.0[axis]).then_with(|| a.1.cmp(&b.1))
        });
        let (point, payload) = points[mid].clone();
        let size = points.len();
        let (left_half, rest) = points.split_at_mut(mid);
        let right_half = &mut rest[1..];
        Some(Arc::new(KdNode {
            point,
            payload,
            deleted: false,
            size,
            left: Self::build_balanced(left_half, depth + 1, dims),
            right: Self::build_balanced(right_half, depth + 1, dims),
        }))
    }

    /// Iterates over all live `(point, payload)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&[f64], FileId)> {
        let mut stack: Vec<&KdNode> = self.root.as_deref().into_iter().collect();
        std::iter::from_fn(move || loop {
            let n = stack.pop()?;
            if let Some(l) = n.left.as_deref() {
                stack.push(l);
            }
            if let Some(r) = n.right.as_deref() {
                stack.push(r);
            }
            if !n.deleted {
                return Some((n.point.as_slice(), n.payload));
            }
        })
    }
}

/// Lazy box-query iterator over a [`KdTree`] (see [`KdTree::range_iter`]).
pub struct RangeIter<'a> {
    /// Explicit traversal stack: (node, depth).
    stack: Vec<(&'a KdNode, usize)>,
    lo: &'a [f64],
    hi: &'a [f64],
    dims: usize,
}

impl Iterator for RangeIter<'_> {
    type Item = FileId;

    fn next(&mut self) -> Option<FileId> {
        while let Some((n, depth)) = self.stack.pop() {
            let axis = depth % self.dims;
            // Left holds keys lexicographically below `(coord, payload)`,
            // so equal coordinates can sit on EITHER side (the payload
            // tie-break balances duplicates): the left prune must keep
            // `lo == split` reachable, hence `<=`.
            if self.hi[axis] >= n.point[axis] {
                if let Some(r) = n.right.as_deref() {
                    self.stack.push((r, depth + 1));
                }
            }
            if self.lo[axis] <= n.point[axis] {
                if let Some(l) = n.left.as_deref() {
                    self.stack.push((l, depth + 1));
                }
            }
            if !n.deleted
                && n.point
                    .iter()
                    .zip(self.lo.iter().zip(self.hi))
                    .all(|(&p, (&l, &h))| p >= l && p <= h)
            {
                return Some(n.payload);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(i: u64) -> FileId {
        FileId::new(i)
    }

    #[test]
    fn clones_are_snapshots_under_further_mutation() {
        let mut t = KdTree::new(2);
        for i in 0..2000u64 {
            t.insert(&[(i % 50) as f64, (i / 50) as f64], f(i));
        }
        let snap = t.clone();
        for i in 0..2000u64 {
            if i % 2 == 0 {
                t.remove(&[(i % 50) as f64, (i / 50) as f64], f(i));
            }
        }
        for i in 2000..2500u64 {
            t.insert(&[(i % 50) as f64, (i / 50) as f64], f(i));
        }
        // The clone still answers exactly the pre-mutation box query.
        assert_eq!(snap.len(), 2000);
        let all = snap.range(&[0.0, 0.0], &[1e9, 1e9]);
        assert_eq!(all, (0..2000).map(f).collect::<Vec<_>>());
        assert_eq!(t.len(), 1000 + 500);
    }

    #[test]
    fn range_iter_streams_the_same_set_as_range() {
        let mut t = KdTree::new(2);
        for x in 0..20u64 {
            for y in 0..20u64 {
                t.insert(&[x as f64, y as f64], f(x * 20 + y));
            }
        }
        t.remove(&[5.0, 5.0], f(5 * 20 + 5));
        let (lo, hi) = ([3.0, 4.0], [11.0, 9.0]);
        let mut streamed: Vec<FileId> = t.range_iter(&lo, &hi).collect();
        streamed.sort_unstable();
        assert_eq!(streamed, t.range(&lo, &hi));
        assert!(!streamed.contains(&f(5 * 20 + 5)));
    }

    #[test]
    fn insert_and_range_1d() {
        let mut t = KdTree::new(1);
        for i in 0..100u64 {
            t.insert(&[i as f64], f(i));
        }
        let hits = t.range(&[10.0], &[19.0]);
        assert_eq!(hits, (10..20).map(f).collect::<Vec<_>>());
    }

    #[test]
    fn range_2d_box() {
        let mut t = KdTree::new(2);
        for x in 0..10u64 {
            for y in 0..10u64 {
                t.insert(&[x as f64, y as f64], f(x * 10 + y));
            }
        }
        let hits = t.range(&[2.0, 3.0], &[4.0, 5.0]);
        assert_eq!(hits.len(), 9); // 3 x values * 3 y values
        for id in hits {
            let (x, y) = (id.raw() / 10, id.raw() % 10);
            assert!((2..=4).contains(&x) && (3..=5).contains(&y));
        }
    }

    #[test]
    fn remove_hides_points() {
        let mut t = KdTree::new(1);
        t.insert(&[1.0], f(1));
        t.insert(&[2.0], f(2));
        assert!(t.remove(&[1.0], f(1)));
        assert!(!t.remove(&[1.0], f(1)), "double remove fails");
        assert_eq!(t.range(&[0.0], &[10.0]), vec![f(2)]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn remove_wrong_payload_fails() {
        let mut t = KdTree::new(1);
        t.insert(&[1.0], f(1));
        assert!(!t.remove(&[1.0], f(2)));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn reinsert_after_remove() {
        let mut t = KdTree::new(1);
        t.insert(&[1.0], f(1));
        t.remove(&[1.0], f(1));
        t.insert(&[1.0], f(1));
        assert_eq!(t.range(&[1.0], &[1.0]), vec![f(1)]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn duplicate_coordinates_different_payloads() {
        let mut t = KdTree::new(2);
        t.insert(&[5.0, 5.0], f(1));
        t.insert(&[5.0, 5.0], f(2));
        t.insert(&[5.0, 5.0], f(3));
        assert_eq!(t.range(&[5.0, 5.0], &[5.0, 5.0]), vec![f(1), f(2), f(3)]);
        assert!(t.remove(&[5.0, 5.0], f(2)));
        assert_eq!(t.range(&[5.0, 5.0], &[5.0, 5.0]), vec![f(1), f(3)]);
    }

    #[test]
    fn tombstone_pressure_triggers_rebuild() {
        let mut t = KdTree::new(1);
        for i in 0..1000u64 {
            t.insert(&[i as f64], f(i));
        }
        for i in 0..900u64 {
            t.remove(&[i as f64], f(i));
        }
        assert_eq!(t.len(), 100);
        // Rebuild kicked in: depth is near log2(100), not 1000.
        assert!(t.depth() <= 20, "depth after rebuild: {}", t.depth());
        assert_eq!(t.range(&[0.0], &[2000.0]).len(), 100);
    }

    #[test]
    fn monotone_insert_stream_stays_shallow_and_fast() {
        // The PR-4 degeneration: a commit whose points are monotone in
        // *every* axis (a bulk load sorted by size with sequential mtimes)
        // built a right-spine linked list — 50k inserts cost O(n²) and a
        // 200k-file commit took >30 s. Scapegoat rebuilds must keep the
        // depth within the α-height bound (≈ 1.71·log₂ n plus the slack
        // one unbalanced insert may add), which also bounds the insert
        // cost; without the fix this test would spin for minutes before
        // failing the depth assertion at 50 000.
        const N: u64 = 50_000;
        let mut t = KdTree::new(2);
        for i in 0..N {
            t.insert(&[i as f64, i as f64], f(i));
        }
        assert_eq!(t.len(), N as usize);
        let bound = KdTree::depth_limit(N as usize) + 1;
        assert!(t.depth() <= bound, "monotone stream depth {} > bound {bound}", t.depth());
        // Queries still exact after all the subtree rebuilds.
        let hits = t.range(&[100.0, 100.0], &[149.0, 149.0]);
        assert_eq!(hits.len(), 50);
        assert_eq!(hits[0], f(100));
    }

    #[test]
    fn descending_and_interleaved_streams_stay_shallow() {
        const N: u64 = 20_000;
        let mut desc = KdTree::new(2);
        for i in (0..N).rev() {
            desc.insert(&[i as f64, (i * 3) as f64], f(i));
        }
        assert!(desc.depth() <= KdTree::depth_limit(N as usize) + 1, "depth {}", desc.depth());
        // Monotone runs interleaved with removes (tombstone pressure and
        // scapegoat rebuilds interacting).
        let mut churn = KdTree::new(2);
        for i in 0..N {
            churn.insert(&[i as f64, i as f64], f(i));
            if i % 3 == 2 {
                churn.remove(&[(i - 1) as f64, (i - 1) as f64], f(i - 1));
            }
        }
        assert_eq!(churn.len(), N as usize - N as usize / 3);
        let total = churn.live + churn.tombstones;
        assert!(churn.depth() <= KdTree::depth_limit(total) + 1, "depth {}", churn.depth());
        let hits = churn.range(&[0.0, 0.0], &[(N as f64) * 2.0, (N as f64) * 2.0]);
        assert_eq!(hits.len(), churn.len());
    }

    #[test]
    fn subtree_sizes_stay_consistent_under_churn() {
        fn check(node: &Option<Arc<KdNode>>) -> usize {
            match node {
                None => 0,
                Some(n) => {
                    let got = 1 + check(&n.left) + check(&n.right);
                    assert_eq!(n.size, got, "stored subtree size disagrees with the structure");
                    got
                }
            }
        }
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(77);
        let mut t = KdTree::new(2);
        let mut alive: Vec<(Vec<f64>, FileId)> = Vec::new();
        for i in 0..3_000u64 {
            if !alive.is_empty() && rng.gen_bool(0.3) {
                let ix = rng.gen_range(0..alive.len());
                let (p, id) = alive.swap_remove(ix);
                assert!(t.remove(&p, id));
            } else {
                // Mostly-monotone coordinates keep the scapegoat path hot.
                let p = vec![i as f64, rng.gen_range(0.0..10.0)];
                t.insert(&p, f(i));
                alive.push((p, f(i)));
            }
            if i % 500 == 0 {
                check(&t.root);
            }
        }
        check(&t.root);
        assert_eq!(t.len(), alive.len());
    }

    #[test]
    fn bulk_load_with_duplicate_axis_values_keeps_equals_reachable() {
        // Regression: `build_balanced`'s payload tie-break puts equal axis
        // values on BOTH sides of a split, but range pruning used a strict
        // `<` on the left branch — a balanced load of duplicate-heavy data
        // then silently lost every equal-valued hit parked left of its
        // split. Routing and pruning now share the lexicographic
        // `(coord, payload)` order, so equals stay reachable.
        let points: Vec<(Vec<f64>, FileId)> =
            (0..100u64).map(|i| (vec![(i / 10) as f64], f(i))).collect();
        let t = KdTree::bulk_load(1, points);
        for v in 0..10u64 {
            let hits = t.range(&[v as f64], &[v as f64]);
            assert_eq!(hits.len(), 10, "value {v} lost duplicates: {hits:?}");
        }
    }

    #[test]
    fn identical_points_balance_instead_of_chaining() {
        // Regression (found in review): with axis-only routing, a run of
        // *identical* points — e.g. thousands of empty files sharing one
        // mtime under the default (size, mtime) index — always went right,
        // forming a chain the scapegoat rebuild reproduced verbatim; the
        // recursive insert then blew the stack at ~20k duplicates. The
        // payload tie-break makes identical points distinct routing keys,
        // so they balance like any other data.
        const N: u64 = 30_000;
        let mut t = KdTree::new(2);
        for i in 0..N {
            t.insert(&[0.0, 0.0], f(i));
        }
        assert_eq!(t.len(), N as usize);
        let bound = KdTree::depth_limit(N as usize) + 1;
        assert!(t.depth() <= bound, "identical-point depth {} > bound {bound}", t.depth());
        assert_eq!(t.range(&[0.0, 0.0], &[0.0, 0.0]).len(), N as usize);
        assert!(t.range(&[0.1, 0.0], &[1.0, 1.0]).is_empty());
        // Removal still finds entries by (point, payload) through the
        // payload-routed paths.
        assert!(t.remove(&[0.0, 0.0], f(12_345)));
        assert!(!t.remove(&[0.0, 0.0], f(12_345)));
        assert_eq!(t.len(), N as usize - 1);
    }

    #[test]
    fn bulk_load_is_balanced() {
        let points: Vec<(Vec<f64>, FileId)> =
            (0..4096u64).map(|i| (vec![(i % 64) as f64, (i / 64) as f64], f(i))).collect();
        let t = KdTree::bulk_load(2, points);
        assert_eq!(t.len(), 4096);
        assert!(t.depth() <= 14, "depth {}", t.depth());
    }

    #[test]
    fn matches_brute_force_on_random_data() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(31);
        let mut t = KdTree::new(3);
        let mut points: Vec<(Vec<f64>, FileId)> = Vec::new();
        for i in 0..500u64 {
            let p: Vec<f64> = (0..3).map(|_| rng.gen_range(0.0..100.0)).collect();
            t.insert(&p, f(i));
            points.push((p, f(i)));
        }
        for _ in 0..50 {
            let lo: Vec<f64> = (0..3).map(|_| rng.gen_range(0.0..80.0)).collect();
            let hi: Vec<f64> = lo.iter().map(|l| l + rng.gen_range(0.0..40.0)).collect();
            let mut expected: Vec<FileId> = points
                .iter()
                .filter(|(p, _)| {
                    p.iter().zip(lo.iter().zip(&hi)).all(|(&x, (&l, &h))| x >= l && x <= h)
                })
                .map(|&(_, id)| id)
                .collect();
            expected.sort();
            assert_eq!(t.range(&lo, &hi), expected);
        }
    }

    #[test]
    fn iter_visits_live_points_once() {
        let mut t = KdTree::new(1);
        for i in 0..50u64 {
            t.insert(&[i as f64], f(i));
        }
        t.remove(&[10.0], f(10));
        let mut seen: Vec<FileId> = t.iter().map(|(_, p)| p).collect();
        seen.sort();
        let expected: Vec<FileId> = (0..50).filter(|&i| i != 10).map(f).collect();
        assert_eq!(seen, expected);
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn wrong_dimension_rejected() {
        let mut t = KdTree::new(2);
        t.insert(&[1.0], f(1));
    }

    #[test]
    fn serde_round_trip_preserves_queries() {
        // Manual token-free check: serialize to a generic serde format.
        // We use JSON-like round trip via serde internal — simplest is to
        // check Clone + structure equality through queries instead.
        let mut t = KdTree::new(2);
        for i in 0..100u64 {
            t.insert(&[(i % 10) as f64, (i / 10) as f64], f(i));
        }
        let copy = t.clone();
        assert_eq!(t.range(&[0.0, 0.0], &[3.0, 3.0]), copy.range(&[0.0, 0.0], &[3.0, 3.0]));
    }
}
