//! A from-scratch K-D tree over file attributes.
//!
//! The third index kind Propeller supports per ACG (paper §IV). Points are
//! `k`-dimensional projections of attribute values (see
//! [`propeller_types::Value::axis_projection`]); payloads are [`FileId`]s.
//! Axis-aligned range queries answer multi-attribute predicates such as
//! `size > 1 GB ∧ mtime < 1 day` in one traversal.
//!
//! Updates use lazy deletion with automatic rebuild: removing marks a
//! tombstone, and when tombstones outnumber half the live points the tree
//! is rebuilt from scratch with balanced median splits. The paper notes its
//! prototype serialises whole K-D trees per group; this implementation is
//! `serde`-serialisable for the same reason.

use propeller_types::FileId;
use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, Serialize, Deserialize)]
struct KdNode {
    point: Vec<f64>,
    payload: FileId,
    deleted: bool,
    left: Option<Box<KdNode>>,
    right: Option<Box<KdNode>>,
}

/// A `k`-dimensional tree mapping points to [`FileId`]s.
///
/// # Examples
///
/// ```
/// use propeller_index::KdTree;
/// use propeller_types::FileId;
///
/// let mut tree = KdTree::new(2); // (size, mtime)
/// tree.insert(&[100.0, 5.0], FileId::new(1));
/// tree.insert(&[900.0, 2.0], FileId::new(2));
///
/// // Files with size in [500, 1000] and mtime in [0, 3]:
/// let hits = tree.range(&[500.0, 0.0], &[1000.0, 3.0]);
/// assert_eq!(hits, vec![FileId::new(2)]);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KdTree {
    dims: usize,
    root: Option<Box<KdNode>>,
    live: usize,
    tombstones: usize,
}

impl KdTree {
    /// Creates an empty tree over `dims` dimensions.
    ///
    /// # Panics
    ///
    /// Panics if `dims` is zero.
    pub fn new(dims: usize) -> Self {
        assert!(dims > 0, "a K-D tree needs at least one dimension");
        KdTree { dims, root: None, live: 0, tombstones: 0 }
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Number of live points.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Returns `true` when the tree holds no live points.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Height of the tree, counting tombstoned nodes (they still cost a
    /// visit). Zero for an empty tree.
    pub fn depth(&self) -> usize {
        fn rec(node: &Option<Box<KdNode>>) -> usize {
            match node {
                None => 0,
                Some(n) => 1 + rec(&n.left).max(rec(&n.right)),
            }
        }
        rec(&self.root)
    }

    /// Inserts a point with its payload.
    ///
    /// # Panics
    ///
    /// Panics if `point.len() != self.dims()`.
    pub fn insert(&mut self, point: &[f64], payload: FileId) {
        assert_eq!(point.len(), self.dims, "point dimensionality mismatch");
        let dims = self.dims;
        let mut node = &mut self.root;
        let mut depth = 0usize;
        loop {
            match node {
                None => {
                    *node = Some(Box::new(KdNode {
                        point: point.to_vec(),
                        payload,
                        deleted: false,
                        left: None,
                        right: None,
                    }));
                    self.live += 1;
                    return;
                }
                Some(n) => {
                    let axis = depth % dims;
                    // Resurrect an identical tombstoned entry in place.
                    if n.deleted && n.payload == payload && n.point == point {
                        n.deleted = false;
                        self.tombstones -= 1;
                        self.live += 1;
                        return;
                    }
                    if point[axis] < n.point[axis] {
                        node = &mut n.left;
                    } else {
                        node = &mut n.right;
                    }
                    depth += 1;
                }
            }
        }
    }

    /// Removes the entry with exactly this point and payload. Returns
    /// `true` if found. Triggers a balanced rebuild when tombstones
    /// outnumber half the live points.
    pub fn remove(&mut self, point: &[f64], payload: FileId) -> bool {
        assert_eq!(point.len(), self.dims, "point dimensionality mismatch");
        let dims = self.dims;
        let mut node = &mut self.root;
        let mut depth = 0usize;
        loop {
            match node {
                None => return false,
                Some(n) => {
                    if !n.deleted && n.payload == payload && n.point == point {
                        n.deleted = true;
                        self.live -= 1;
                        self.tombstones += 1;
                        if self.tombstones > self.live / 2 + 8 {
                            self.rebuild();
                        }
                        return true;
                    }
                    let axis = depth % dims;
                    if point[axis] < n.point[axis] {
                        node = &mut n.left;
                    } else {
                        node = &mut n.right;
                    }
                    depth += 1;
                }
            }
        }
    }

    /// Collects all live payloads whose points lie in the inclusive box
    /// `[lo, hi]` per dimension.
    ///
    /// # Panics
    ///
    /// Panics if the bounds' dimensionality differs from the tree's.
    pub fn range(&self, lo: &[f64], hi: &[f64]) -> Vec<FileId> {
        let mut out: Vec<FileId> = self.range_iter(lo, hi).collect();
        out.sort_unstable();
        out
    }

    /// Lazily yields the live payloads whose points lie in the inclusive
    /// box `[lo, hi]`, in unspecified order. This is the streaming variant
    /// of [`KdTree::range`]: candidates are produced one at a time, so a
    /// consumer with a result bound never forces the whole box to
    /// materialize.
    ///
    /// # Panics
    ///
    /// Panics if the bounds' dimensionality differs from the tree's.
    pub fn range_iter<'a>(&'a self, lo: &'a [f64], hi: &'a [f64]) -> RangeIter<'a> {
        assert_eq!(lo.len(), self.dims, "lower bound dimensionality mismatch");
        assert_eq!(hi.len(), self.dims, "upper bound dimensionality mismatch");
        RangeIter {
            stack: self.root.as_deref().map(|n| (n, 0)).into_iter().collect(),
            lo,
            hi,
            dims: self.dims,
        }
    }

    /// Rebuilds the tree with balanced median splits, dropping tombstones.
    pub fn rebuild(&mut self) {
        let mut points: Vec<(Vec<f64>, FileId)> = Vec::with_capacity(self.live);
        Self::collect_live(&self.root.take(), &mut points);
        self.tombstones = 0;
        self.live = points.len();
        self.root = Self::build_balanced(&mut points[..], 0, self.dims);
    }

    /// Builds a balanced tree from a point set (bulk load).
    ///
    /// # Examples
    ///
    /// ```
    /// use propeller_index::KdTree;
    /// use propeller_types::FileId;
    ///
    /// let points: Vec<(Vec<f64>, FileId)> =
    ///     (0..100).map(|i| (vec![i as f64], FileId::new(i))).collect();
    /// let tree = KdTree::bulk_load(1, points);
    /// assert_eq!(tree.len(), 100);
    /// assert!(tree.depth() <= 8, "balanced depth, got {}", tree.depth());
    /// ```
    pub fn bulk_load(dims: usize, mut points: Vec<(Vec<f64>, FileId)>) -> Self {
        assert!(dims > 0, "a K-D tree needs at least one dimension");
        let live = points.len();
        let root = Self::build_balanced(&mut points[..], 0, dims);
        KdTree { dims, root, live, tombstones: 0 }
    }

    fn collect_live(node: &Option<Box<KdNode>>, out: &mut Vec<(Vec<f64>, FileId)>) {
        if let Some(n) = node {
            if !n.deleted {
                out.push((n.point.clone(), n.payload));
            }
            Self::collect_live(&n.left, out);
            Self::collect_live(&n.right, out);
        }
    }

    fn build_balanced(
        points: &mut [(Vec<f64>, FileId)],
        depth: usize,
        dims: usize,
    ) -> Option<Box<KdNode>> {
        if points.is_empty() {
            return None;
        }
        let axis = depth % dims;
        let mid = points.len() / 2;
        points.select_nth_unstable_by(mid, |a, b| {
            a.0[axis].total_cmp(&b.0[axis]).then_with(|| a.1.cmp(&b.1))
        });
        // `select_nth` guarantees points[..mid] <= points[mid] <= points[mid+1..]
        // under the comparator, preserving the "< left, >= right" invariant.
        let (point, payload) = points[mid].clone();
        let (left_half, rest) = points.split_at_mut(mid);
        let right_half = &mut rest[1..];
        Some(Box::new(KdNode {
            point,
            payload,
            deleted: false,
            left: Self::build_balanced(left_half, depth + 1, dims),
            right: Self::build_balanced(right_half, depth + 1, dims),
        }))
    }

    /// Iterates over all live `(point, payload)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&[f64], FileId)> {
        let mut stack: Vec<&KdNode> = self.root.as_deref().into_iter().collect();
        std::iter::from_fn(move || loop {
            let n = stack.pop()?;
            if let Some(l) = n.left.as_deref() {
                stack.push(l);
            }
            if let Some(r) = n.right.as_deref() {
                stack.push(r);
            }
            if !n.deleted {
                return Some((n.point.as_slice(), n.payload));
            }
        })
    }
}

/// Lazy box-query iterator over a [`KdTree`] (see [`KdTree::range_iter`]).
pub struct RangeIter<'a> {
    /// Explicit traversal stack: (node, depth).
    stack: Vec<(&'a KdNode, usize)>,
    lo: &'a [f64],
    hi: &'a [f64],
    dims: usize,
}

impl Iterator for RangeIter<'_> {
    type Item = FileId;

    fn next(&mut self) -> Option<FileId> {
        while let Some((n, depth)) = self.stack.pop() {
            let axis = depth % self.dims;
            // Left subtree holds coords < split; right holds >=.
            if self.hi[axis] >= n.point[axis] {
                if let Some(r) = n.right.as_deref() {
                    self.stack.push((r, depth + 1));
                }
            }
            if self.lo[axis] < n.point[axis] {
                if let Some(l) = n.left.as_deref() {
                    self.stack.push((l, depth + 1));
                }
            }
            if !n.deleted
                && n.point
                    .iter()
                    .zip(self.lo.iter().zip(self.hi))
                    .all(|(&p, (&l, &h))| p >= l && p <= h)
            {
                return Some(n.payload);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(i: u64) -> FileId {
        FileId::new(i)
    }

    #[test]
    fn range_iter_streams_the_same_set_as_range() {
        let mut t = KdTree::new(2);
        for x in 0..20u64 {
            for y in 0..20u64 {
                t.insert(&[x as f64, y as f64], f(x * 20 + y));
            }
        }
        t.remove(&[5.0, 5.0], f(5 * 20 + 5));
        let (lo, hi) = ([3.0, 4.0], [11.0, 9.0]);
        let mut streamed: Vec<FileId> = t.range_iter(&lo, &hi).collect();
        streamed.sort_unstable();
        assert_eq!(streamed, t.range(&lo, &hi));
        assert!(!streamed.contains(&f(5 * 20 + 5)));
    }

    #[test]
    fn insert_and_range_1d() {
        let mut t = KdTree::new(1);
        for i in 0..100u64 {
            t.insert(&[i as f64], f(i));
        }
        let hits = t.range(&[10.0], &[19.0]);
        assert_eq!(hits, (10..20).map(f).collect::<Vec<_>>());
    }

    #[test]
    fn range_2d_box() {
        let mut t = KdTree::new(2);
        for x in 0..10u64 {
            for y in 0..10u64 {
                t.insert(&[x as f64, y as f64], f(x * 10 + y));
            }
        }
        let hits = t.range(&[2.0, 3.0], &[4.0, 5.0]);
        assert_eq!(hits.len(), 9); // 3 x values * 3 y values
        for id in hits {
            let (x, y) = (id.raw() / 10, id.raw() % 10);
            assert!((2..=4).contains(&x) && (3..=5).contains(&y));
        }
    }

    #[test]
    fn remove_hides_points() {
        let mut t = KdTree::new(1);
        t.insert(&[1.0], f(1));
        t.insert(&[2.0], f(2));
        assert!(t.remove(&[1.0], f(1)));
        assert!(!t.remove(&[1.0], f(1)), "double remove fails");
        assert_eq!(t.range(&[0.0], &[10.0]), vec![f(2)]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn remove_wrong_payload_fails() {
        let mut t = KdTree::new(1);
        t.insert(&[1.0], f(1));
        assert!(!t.remove(&[1.0], f(2)));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn reinsert_after_remove() {
        let mut t = KdTree::new(1);
        t.insert(&[1.0], f(1));
        t.remove(&[1.0], f(1));
        t.insert(&[1.0], f(1));
        assert_eq!(t.range(&[1.0], &[1.0]), vec![f(1)]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn duplicate_coordinates_different_payloads() {
        let mut t = KdTree::new(2);
        t.insert(&[5.0, 5.0], f(1));
        t.insert(&[5.0, 5.0], f(2));
        t.insert(&[5.0, 5.0], f(3));
        assert_eq!(t.range(&[5.0, 5.0], &[5.0, 5.0]), vec![f(1), f(2), f(3)]);
        assert!(t.remove(&[5.0, 5.0], f(2)));
        assert_eq!(t.range(&[5.0, 5.0], &[5.0, 5.0]), vec![f(1), f(3)]);
    }

    #[test]
    fn tombstone_pressure_triggers_rebuild() {
        let mut t = KdTree::new(1);
        for i in 0..1000u64 {
            t.insert(&[i as f64], f(i));
        }
        for i in 0..900u64 {
            t.remove(&[i as f64], f(i));
        }
        assert_eq!(t.len(), 100);
        // Rebuild kicked in: depth is near log2(100), not 1000.
        assert!(t.depth() <= 20, "depth after rebuild: {}", t.depth());
        assert_eq!(t.range(&[0.0], &[2000.0]).len(), 100);
    }

    #[test]
    fn bulk_load_is_balanced() {
        let points: Vec<(Vec<f64>, FileId)> =
            (0..4096u64).map(|i| (vec![(i % 64) as f64, (i / 64) as f64], f(i))).collect();
        let t = KdTree::bulk_load(2, points);
        assert_eq!(t.len(), 4096);
        assert!(t.depth() <= 14, "depth {}", t.depth());
    }

    #[test]
    fn matches_brute_force_on_random_data() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(31);
        let mut t = KdTree::new(3);
        let mut points: Vec<(Vec<f64>, FileId)> = Vec::new();
        for i in 0..500u64 {
            let p: Vec<f64> = (0..3).map(|_| rng.gen_range(0.0..100.0)).collect();
            t.insert(&p, f(i));
            points.push((p, f(i)));
        }
        for _ in 0..50 {
            let lo: Vec<f64> = (0..3).map(|_| rng.gen_range(0.0..80.0)).collect();
            let hi: Vec<f64> = lo.iter().map(|l| l + rng.gen_range(0.0..40.0)).collect();
            let mut expected: Vec<FileId> = points
                .iter()
                .filter(|(p, _)| {
                    p.iter().zip(lo.iter().zip(&hi)).all(|(&x, (&l, &h))| x >= l && x <= h)
                })
                .map(|&(_, id)| id)
                .collect();
            expected.sort();
            assert_eq!(t.range(&lo, &hi), expected);
        }
    }

    #[test]
    fn iter_visits_live_points_once() {
        let mut t = KdTree::new(1);
        for i in 0..50u64 {
            t.insert(&[i as f64], f(i));
        }
        t.remove(&[10.0], f(10));
        let mut seen: Vec<FileId> = t.iter().map(|(_, p)| p).collect();
        seen.sort();
        let expected: Vec<FileId> = (0..50).filter(|&i| i != 10).map(f).collect();
        assert_eq!(seen, expected);
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn wrong_dimension_rejected() {
        let mut t = KdTree::new(2);
        t.insert(&[1.0], f(1));
    }

    #[test]
    fn serde_round_trip_preserves_queries() {
        // Manual token-free check: serialize to a generic serde format.
        // We use JSON-like round trip via serde internal — simplest is to
        // check Clone + structure equality through queries instead.
        let mut t = KdTree::new(2);
        for i in 0..100u64 {
            t.insert(&[(i % 10) as f64, (i / 10) as f64], f(i));
        }
        let copy = t.clone();
        assert_eq!(t.range(&[0.0, 0.0], &[3.0, 3.0]), copy.range(&[0.0, 0.0], &[3.0, 3.0]));
    }
}
