//! Inverted index over tokenized file text — the content-search structure.
//!
//! Propeller's paper indexes metadata only; this module adds the fourth
//! index family: term → sorted postings of [`FileId`] with per-posting
//! term frequency (tf) and per-term document frequency (df), plus the
//! per-document token counts BM25 ranking needs. The structure is
//! maintained incrementally through [`crate::AcgIndexGroup`] ops exactly
//! like the B+-tree/hash/K-D families, so the WAL + snapshot machinery
//! persists it for free (postings are rebuilt deterministically from the
//! records at recovery).
//!
//! ## Tokens
//!
//! A record's indexable text is its keyword list plus every string-valued
//! custom attribute (the `"content"` attribute by convention, see
//! [`crate::FileRecord::with_content`]), each split into lowercase
//! alphanumeric runs by [`tokenize`]. Phrase matching treats every source
//! string as its own field: a phrase must be adjacent *within* one
//! keyword or one custom value, never across two.
//!
//! ## Block skip metadata
//!
//! Every [`BLOCK`]-sized run of a term's postings records its last file id
//! and maximum tf ([`Block`]). A top-k search derives a per-block score
//! upper bound from that max tf ([`bm25_block_bound`]) and skips whole
//! blocks provably below the current top-k floor — the WAND-style pruning
//! the query executor witnesses with its `wand_*` stats counters.

use std::collections::HashMap;
use std::sync::Arc;

use propeller_types::{FileId, Value};

use crate::btree::BPlusTree;
use crate::ops::FileRecord;

/// BM25 `k1`: term-frequency saturation.
pub const BM25_K1: f64 = 1.2;
/// BM25 `b`: document-length normalization strength.
pub const BM25_B: f64 = 0.75;
/// Postings per skip block (one [`Block`] per `BLOCK` postings).
pub const BLOCK: usize = 64;

/// Appends the lowercase alphanumeric runs of `text` to `out`.
///
/// # Examples
///
/// ```
/// let mut out = Vec::new();
/// propeller_index::tokenize_into("Foo-Bar_2/baz.RS", &mut out);
/// assert_eq!(out, ["foo", "bar", "2", "baz", "rs"]);
/// ```
pub fn tokenize_into(text: &str, out: &mut Vec<String>) {
    let mut token = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            token.extend(ch.to_lowercase());
        } else if !token.is_empty() {
            out.push(std::mem::take(&mut token));
        }
    }
    if !token.is_empty() {
        out.push(token);
    }
}

/// The lowercase alphanumeric tokens of `text`.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    tokenize_into(text, &mut out);
    out
}

/// The source strings a record contributes tokens from: its keywords in
/// order, then its string-valued custom attributes in order. Each source
/// is one *field* for phrase adjacency.
pub fn record_text_fields(record: &FileRecord) -> impl Iterator<Item = &str> {
    record.keywords.iter().map(String::as_str).chain(record.custom.iter().filter_map(|(_, v)| {
        match v {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }))
}

/// All tokens of a record, across every text field.
pub fn record_tokens(record: &FileRecord) -> Vec<String> {
    let mut out = Vec::new();
    for field in record_text_fields(record) {
        tokenize_into(field, &mut out);
    }
    out
}

/// Whether a record contains every term in `terms` (tokens anywhere).
pub fn record_contains_all(record: &FileRecord, terms: &[String]) -> bool {
    let tokens = record_tokens(record);
    terms.iter().all(|t| tokens.iter().any(|tok| tok == t))
}

/// Whether a record contains at least one term of `terms`.
pub fn record_contains_any(record: &FileRecord, terms: &[String]) -> bool {
    let tokens = record_tokens(record);
    terms.iter().any(|t| tokens.iter().any(|tok| tok == t))
}

/// Whether a record contains `terms` as an adjacent token run inside a
/// single text field. Empty phrases match everything; one-term phrases
/// degrade to a plain contains check.
pub fn record_contains_phrase(record: &FileRecord, terms: &[String]) -> bool {
    if terms.is_empty() {
        return true;
    }
    let mut field_tokens = Vec::new();
    for field in record_text_fields(record) {
        field_tokens.clear();
        tokenize_into(field, &mut field_tokens);
        if field_tokens.len() >= terms.len()
            && field_tokens.windows(terms.len()).any(|w| w == terms)
        {
            return true;
        }
    }
    false
}

/// The BM25 inverse document frequency of a term with document frequency
/// `df` in a corpus of `n` documents. Always positive (the `1 +` variant),
/// so partial-match disjunctions never score negative.
pub fn bm25_idf(n: usize, df: usize) -> f64 {
    (1.0 + (n as f64 - df as f64 + 0.5) / (df as f64 + 0.5)).ln()
}

/// The BM25 contribution of one term occurrence: `idf · tf·(k1+1) /
/// (tf + k1·(1 − b + b·len/avgdl))`.
pub fn bm25_score(idf: f64, tf: u32, doc_len: u32, avg_doc_len: f64) -> f64 {
    let tf = tf as f64;
    let norm =
        if avg_doc_len > 0.0 { 1.0 - BM25_B + BM25_B * doc_len as f64 / avg_doc_len } else { 1.0 };
    idf * tf * (BM25_K1 + 1.0) / (tf + BM25_K1 * norm)
}

/// An upper bound on any document's BM25 contribution for a term: the
/// `tf → ∞`, `len → 0` limit `idf·(k1+1)`.
pub fn bm25_term_bound(idf: f64) -> f64 {
    idf * (BM25_K1 + 1.0)
}

/// An upper bound on the BM25 contribution of any posting in a block with
/// maximum term frequency `max_tf`: the shortest-possible-document score
/// at that tf.
pub fn bm25_block_bound(idf: f64, max_tf: u32) -> f64 {
    let tf = max_tf as f64;
    idf * tf * (BM25_K1 + 1.0) / (tf + BM25_K1 * (1.0 - BM25_B))
}

/// One entry in a term's posting list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Posting {
    /// The document.
    pub file: FileId,
    /// How many times the term occurs in it.
    pub tf: u32,
}

/// Skip metadata over one [`BLOCK`]-sized run of postings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Block {
    /// The last file id in the block (blocks partition the file-sorted
    /// posting list, so a seek binary-searches these).
    pub last_file: FileId,
    /// The largest tf in the block — the block's score-bound input.
    pub max_tf: u32,
}

/// A term's posting list plus its block skip metadata.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TermPostings {
    postings: Vec<Posting>,
    blocks: Vec<Block>,
}

impl TermPostings {
    /// Document frequency: how many files contain the term.
    pub fn df(&self) -> usize {
        self.postings.len()
    }

    /// The postings, sorted by file id.
    pub fn postings(&self) -> &[Posting] {
        &self.postings
    }

    /// The block skip metadata (one entry per [`BLOCK`] postings).
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// The largest tf across all postings of the term.
    pub fn max_tf(&self) -> u32 {
        self.blocks.iter().map(|b| b.max_tf).max().unwrap_or(0)
    }

    fn insert(&mut self, file: FileId, tf: u32) {
        match self.postings.binary_search_by_key(&file, |p| p.file) {
            Ok(pos) => {
                // A tf update leaves the partition boundaries alone — only
                // the touched block's max_tf can change.
                self.postings[pos].tf = tf;
                self.rebuild_block(pos / BLOCK);
            }
            Err(pos) => {
                // Everything before the insertion point keeps its chunk;
                // blocks from the touched one onward shift and rebuild.
                // Appends (the common case: file ids arrive in order) touch
                // only the final partial block, so a bulk build stays
                // linear instead of rescanning the whole list per posting.
                self.postings.insert(pos, Posting { file, tf });
                self.rebuild_blocks_from(pos / BLOCK);
            }
        }
    }

    /// Removes the file's posting; returns `true` when it was present.
    fn remove(&mut self, file: FileId) -> bool {
        match self.postings.binary_search_by_key(&file, |p| p.file) {
            Ok(pos) => {
                self.postings.remove(pos);
                self.rebuild_blocks_from(pos / BLOCK);
                true
            }
            Err(_) => false,
        }
    }

    fn rebuild_block(&mut self, block: usize) {
        let start = block * BLOCK;
        let end = (start + BLOCK).min(self.postings.len());
        let chunk = &self.postings[start..end];
        self.blocks[block] = Block {
            last_file: chunk.last().expect("block indices cover a posting").file,
            max_tf: chunk.iter().map(|p| p.tf).max().expect("block indices cover a posting"),
        };
    }

    fn rebuild_blocks_from(&mut self, first: usize) {
        self.blocks.truncate(first);
        for chunk in self.postings[first * BLOCK..].chunks(BLOCK) {
            self.blocks.push(Block {
                last_file: chunk.last().expect("chunks are non-empty").file,
                max_tf: chunk.iter().map(|p| p.tf).max().expect("chunks are non-empty"),
            });
        }
    }
}

/// A seekable read cursor over one term's postings, exposing the block
/// bounds a WAND-style search prunes with.
#[derive(Debug, Clone)]
pub struct PostingsCursor<'a> {
    term: &'a TermPostings,
    pos: usize,
}

impl<'a> PostingsCursor<'a> {
    /// A cursor at the start of the term's postings.
    pub fn new(term: &'a TermPostings) -> Self {
        PostingsCursor { term, pos: 0 }
    }

    /// The posting under the cursor, or `None` when exhausted.
    pub fn current(&self) -> Option<Posting> {
        self.term.postings.get(self.pos).copied()
    }

    /// Steps to the next posting.
    pub fn advance(&mut self) {
        self.pos += 1;
    }

    /// Positions the cursor at the first posting with `file ≥ target`
    /// (binary search over blocks, then within the block) and returns it.
    pub fn seek(&mut self, target: FileId) -> Option<Posting> {
        if let Some(p) = self.current() {
            if p.file >= target {
                return Some(p);
            }
        } else {
            return None;
        }
        // Find the first block whose last file reaches the target…
        let block = self.term.blocks.partition_point(|b| b.last_file < target);
        if block >= self.term.blocks.len() {
            self.pos = self.term.postings.len();
            return None;
        }
        // …then the first posting inside it.
        let start = (block * BLOCK).max(self.pos);
        let end = ((block + 1) * BLOCK).min(self.term.postings.len());
        let within = self.term.postings[start..end].partition_point(|p| p.file < target);
        self.pos = start + within;
        self.current()
    }

    /// The max-tf of the block the cursor is in (0 when exhausted).
    pub fn block_max_tf(&self) -> u32 {
        if self.is_exhausted() {
            return 0;
        }
        self.term.blocks.get(self.pos / BLOCK).map_or(0, |b| b.max_tf)
    }

    /// The last file id of the cursor's current block, if any.
    pub fn block_last_file(&self) -> Option<FileId> {
        if self.is_exhausted() {
            return None;
        }
        self.term.blocks.get(self.pos / BLOCK).map(|b| b.last_file)
    }

    /// Jumps past the cursor's current block. Returns the number of
    /// postings skipped without being examined.
    pub fn skip_block(&mut self) -> usize {
        let next = ((self.pos / BLOCK) + 1) * BLOCK;
        let end = next.min(self.term.postings.len());
        let skipped = end - self.pos;
        self.pos = end;
        skipped
    }

    /// Whether the cursor has run off the end of the postings.
    pub fn is_exhausted(&self) -> bool {
        self.pos >= self.term.postings.len()
    }

    /// The cursor's offset into the postings list — position deltas count
    /// the entries a bound-driven seek jumped over.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Postings not yet consumed (including the current one).
    pub fn remaining(&self) -> usize {
        self.term.postings.len().saturating_sub(self.pos)
    }
}

/// The inverted index of one ACG: term → [`TermPostings`], plus the
/// per-document token counts BM25 length normalization needs.
///
/// # Examples
///
/// ```
/// use propeller_index::{FileRecord, InvertedIndex};
/// use propeller_types::{FileId, InodeAttrs};
///
/// let mut inv = InvertedIndex::new();
/// let rec = FileRecord::new(FileId::new(1), InodeAttrs::default())
///     .with_keyword("report.pdf")
///     .with_content("quarterly sales report");
/// inv.insert(&rec);
/// assert_eq!(inv.df("report"), 1);
/// assert_eq!(inv.doc_len(FileId::new(1)), 5);
/// ```
/// Internally both maps are persistent B+-trees holding [`Arc`]-wrapped
/// values, so cloning the index is O(1) and a mutation path-copies only
/// the touched spine plus the touched term's postings — what lets an
/// epoch publish share every untouched posting list with its predecessor.
#[derive(Debug, Clone, Default)]
pub struct InvertedIndex {
    terms: BPlusTree<String, Arc<TermPostings>>,
    doc_len: BPlusTree<FileId, u32>,
    total_tokens: u64,
}

/// Content equality (what the tests' "empty again" style assertions
/// need): the underlying trees may differ structurally after a lazy
/// removal even when they hold identical entries, so equality walks the
/// sorted entry streams instead of deriving off the tree shape.
impl PartialEq for InvertedIndex {
    fn eq(&self, other: &Self) -> bool {
        self.total_tokens == other.total_tokens
            && self.terms.len() == other.terms.len()
            && self.doc_len.len() == other.doc_len.len()
            && self.doc_len.iter().eq(other.doc_len.iter())
            && self
                .terms
                .iter()
                .zip(other.terms.iter())
                .all(|((ka, va), (kb, vb))| ka == kb && va == vb)
    }
}

impl InvertedIndex {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Indexes a record's tokens. The caller removes any previous record
    /// for the same file first (the group's upsert path does).
    pub fn insert(&mut self, record: &FileRecord) {
        let tokens = record_tokens(record);
        if tokens.is_empty() {
            return;
        }
        let mut counts: HashMap<&str, u32> = HashMap::new();
        for token in &tokens {
            *counts.entry(token.as_str()).or_insert(0) += 1;
        }
        for (token, tf) in counts {
            match self.terms.get_mut(token) {
                Some(postings) => Arc::make_mut(postings).insert(record.file, tf),
                None => {
                    let mut postings = TermPostings::default();
                    postings.insert(record.file, tf);
                    self.terms.insert(token.to_owned(), Arc::new(postings));
                }
            }
        }
        if let Some(old) = self.doc_len.insert(record.file, tokens.len() as u32) {
            self.total_tokens -= old as u64;
        }
        self.total_tokens += tokens.len() as u64;
    }

    /// Removes a record's tokens (the record as it was indexed).
    pub fn remove(&mut self, record: &FileRecord) {
        let tokens = record_tokens(record);
        if tokens.is_empty() {
            return;
        }
        let mut seen: Vec<&str> = tokens.iter().map(String::as_str).collect();
        seen.sort_unstable();
        seen.dedup();
        for token in seen {
            if let Some(postings) = self.terms.get_mut(token) {
                let postings = Arc::make_mut(postings);
                postings.remove(record.file);
                if postings.df() == 0 {
                    self.terms.remove(token);
                }
            }
        }
        if let Some(len) = self.doc_len.remove(&record.file) {
            self.total_tokens -= len as u64;
        }
    }

    /// The postings of a term, if any document contains it.
    pub fn term(&self, term: &str) -> Option<&TermPostings> {
        self.terms.get(term).map(Arc::as_ref)
    }

    /// Document frequency of a term (0 when absent).
    pub fn df(&self, term: &str) -> usize {
        self.terms.get(term).map_or(0, |p| p.df())
    }

    /// Number of documents with at least one token — BM25's `N`.
    pub fn doc_count(&self) -> usize {
        self.doc_len.len()
    }

    /// Token count of a document (0 when absent or token-free).
    pub fn doc_len(&self, file: FileId) -> u32 {
        self.doc_len.get(&file).copied().unwrap_or(0)
    }

    /// Returns `true` when no document is indexed.
    fn no_docs(&self) -> bool {
        self.doc_len.is_empty()
    }

    /// Mean document token count (0 for an empty index).
    pub fn avg_doc_len(&self) -> f64 {
        if self.no_docs() {
            0.0
        } else {
            self.total_tokens as f64 / self.doc_len.len() as f64
        }
    }

    /// Number of distinct terms.
    pub fn term_count(&self) -> usize {
        self.terms.len()
    }

    /// The BM25 idf of a term against this corpus.
    pub fn idf(&self, term: &str) -> f64 {
        bm25_idf(self.doc_count(), self.df(term))
    }

    /// The full BM25 score of a document for a conjunction/disjunction of
    /// terms — the scalar the executor ranks by. Terms the document lacks
    /// contribute zero.
    pub fn score_doc(&self, file: FileId, terms: &[String]) -> f64 {
        let avgdl = self.avg_doc_len();
        let len = self.doc_len(file);
        let mut score = 0.0;
        for term in terms {
            if let Some(postings) = self.terms.get(term) {
                if let Ok(pos) = postings.postings.binary_search_by_key(&file, |p| p.file) {
                    score += bm25_score(self.idf(term), postings.postings[pos].tf, len, avgdl);
                }
            }
        }
        score
    }

    /// A deterministic fingerprint of the postings and df tables — what
    /// crash-recovery tests compare across a rebuild: every term with its
    /// df and full `(file, tf)` posting list, sorted by term.
    pub fn fingerprint(&self) -> Vec<(String, Vec<(FileId, u32)>)> {
        // The term tree iterates in sorted order already.
        self.terms
            .iter()
            .map(|(t, p)| (t.clone(), p.postings.iter().map(|p| (p.file, p.tf)).collect()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use propeller_types::InodeAttrs;

    fn rec(file: u64, keywords: &[&str], content: Option<&str>) -> FileRecord {
        let mut r = FileRecord::new(FileId::new(file), InodeAttrs::default());
        for kw in keywords {
            r = r.with_keyword(*kw);
        }
        if let Some(c) = content {
            r = r.with_content(c);
        }
        r
    }

    #[test]
    fn tokenize_lowercases_and_splits_on_non_alphanumerics() {
        assert_eq!(tokenize("Hello, World!"), ["hello", "world"]);
        assert_eq!(tokenize("a_b-c.d/e"), ["a", "b", "c", "d", "e"]);
        assert_eq!(tokenize("  "), Vec::<String>::new());
        assert_eq!(tokenize("x2y"), ["x2y"]);
    }

    #[test]
    fn incremental_block_maintenance_matches_a_full_rebuild() {
        // Deterministic pseudo-random interleaving of out-of-order inserts,
        // tf updates and removes; after every mutation the incrementally
        // maintained blocks must equal a from-scratch partition.
        let mut term = TermPostings::default();
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        for _ in 0..600 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let file = FileId::new(state >> 56); // 0..256: collisions force updates
            let tf = ((state >> 48) & 0x7) as u32 + 1;
            if state & 0xF == 0 {
                term.remove(file);
            } else {
                term.insert(file, tf);
            }
            let mut full = TermPostings { postings: term.postings.clone(), blocks: Vec::new() };
            full.rebuild_blocks_from(0);
            assert_eq!(term.blocks, full.blocks, "after mutating file {file}");
        }
        assert!(term.blocks.len() > 1, "corpus must span multiple blocks");
    }

    #[test]
    fn insert_builds_tf_and_df() {
        let mut inv = InvertedIndex::new();
        inv.insert(&rec(1, &["report"], Some("sales report report")));
        inv.insert(&rec(2, &["memo"], Some("sales memo")));
        assert_eq!(inv.df("report"), 1);
        assert_eq!(inv.df("sales"), 2);
        assert_eq!(inv.df("missing"), 0);
        let p = inv.term("report").unwrap();
        assert_eq!(p.postings(), &[Posting { file: FileId::new(1), tf: 3 }]);
        assert_eq!(inv.doc_len(FileId::new(1)), 4);
        assert_eq!(inv.doc_count(), 2);
        assert!((inv.avg_doc_len() - 3.5).abs() < 1e-9);
    }

    #[test]
    fn remove_clears_postings_and_lengths() {
        let mut inv = InvertedIndex::new();
        let a = rec(1, &["alpha beta"], None);
        let b = rec(2, &["beta gamma"], None);
        inv.insert(&a);
        inv.insert(&b);
        inv.remove(&a);
        assert_eq!(inv.df("alpha"), 0);
        assert_eq!(inv.df("beta"), 1);
        assert_eq!(inv.doc_count(), 1);
        inv.remove(&b);
        assert_eq!(inv, InvertedIndex::new(), "empty again");
        assert_eq!(inv.term_count(), 0);
    }

    #[test]
    fn postings_stay_sorted_under_out_of_order_inserts() {
        let mut inv = InvertedIndex::new();
        for file in [5u64, 1, 9, 3, 7] {
            inv.insert(&rec(file, &["zed"], None));
        }
        let files: Vec<u64> =
            inv.term("zed").unwrap().postings().iter().map(|p| p.file.raw()).collect();
        assert_eq!(files, [1, 3, 5, 7, 9]);
    }

    #[test]
    fn blocks_cover_postings_with_max_tf() {
        let mut inv = InvertedIndex::new();
        for file in 0..150u64 {
            // File 100 repeats the term, so its block carries max_tf 3.
            let content = if file == 100 { "term term term" } else { "term" };
            inv.insert(&rec(file, &[], Some(content)));
        }
        let tp = inv.term("term").unwrap();
        assert_eq!(tp.df(), 150);
        assert_eq!(tp.blocks().len(), 3, "150 postings in 64-blocks");
        assert_eq!(tp.blocks()[0].max_tf, 1);
        assert_eq!(tp.blocks()[1].max_tf, 3, "file 100 lives in the second block");
        assert_eq!(tp.blocks()[2].last_file, FileId::new(149));
        assert_eq!(tp.max_tf(), 3);
    }

    #[test]
    fn cursor_seeks_across_blocks() {
        let mut inv = InvertedIndex::new();
        for file in (0..300u64).map(|i| i * 2) {
            inv.insert(&rec(file, &["even"], None));
        }
        let tp = inv.term("even").unwrap();
        let mut cur = PostingsCursor::new(tp);
        assert_eq!(cur.current().unwrap().file, FileId::new(0));
        assert_eq!(cur.seek(FileId::new(101)).unwrap().file, FileId::new(102));
        assert_eq!(cur.seek(FileId::new(102)).unwrap().file, FileId::new(102), "seek is stable");
        assert_eq!(cur.seek(FileId::new(598)).unwrap().file, FileId::new(598));
        assert!(cur.seek(FileId::new(599)).is_none());
        assert!(cur.is_exhausted());
    }

    #[test]
    fn cursor_skip_block_jumps_to_the_next_boundary() {
        let mut inv = InvertedIndex::new();
        for file in 0..130u64 {
            inv.insert(&rec(file, &["t"], None));
        }
        let mut cur = PostingsCursor::new(inv.term("t").unwrap());
        cur.seek(FileId::new(10));
        let skipped = cur.skip_block();
        assert_eq!(skipped, BLOCK - 10);
        assert_eq!(cur.current().unwrap().file, FileId::new(BLOCK as u64));
        cur.skip_block();
        assert_eq!(cur.current().unwrap().file, FileId::new(2 * BLOCK as u64));
        assert_eq!(cur.skip_block(), 2, "the last partial block");
        assert!(cur.is_exhausted());
        assert_eq!(cur.block_max_tf(), 0);
    }

    #[test]
    fn phrase_matching_is_per_field_adjacent() {
        let r = rec(1, &["annual sales report", "budget"], Some("sales figures"));
        let terms = |s: &str| tokenize(s);
        assert!(record_contains_phrase(&r, &terms("sales report")));
        assert!(record_contains_phrase(&r, &terms("annual sales")));
        assert!(!record_contains_phrase(&r, &terms("report budget")), "never across fields");
        assert!(!record_contains_phrase(&r, &terms("annual report")), "must be adjacent");
        assert!(record_contains_phrase(&r, &terms("budget")));
        assert!(record_contains_phrase(&r, &[]));
        assert!(record_contains_all(&r, &terms("report figures")));
        assert!(!record_contains_all(&r, &terms("report missing")));
        assert!(record_contains_any(&r, &terms("missing figures")));
        assert!(!record_contains_any(&r, &terms("missing absent")));
    }

    #[test]
    fn bm25_rewards_tf_and_penalizes_df_and_length() {
        let n = 1000;
        let rare = bm25_idf(n, 2);
        let common = bm25_idf(n, 800);
        assert!(rare > common);
        assert!(common > 0.0, "the 1+ variant never goes negative");
        let s1 = bm25_score(rare, 1, 10, 10.0);
        let s3 = bm25_score(rare, 3, 10, 10.0);
        assert!(s3 > s1, "more occurrences score higher");
        let long = bm25_score(rare, 1, 100, 10.0);
        assert!(long < s1, "longer documents score lower");
        assert!(bm25_term_bound(rare) >= bm25_block_bound(rare, 1_000_000));
        assert!(bm25_block_bound(rare, 3) >= s3, "block bound dominates any member score");
        assert!(bm25_block_bound(rare, 1) >= s1);
    }

    #[test]
    fn score_doc_sums_matching_terms_only() {
        let mut inv = InvertedIndex::new();
        inv.insert(&rec(1, &[], Some("alpha beta")));
        inv.insert(&rec(2, &[], Some("alpha")));
        let both = inv.score_doc(FileId::new(1), &tokenize("alpha beta"));
        let one = inv.score_doc(FileId::new(2), &tokenize("alpha beta"));
        assert!(both > one);
        assert_eq!(inv.score_doc(FileId::new(3), &tokenize("alpha")), 0.0);
    }

    #[test]
    fn reinsert_replaces_tf_and_length() {
        let mut inv = InvertedIndex::new();
        inv.insert(&rec(1, &[], Some("a a a b")));
        // The group removes the old record before re-inserting; a direct
        // re-insert must still leave consistent tf/length state.
        inv.insert(&rec(1, &[], Some("a c")));
        assert_eq!(inv.term("a").unwrap().postings()[0].tf, 1);
        assert_eq!(inv.doc_len(FileId::new(1)), 2);
        assert_eq!(inv.doc_count(), 1);
        assert!((inv.avg_doc_len() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn fingerprint_is_deterministic_and_complete() {
        let mut a = InvertedIndex::new();
        let mut b = InvertedIndex::new();
        for file in [3u64, 1, 2] {
            a.insert(&rec(file, &["x y"], None));
        }
        for file in [1u64, 2, 3] {
            b.insert(&rec(file, &["x y"], None));
        }
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint().len(), 2);
        assert_eq!(a.fingerprint()[0].1.len(), 3);
    }
}
