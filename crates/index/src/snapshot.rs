//! Durable ACG snapshots — the checkpoint half of the durability layer.
//!
//! A snapshot serializes one ACG's **committed** state (its records plus
//! the named-index table; the hash / B+-tree / K-D structures are rebuilt
//! from those on load) into a single checksummed, versioned file stamped
//! with the WAL LSN it covers. Files are written to a temp name and
//! atomically renamed into place, so a crash mid-snapshot leaves either
//! the previous snapshot set or the new one — never a half-written file
//! that recovery could mistake for the real thing (and if the rename *did*
//! race a crash, the CRC rejects the torn payload and recovery falls back
//! to an older snapshot or a full WAL replay).
//!
//! ## File layout
//!
//! ```text
//! acg-<acg>-<lsn>.snap :=
//!   [magic "PSNP" 4][version u32 LE][payload_crc u32 LE][payload_len u64 LE]
//!   payload :=
//!     [acg u64][lsn u64]
//!     [nspecs u32] { [name str][kind u8][nattrs u32][attr]... }
//!     [nrecords u64] { record }...          // the ops.rs record codec
//! ```
//!
//! The LSN in the *name* is what recovery sorts by (newest first); the LSN
//! in the *payload* is the authoritative anchor — a renamed or copied file
//! cannot silently claim coverage it does not have, because the two are
//! cross-checked on load.

use std::fs::{self, File};
use std::io::Write;
use std::path::{Path, PathBuf};

use bytes::{BufMut, BytesMut};
use propeller_types::{AcgId, AttrName, Error, Result};

use crate::group::{IndexKind, IndexSpec};
use crate::ops::FileRecord;
use crate::ops::{
    decode_record, encode_record_into, put_str, take_str, take_u32, take_u64, take_u8,
};
use crate::wal::crc32;

/// Magic prefix of a snapshot file.
const MAGIC: [u8; 4] = *b"PSNP";
/// On-disk snapshot format version.
const VERSION: u32 = 1;
/// Fixed header: magic + version + payload CRC + payload length.
const HEADER_LEN: usize = 4 + 4 + 4 + 8;

/// A decoded snapshot: everything needed to rebuild an
/// [`crate::AcgIndexGroup`]'s committed state.
#[derive(Debug)]
pub struct SnapshotData {
    /// The ACG this snapshot belongs to.
    pub acg: AcgId,
    /// The WAL LSN this snapshot covers: every frame with LSN `≤ lsn` is
    /// reflected in `records`; recovery replays only the suffix.
    pub lsn: u64,
    /// The named-index table at snapshot time (defaults included).
    pub specs: Vec<IndexSpec>,
    /// Every committed record.
    pub records: Vec<FileRecord>,
}

/// The canonical file name of a snapshot of `acg` covering `lsn`.
pub fn snapshot_file_name(acg: AcgId, lsn: u64) -> String {
    format!("acg-{}-{}.snap", acg.raw(), lsn)
}

/// Parses a snapshot file name back into `(acg, lsn)`; `None` for files
/// that are not snapshots (temp files included).
pub fn parse_snapshot_name(name: &str) -> Option<(AcgId, u64)> {
    let rest = name.strip_prefix("acg-")?.strip_suffix(".snap")?;
    let (acg, lsn) = rest.rsplit_once('-')?;
    Some((AcgId::new(acg.parse().ok()?), lsn.parse().ok()?))
}

/// The canonical file name of an ACG's WAL, kept beside the snapshot
/// naming so the writer ([`crate::Wal::open`] callers) and the discovery
/// scan parse one format.
pub fn wal_file_name(acg: AcgId) -> String {
    format!("acg-{}.wal", acg.raw())
}

/// Parses a WAL file name back into its ACG; `None` for non-WAL files
/// (the `.wal.tmp` staging files of [`crate::Wal::truncate_upto`]
/// included).
pub fn parse_wal_name(name: &str) -> Option<AcgId> {
    let raw = name.strip_prefix("acg-")?.strip_suffix(".wal")?;
    Some(AcgId::new(raw.parse().ok()?))
}

/// Lists the snapshot files of `acg` under `dir`, newest (highest LSN)
/// first. Unreadable directories list as empty — recovery then falls back
/// to a full WAL replay.
pub fn list_snapshots(dir: &Path, acg: AcgId) -> Vec<(u64, PathBuf)> {
    let mut found: Vec<(u64, PathBuf)> = Vec::new();
    let Ok(entries) = fs::read_dir(dir) else { return found };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some((file_acg, lsn)) = parse_snapshot_name(name) {
            if file_acg == acg {
                found.push((lsn, entry.path()));
            }
        }
    }
    found.sort_by_key(|&(lsn, _)| std::cmp::Reverse(lsn));
    found
}

/// The ACG ids that have at least one snapshot file under `dir`.
pub fn snapshot_acgs(dir: &Path) -> Vec<AcgId> {
    let mut acgs: Vec<AcgId> = Vec::new();
    let Ok(entries) = fs::read_dir(dir) else { return acgs };
    for entry in entries.flatten() {
        if let Some((acg, _)) = entry.file_name().to_str().and_then(parse_snapshot_name) {
            acgs.push(acg);
        }
    }
    acgs.sort_unstable();
    acgs.dedup();
    acgs
}

fn encode_attr(buf: &mut BytesMut, attr: &AttrName) {
    // A tagged encoding rather than the display string: a custom attribute
    // whose name collides with a builtin ("size") must round-trip as
    // custom, which string parsing cannot guarantee.
    match attr {
        AttrName::Size => buf.put_u8(0),
        AttrName::Mtime => buf.put_u8(1),
        AttrName::Ctime => buf.put_u8(2),
        AttrName::Uid => buf.put_u8(3),
        AttrName::Gid => buf.put_u8(4),
        AttrName::Mode => buf.put_u8(5),
        AttrName::Nlink => buf.put_u8(6),
        AttrName::Keyword => buf.put_u8(7),
        AttrName::Custom(name) => {
            buf.put_u8(8);
            put_str(buf, name);
        }
    }
}

fn decode_attr(data: &mut &[u8]) -> Result<AttrName> {
    Ok(match take_u8(data)? {
        0 => AttrName::Size,
        1 => AttrName::Mtime,
        2 => AttrName::Ctime,
        3 => AttrName::Uid,
        4 => AttrName::Gid,
        5 => AttrName::Mode,
        6 => AttrName::Nlink,
        7 => AttrName::Keyword,
        8 => AttrName::Custom(take_str(data)?),
        other => return Err(Error::Corrupt(format!("unknown attr tag {other}"))),
    })
}

fn encode_spec(buf: &mut BytesMut, spec: &IndexSpec) {
    put_str(buf, &spec.name);
    buf.put_u8(match spec.kind {
        IndexKind::BTree => 0,
        IndexKind::Hash => 1,
        IndexKind::Kd => 2,
        IndexKind::Inverted => 3,
    });
    buf.put_u32_le(spec.attrs.len() as u32);
    for attr in &spec.attrs {
        encode_attr(buf, attr);
    }
}

fn decode_spec(data: &mut &[u8]) -> Result<IndexSpec> {
    let name = take_str(data)?;
    let kind = match take_u8(data)? {
        0 => IndexKind::BTree,
        1 => IndexKind::Hash,
        2 => IndexKind::Kd,
        3 => IndexKind::Inverted,
        other => return Err(Error::Corrupt(format!("unknown index kind tag {other}"))),
    };
    let nattrs = take_u32(data)? as usize;
    let mut attrs = Vec::with_capacity(nattrs.min(64));
    for _ in 0..nattrs {
        attrs.push(decode_attr(data)?);
    }
    Ok(IndexSpec { name, kind, attrs })
}

/// Encodes a named-index spec with the snapshot codec. Public so the
/// cluster control plane can persist its index-spec registry with the
/// exact bytes the data-plane snapshot files use.
pub fn encode_spec_into(buf: &mut BytesMut, spec: &IndexSpec) {
    encode_spec(buf, spec);
}

/// Decodes a spec written by [`encode_spec_into`] (or found inside a
/// snapshot payload), advancing the cursor past it.
///
/// # Errors
///
/// Returns [`Error::Corrupt`] on a truncated or mistagged spec.
pub fn decode_spec_from(data: &mut &[u8]) -> Result<IndexSpec> {
    decode_spec(data)
}

/// Writes a snapshot of `acg` covering `lsn` to `dir`, returning the final
/// path. The payload is staged in a `.tmp` file, fsynced, and atomically
/// renamed into the canonical name; the directory is fsynced best-effort
/// so the rename itself survives a crash.
///
/// # Errors
///
/// Returns [`Error::Io`] on any file-system failure; the temp file is
/// removed best-effort on the error path.
pub fn write_snapshot<'a>(
    dir: &Path,
    acg: AcgId,
    lsn: u64,
    specs: &[IndexSpec],
    records: impl Iterator<Item = &'a FileRecord>,
) -> Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let mut payload = BytesMut::new();
    payload.put_u64_le(acg.raw());
    payload.put_u64_le(lsn);
    payload.put_u32_le(specs.len() as u32);
    for spec in specs {
        encode_spec(&mut payload, spec);
    }
    let count_pos = payload.len();
    payload.put_u64_le(0); // record count, patched below
    let mut count: u64 = 0;
    for record in records {
        encode_record_into(&mut payload, record);
        count += 1;
    }
    payload[count_pos..count_pos + 8].copy_from_slice(&count.to_le_bytes());

    let mut header = [0u8; HEADER_LEN];
    header[0..4].copy_from_slice(&MAGIC);
    header[4..8].copy_from_slice(&VERSION.to_le_bytes());
    header[8..12].copy_from_slice(&crc32(&payload).to_le_bytes());
    header[12..20].copy_from_slice(&(payload.len() as u64).to_le_bytes());

    let path = dir.join(snapshot_file_name(acg, lsn));
    let tmp = dir.join(format!("{}.tmp", snapshot_file_name(acg, lsn)));
    let write = (|| -> Result<()> {
        let mut out = File::create(&tmp)?;
        out.write_all(&header)?;
        out.write_all(&payload)?;
        out.sync_all()?;
        fs::rename(&tmp, &path)?;
        Ok(())
    })();
    if let Err(e) = write {
        let _ = fs::remove_file(&tmp);
        return Err(e);
    }
    // Make the rename durable: fsync the directory (best-effort — not
    // every platform lets a directory be opened as a file).
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(path)
}

/// Reads and validates a snapshot file.
///
/// # Errors
///
/// Returns [`Error::SnapshotCorrupt`] when the file fails any validation
/// (magic, version, CRC, truncated or trailing payload, or an LSN/ACG that
/// contradicts the file name) and [`Error::Io`] when it cannot be read at
/// all. Callers treat both as "skip this file and fall back".
pub fn read_snapshot(path: &Path) -> Result<SnapshotData> {
    let corrupt =
        |reason: String| Error::SnapshotCorrupt { path: path.display().to_string(), reason };
    let raw = fs::read(path)?;
    if raw.len() < HEADER_LEN || raw[0..4] != MAGIC {
        return Err(corrupt("missing or truncated header".into()));
    }
    let version = u32::from_le_bytes(raw[4..8].try_into().expect("4 bytes"));
    if version != VERSION {
        return Err(corrupt(format!("unsupported version {version}")));
    }
    let crc = u32::from_le_bytes(raw[8..12].try_into().expect("4 bytes"));
    let len = u64::from_le_bytes(raw[12..20].try_into().expect("8 bytes")) as usize;
    let payload = &raw[HEADER_LEN..];
    if payload.len() != len {
        return Err(corrupt(format!("payload is {} bytes, header promised {len}", payload.len())));
    }
    if crc32(payload) != crc {
        return Err(corrupt("payload crc mismatch".into()));
    }
    (|| -> Result<SnapshotData> {
        let mut cursor = payload;
        let acg = AcgId::new(take_u64(&mut cursor)?);
        let lsn = take_u64(&mut cursor)?;
        let nspecs = take_u32(&mut cursor)? as usize;
        let mut specs = Vec::with_capacity(nspecs.min(256));
        for _ in 0..nspecs {
            specs.push(decode_spec(&mut cursor)?);
        }
        let nrecords = take_u64(&mut cursor)? as usize;
        let mut records = Vec::with_capacity(nrecords.min(1 << 20));
        for _ in 0..nrecords {
            records.push(decode_record(&mut cursor)?);
        }
        if !cursor.is_empty() {
            return Err(Error::Corrupt(format!("{} trailing payload bytes", cursor.len())));
        }
        if let Some((name_acg, name_lsn)) =
            path.file_name().and_then(|n| n.to_str()).and_then(parse_snapshot_name)
        {
            if name_acg != acg || name_lsn != lsn {
                return Err(Error::Corrupt(format!(
                    "file name claims acg {} lsn {}, payload says acg {} lsn {}",
                    name_acg.raw(),
                    name_lsn,
                    acg.raw(),
                    lsn
                )));
            }
        }
        Ok(SnapshotData { acg, lsn, specs, records })
    })()
    .map_err(|e| match e {
        Error::SnapshotCorrupt { .. } => e,
        other => corrupt(other.to_string()),
    })
}

/// Removes snapshot files of `acg` older than `keep_from_lsn` (exclusive),
/// plus any stale temp files. Returns how many files were removed.
pub fn prune_snapshots(dir: &Path, acg: AcgId, keep_from_lsn: u64) -> usize {
    let mut removed = 0;
    for (lsn, path) in list_snapshots(dir, acg) {
        if lsn < keep_from_lsn && fs::remove_file(&path).is_ok() {
            removed += 1;
        }
    }
    if let Ok(entries) = fs::read_dir(dir) {
        for entry in entries.flatten() {
            if entry.file_name().to_string_lossy().ends_with(".snap.tmp") {
                let _ = fs::remove_file(entry.path());
            }
        }
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use propeller_types::{FileId, InodeAttrs, Value};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("propeller-snap-{}-{}", std::process::id(), tag));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_records(n: u64) -> Vec<FileRecord> {
        (0..n)
            .map(|i| {
                FileRecord::new(FileId::new(i), InodeAttrs::builder().size(i * 7).build())
                    .with_keyword(format!("kw{}", i % 3))
                    .with_custom("energy", Value::F64(i as f64 * -0.5))
            })
            .collect()
    }

    fn sample_specs() -> Vec<IndexSpec> {
        vec![
            IndexSpec::btree("size_btree", AttrName::Size),
            IndexSpec::hash("keyword_hash", AttrName::Keyword),
            IndexSpec::kd("inode_kd", vec![AttrName::Size, AttrName::Mtime]),
            IndexSpec::btree("shadow_size", AttrName::custom("size")),
        ]
    }

    #[test]
    fn snapshot_round_trips() {
        let dir = temp_dir("round-trip");
        let records = sample_records(50);
        let specs = sample_specs();
        let path = write_snapshot(&dir, AcgId::new(7), 42, &specs, records.iter()).unwrap();
        let data = read_snapshot(&path).unwrap();
        assert_eq!(data.acg, AcgId::new(7));
        assert_eq!(data.lsn, 42);
        assert_eq!(data.specs, specs);
        assert_eq!(data.records, records);
        // The custom attr shadowing a builtin name survived as custom.
        assert_eq!(data.specs[3].attrs[0], AttrName::custom("size"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_names_parse_and_list_newest_first() {
        let dir = temp_dir("names");
        assert_eq!(parse_snapshot_name("acg-3-99.snap"), Some((AcgId::new(3), 99)));
        assert_eq!(parse_snapshot_name("acg-3-99.snap.tmp"), None);
        assert_eq!(parse_snapshot_name("acg-3.wal"), None);
        assert_eq!(parse_wal_name(&wal_file_name(AcgId::new(3))), Some(AcgId::new(3)));
        assert_eq!(parse_wal_name("acg-3.wal.tmp"), None);
        assert_eq!(parse_wal_name("acg-3-99.snap"), None);
        for lsn in [5u64, 30, 12] {
            write_snapshot(&dir, AcgId::new(1), lsn, &[], [].iter()).unwrap();
        }
        write_snapshot(&dir, AcgId::new(2), 100, &[], [].iter()).unwrap();
        let listed: Vec<u64> =
            list_snapshots(&dir, AcgId::new(1)).into_iter().map(|(l, _)| l).collect();
        assert_eq!(listed, vec![30, 12, 5]);
        assert_eq!(snapshot_acgs(&dir), vec![AcgId::new(1), AcgId::new(2)]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_is_detected() {
        let dir = temp_dir("corrupt");
        let records = sample_records(20);
        let path = write_snapshot(&dir, AcgId::new(1), 9, &sample_specs(), records.iter()).unwrap();
        let good = fs::read(&path).unwrap();
        // Truncated payload.
        fs::write(&path, &good[..good.len() - 3]).unwrap();
        assert!(matches!(read_snapshot(&path), Err(Error::SnapshotCorrupt { .. })));
        // Flipped payload byte.
        let mut flipped = good.clone();
        let ix = flipped.len() - 5;
        flipped[ix] ^= 0xFF;
        fs::write(&path, &flipped).unwrap();
        assert!(matches!(read_snapshot(&path), Err(Error::SnapshotCorrupt { .. })));
        // Wrong magic.
        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        fs::write(&path, &bad_magic).unwrap();
        assert!(matches!(read_snapshot(&path), Err(Error::SnapshotCorrupt { .. })));
        // A renamed file claiming a different LSN is rejected too.
        fs::write(&path, &good).unwrap();
        let lie = dir.join(snapshot_file_name(AcgId::new(1), 999));
        fs::rename(&path, &lie).unwrap();
        assert!(matches!(read_snapshot(&lie), Err(Error::SnapshotCorrupt { .. })));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn prune_keeps_the_retained_window() {
        let dir = temp_dir("prune");
        for lsn in [10u64, 20, 30] {
            write_snapshot(&dir, AcgId::new(1), lsn, &[], [].iter()).unwrap();
        }
        fs::write(dir.join("acg-1-99.snap.tmp"), b"stale").unwrap();
        let removed = prune_snapshots(&dir, AcgId::new(1), 20);
        assert_eq!(removed, 1, "only the lsn-10 file falls outside the window");
        let listed: Vec<u64> =
            list_snapshots(&dir, AcgId::new(1)).into_iter().map(|(l, _)| l).collect();
        assert_eq!(listed, vec![30, 20]);
        assert!(!dir.join("acg-1-99.snap.tmp").exists(), "stale temp files are swept");
        let _ = fs::remove_dir_all(&dir);
    }
}
