//! A from-scratch hash index (separate chaining, power-of-two buckets).
//!
//! This is the exact-match index kind Propeller offers per ACG (paper §IV).
//! The implementation is a classic separate-chaining table with a SipHash-
//! free FNV-1a hasher (deterministic across runs, which keeps modeled-mode
//! experiments reproducible) and amortised O(1) operations via load-factor
//! driven doubling.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};

const INITIAL_BUCKETS: usize = 16;
const MAX_LOAD_NUM: usize = 3; // resize when len > buckets * 3/4
const MAX_LOAD_DEN: usize = 4;

/// Deterministic FNV-1a, so bucket layouts are stable across runs and
/// processes (important for reproducible experiment traces).
#[derive(Debug, Clone)]
struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
}

/// A hash map built on separate chaining.
///
/// # Examples
///
/// ```
/// use propeller_index::HashIndex;
///
/// let mut idx = HashIndex::new();
/// idx.insert("alpha", 1);
/// idx.insert("beta", 2);
/// assert_eq!(idx.get(&"alpha"), Some(&1));
/// assert_eq!(idx.remove(&"beta"), Some(2));
/// assert_eq!(idx.len(), 1);
/// ```
#[derive(Clone)]
pub struct HashIndex<K, V> {
    buckets: Vec<Vec<(K, V)>>,
    len: usize,
}

impl<K: Hash + Eq, V> Default for HashIndex<K, V> {
    fn default() -> Self {
        HashIndex::new()
    }
}

impl<K: Hash + Eq, V> HashIndex<K, V> {
    /// Creates an empty index.
    pub fn new() -> Self {
        HashIndex { buckets: Vec::new(), len: 0 }
    }

    /// Creates an empty index pre-sized for roughly `capacity` entries.
    pub fn with_capacity(capacity: usize) -> Self {
        let buckets =
            (capacity * MAX_LOAD_DEN / MAX_LOAD_NUM + 1).next_power_of_two().max(INITIAL_BUCKETS);
        HashIndex { buckets: (0..buckets).map(|_| Vec::new()).collect(), len: 0 }
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when the index has no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of buckets currently allocated (for cost models).
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    #[inline]
    fn hash_of<Q: Hash + ?Sized>(key: &Q) -> u64 {
        let mut h = Fnv1a::default();
        key.hash(&mut h);
        h.finish()
    }

    #[inline]
    fn bucket_of<Q: Hash + ?Sized>(&self, key: &Q) -> usize {
        (Self::hash_of(key) as usize) & (self.buckets.len() - 1)
    }

    fn maybe_grow(&mut self) {
        if self.buckets.is_empty() {
            self.buckets = (0..INITIAL_BUCKETS).map(|_| Vec::new()).collect();
            return;
        }
        if self.len * MAX_LOAD_DEN > self.buckets.len() * MAX_LOAD_NUM {
            let new_size = self.buckets.len() * 2;
            let old =
                std::mem::replace(&mut self.buckets, (0..new_size).map(|_| Vec::new()).collect());
            for bucket in old {
                for (k, v) in bucket {
                    let b = (Self::hash_of(&k) as usize) & (new_size - 1);
                    self.buckets[b].push((k, v));
                }
            }
        }
    }

    /// Inserts `key → value`, returning the previous value if present.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        self.maybe_grow();
        let b = self.bucket_of(&key);
        for slot in &mut self.buckets[b] {
            if slot.0 == key {
                return Some(std::mem::replace(&mut slot.1, value));
            }
        }
        self.buckets[b].push((key, value));
        self.len += 1;
        None
    }

    /// Looks up `key`.
    #[inline]
    pub fn get<Q>(&self, key: &Q) -> Option<&V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        if self.buckets.is_empty() {
            return None;
        }
        let b = self.bucket_of(key);
        self.buckets[b].iter().find(|(k, _)| k.borrow() == key).map(|(_, v)| v)
    }

    /// Mutable lookup.
    pub fn get_mut<Q>(&mut self, key: &Q) -> Option<&mut V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        if self.buckets.is_empty() {
            return None;
        }
        let b = self.bucket_of(key);
        self.buckets[b].iter_mut().find(|(k, _)| k.borrow() == key).map(|(_, v)| v)
    }

    /// Returns the value for `key`, inserting `default()` first if absent.
    pub fn get_or_insert_with<F: FnOnce() -> V>(&mut self, key: K, default: F) -> &mut V {
        self.maybe_grow();
        let b = self.bucket_of(&key);
        // Two-phase to satisfy the borrow checker.
        if let Some(pos) = self.buckets[b].iter().position(|(k, _)| *k == key) {
            return &mut self.buckets[b][pos].1;
        }
        self.buckets[b].push((key, default()));
        self.len += 1;
        let last = self.buckets[b].len() - 1;
        &mut self.buckets[b][last].1
    }

    /// Returns `true` when `key` is present.
    pub fn contains_key<Q>(&self, key: &Q) -> bool
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.get(key).is_some()
    }

    /// Removes `key`, returning its value.
    pub fn remove<Q>(&mut self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        if self.buckets.is_empty() {
            return None;
        }
        let b = self.bucket_of(key);
        let pos = self.buckets[b].iter().position(|(k, _)| k.borrow() == key)?;
        let (_, v) = self.buckets[b].swap_remove(pos);
        self.len -= 1;
        Some(v)
    }

    /// Iterates over all entries in unspecified (but deterministic) order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.buckets.iter().flatten().map(|(k, v)| (k, v))
    }
}

impl<K: Hash + Eq + fmt::Debug, V: fmt::Debug> fmt::Debug for HashIndex<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HashIndex")
            .field("len", &self.len)
            .field("buckets", &self.buckets.len())
            .finish()
    }
}

impl<K: Hash + Eq, V> FromIterator<(K, V)> for HashIndex<K, V> {
    fn from_iter<T: IntoIterator<Item = (K, V)>>(iter: T) -> Self {
        let mut idx = HashIndex::new();
        for (k, v) in iter {
            idx.insert(k, v);
        }
        idx
    }
}

impl<K: Hash + Eq, V> Extend<(K, V)> for HashIndex<K, V> {
    fn extend<T: IntoIterator<Item = (K, V)>>(&mut self, iter: T) {
        for (k, v) in iter {
            self.insert(k, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove() {
        let mut h = HashIndex::new();
        assert_eq!(h.insert(1u32, "one"), None);
        assert_eq!(h.insert(2, "two"), None);
        assert_eq!(h.get(&1), Some(&"one"));
        assert_eq!(h.insert(1, "uno"), Some("one"));
        assert_eq!(h.remove(&1), Some("uno"));
        assert_eq!(h.get(&1), None);
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn grows_past_load_factor() {
        let mut h = HashIndex::new();
        for i in 0..10_000u32 {
            h.insert(i, i);
        }
        assert_eq!(h.len(), 10_000);
        assert!(h.bucket_count() >= 10_000 * MAX_LOAD_DEN / MAX_LOAD_NUM / 2);
        for i in 0..10_000u32 {
            assert_eq!(h.get(&i), Some(&i));
        }
    }

    #[test]
    fn with_capacity_avoids_early_growth() {
        let h: HashIndex<u32, ()> = HashIndex::with_capacity(1000);
        assert!(h.bucket_count() >= 1024);
    }

    #[test]
    fn borrowed_key_lookup() {
        let mut h: HashIndex<String, u32> = HashIndex::new();
        h.insert("hello".to_owned(), 5);
        assert_eq!(h.get("hello"), Some(&5));
        assert!(h.contains_key("hello"));
        assert_eq!(h.remove("hello"), Some(5));
    }

    #[test]
    fn get_or_insert_with() {
        let mut h: HashIndex<u32, Vec<u32>> = HashIndex::new();
        h.get_or_insert_with(1, Vec::new).push(10);
        h.get_or_insert_with(1, Vec::new).push(11);
        assert_eq!(h.get(&1), Some(&vec![10, 11]));
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn empty_index_lookups() {
        let h: HashIndex<u32, u32> = HashIndex::new();
        assert_eq!(h.get(&1), None);
        assert!(h.is_empty());
    }

    #[test]
    fn matches_std_hashmap_on_random_ops() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        let mut ours = HashIndex::new();
        let mut reference = std::collections::HashMap::new();
        for _ in 0..20_000 {
            let k: u16 = rng.gen_range(0..1500);
            match rng.gen_range(0..4) {
                0..=1 => {
                    let v: u32 = rng.gen();
                    assert_eq!(ours.insert(k, v), reference.insert(k, v));
                }
                2 => assert_eq!(ours.remove(&k), reference.remove(&k)),
                _ => assert_eq!(ours.get(&k), reference.get(&k)),
            }
        }
        assert_eq!(ours.len(), reference.len());
        let mut all: Vec<(u16, u32)> = ours.iter().map(|(k, v)| (*k, *v)).collect();
        all.sort();
        let mut expected: Vec<(u16, u32)> = reference.into_iter().collect();
        expected.sort();
        assert_eq!(all, expected);
    }

    #[test]
    fn deterministic_iteration_for_same_inserts() {
        let build = || {
            let mut h = HashIndex::new();
            for i in 0..100u32 {
                h.insert(i, i);
            }
            h.iter().map(|(k, _)| *k).collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }
}
