//! Index substrate: the structures an Index Node serves per ACG.
//!
//! The paper's Index Node (§IV) maintains, for each ACG it hosts, a group
//! of file indices — "three categories of index structures are supported:
//! B-tree, hash table and K-D-Tree" — fronted by a write-ahead log and an
//! in-memory index cache that commits on a timeout or on the next search.
//! Every piece is built from scratch in this crate:
//!
//! * [`BPlusTree`] — ordered index (point + range),
//! * [`HashIndex`] — exact-match index,
//! * [`KdTree`] — multi-attribute range index,
//! * [`Wal`] — CRC-framed write-ahead log with real LSNs (memory or file
//!   backed),
//! * [`snapshot`] — checksummed, LSN-anchored checkpoint files of an ACG's
//!   committed state,
//! * [`IndexCache`] — the lazy-commit buffer,
//! * [`AcgIndexGroup`] — the per-ACG composition of all of the above, with
//!   the user-defined named-index table and crash recovery.
//!
//! # Examples
//!
//! ```
//! use propeller_index::{AcgIndexGroup, FileRecord, GroupConfig, IndexOp};
//! use propeller_types::{AcgId, AttrName, FileId, InodeAttrs, Timestamp, Value};
//!
//! let mut group = AcgIndexGroup::new(AcgId::new(1), GroupConfig::default());
//! let now = Timestamp::from_secs(1);
//! group.enqueue(
//!     IndexOp::Upsert(FileRecord::new(
//!         FileId::new(1),
//!         InodeAttrs::builder().size(4096).build(),
//!     )),
//!     now,
//! ).unwrap();
//! group.commit(now).unwrap();
//! assert_eq!(group.lookup_eq(&AttrName::Size, &Value::U64(4096)).len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod btree;
mod cache;
mod group;
mod hash;
mod inverted;
mod kdtree;
mod ops;
pub mod snapshot;
mod wal;

pub use btree::{BPlusTree, Range, RangeRev};
pub use cache::IndexCache;
pub use group::{
    AcgEpoch, AcgIndexGroup, EpochSnapshotJob, GroupConfig, IndexKind, IndexSpec, RecoveryReport,
};
pub use hash::HashIndex;
pub use inverted::{
    bm25_block_bound, bm25_idf, bm25_score, bm25_term_bound, record_contains_all,
    record_contains_any, record_contains_phrase, record_text_fields, record_tokens, tokenize,
    tokenize_into, Block, InvertedIndex, Posting, PostingsCursor, TermPostings, BLOCK, BM25_B,
    BM25_K1,
};
pub use kdtree::{KdTree, RangeIter};
pub use ops::{FileRecord, IndexOp};
pub use snapshot::SnapshotData;
pub use wal::{crc32, Wal};
