//! Property tests for the inverted-index subsystem: random corpora with
//! upserts and removes must keep the postings equivalent to a brute-force
//! scan oracle, and a crash-recovered group must rebuild byte-identical
//! postings and document-frequency tables.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use propeller_index::{
    record_contains_all, record_contains_any, record_contains_phrase, record_tokens, AcgIndexGroup,
    FileRecord, GroupConfig, IndexOp, InvertedIndex, PostingsCursor, Wal,
};
use propeller_types::{AcgId, FileId, InodeAttrs, Timestamp};
use proptest::prelude::*;

/// Small vocabulary so random docs collide on terms (df > 1, real
/// intersections) instead of producing disjoint singleton postings.
const VOCAB: &[&str] =
    &["alpha", "beta", "gamma", "delta", "tax", "report", "quick", "brown", "fox", "zebra"];

fn doc_text(words: &[usize]) -> String {
    words.iter().map(|&w| VOCAB[w % VOCAB.len()]).collect::<Vec<_>>().join(" ")
}

fn record(file: u64, words: &[usize]) -> FileRecord {
    FileRecord::new(FileId::new(file), InodeAttrs::default()).with_content(doc_text(words))
}

fn terms_of(ids: &[usize]) -> Vec<String> {
    let mut terms: Vec<String> = ids.iter().map(|&w| VOCAB[w % VOCAB.len()].to_string()).collect();
    terms.dedup();
    terms
}

/// Walks one term's postings into a plain file list.
fn postings_files(inv: &InvertedIndex, term: &str) -> Vec<FileId> {
    let Some(postings) = inv.term(term) else { return Vec::new() };
    let mut cursor = PostingsCursor::new(postings);
    let mut out = Vec::new();
    while let Some(p) = cursor.current() {
        out.push(p.file);
        cursor.advance();
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Contains (all / any) and phrase answers derived from the postings
    /// agree with a brute-force scan over the surviving records, and every
    /// df / doc-length statistic matches a from-scratch recount.
    #[test]
    fn inverted_matches_the_brute_force_oracle(
        docs in prop::collection::vec(
            (0u64..48, prop::collection::vec(0usize..VOCAB.len(), 0..10)),
            1..60,
        ),
        removes in prop::collection::vec(0u64..48, 0..24),
        query in prop::collection::vec(0usize..VOCAB.len(), 1..4),
    ) {
        let mut inv = InvertedIndex::new();
        let mut live: HashMap<u64, FileRecord> = HashMap::new();
        for (file, words) in &docs {
            let rec = record(*file, words);
            if let Some(old) = live.insert(*file, rec.clone()) {
                inv.remove(&old);
            }
            inv.insert(&rec);
        }
        for file in &removes {
            if let Some(old) = live.remove(file) {
                inv.remove(&old);
            }
        }

        let terms = terms_of(&query);
        let oracle = |pred: &dyn Fn(&FileRecord) -> bool| -> Vec<FileId> {
            let mut v: Vec<FileId> =
                live.values().filter(|r| pred(r)).map(|r| r.file).collect();
            v.sort_unstable();
            v
        };

        // All-terms conjunction: intersect the postings lists.
        let mut all: Option<Vec<FileId>> = None;
        for term in &terms {
            let files = postings_files(&inv, term);
            all = Some(match all {
                None => files,
                Some(prev) => prev.into_iter().filter(|f| files.binary_search(f).is_ok()).collect(),
            });
        }
        prop_assert_eq!(
            all.unwrap_or_default(),
            oracle(&|r| record_contains_all(r, &terms)),
            "conjunction over {:?}", terms
        );

        // Any-term disjunction: union the postings lists.
        let mut any: Vec<FileId> = terms.iter().flat_map(|t| postings_files(&inv, t)).collect();
        any.sort_unstable();
        any.dedup();
        prop_assert_eq!(any, oracle(&|r| record_contains_any(r, &terms)), "disjunction");

        // Phrase: the conjunctive candidates are a superset; adjacency
        // post-filtering over them must equal the brute phrase oracle.
        let mut phrase: Option<Vec<FileId>> = None;
        for term in &terms {
            let files = postings_files(&inv, term);
            phrase = Some(match phrase {
                None => files,
                Some(prev) => {
                    prev.into_iter().filter(|f| files.binary_search(f).is_ok()).collect()
                }
            });
        }
        let phrase: Vec<FileId> = phrase
            .unwrap_or_default()
            .into_iter()
            .filter(|f| record_contains_phrase(&live[&f.raw()], &terms))
            .collect();
        prop_assert_eq!(phrase, oracle(&|r| record_contains_phrase(r, &terms)), "phrase");

        // Statistics: df, doc count and per-doc lengths match a recount.
        for term in VOCAB {
            let term = (*term).to_string();
            let expected = live
                .values()
                .filter(|r| record_tokens(r).contains(&term))
                .count();
            prop_assert_eq!(inv.df(&term), expected, "df({})", term);
        }
        let tokenised = live.values().filter(|r| !record_tokens(r).is_empty()).count();
        prop_assert_eq!(inv.doc_count(), tokenised, "doc_count counts docs with tokens");
        for rec in live.values() {
            prop_assert_eq!(
                inv.doc_len(rec.file) as usize,
                record_tokens(rec).len(),
                "doc_len({})", rec.file
            );
        }
    }

    /// Crash-recovery round trip: a group rebuilt from its snapshot + WAL
    /// suffix carries an inverted index with byte-identical postings, df
    /// tables and corpus statistics.
    #[test]
    fn crash_recovery_rebuilds_identical_postings(
        batches in prop::collection::vec(
            prop::collection::vec(
                (0u64..32, prop::collection::vec(0usize..VOCAB.len(), 0..8)),
                1..8,
            ),
            1..5,
        ),
        snapshot_after in 0usize..5,
        remove_every in 2u64..5,
    ) {
        static CASE: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "propeller-inverted-prop-{}-{}",
            std::process::id(),
            CASE.fetch_add(1, Ordering::Relaxed),
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let config = || GroupConfig {
            wal: Wal::open(dir.join("acg-1.wal")).unwrap(),
            snapshot_dir: Some(dir.clone()),
            ..GroupConfig::default()
        };

        let mut g = AcgIndexGroup::new(AcgId::new(1), config());
        for (i, batch) in batches.iter().enumerate() {
            let ops: Vec<IndexOp> = batch
                .iter()
                .map(|(file, words)| {
                    // A sprinkling of removes exercises postings deletion
                    // across the snapshot boundary.
                    if *file % remove_every == 0 && words.is_empty() {
                        IndexOp::Remove(FileId::new(*file))
                    } else {
                        IndexOp::Upsert(record(*file, words))
                    }
                })
                .collect();
            g.enqueue_batch(ops, Timestamp::EPOCH).unwrap();
            g.sync_wal().unwrap();
            g.commit(Timestamp::EPOCH).unwrap();
            if i == snapshot_after {
                g.snapshot().unwrap();
            }
        }
        let inv = g.inverted().expect("default content index");
        let fingerprint = inv.fingerprint();
        let doc_count = inv.doc_count();
        let avg_doc_len = inv.avg_doc_len();
        drop(g);

        let (recovered, _report) =
            AcgIndexGroup::recover_with_report(AcgId::new(1), config()).unwrap();
        let rinv = recovered.inverted().expect("recovered content index");
        prop_assert_eq!(rinv.fingerprint(), fingerprint, "postings diverged across recovery");
        prop_assert_eq!(rinv.doc_count(), doc_count);
        prop_assert!(
            (rinv.avg_doc_len() - avg_doc_len).abs() < f64::EPSILON,
            "avgdl {} != {}", rinv.avg_doc_len(), avg_doc_len
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
