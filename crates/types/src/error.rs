//! The shared error type (C-GOOD-ERR).

use std::fmt;

use crate::{AcgId, FileId, NodeId};

/// A specialized `Result` whose error type is [`Error`].
pub type Result<T> = std::result::Result<T, Error>;

/// Errors surfaced by Propeller crates.
///
/// The type is `Send + Sync + 'static` and implements [`std::error::Error`]
/// so it composes with any error-handling stack.
///
/// # Examples
///
/// ```
/// use propeller_types::{Error, FileId};
///
/// let err = Error::FileNotFound(FileId::new(3));
/// assert_eq!(err.to_string(), "file f3 not found");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A file id was not known to the service.
    FileNotFound(FileId),
    /// An ACG id was not known to the Master Node.
    AcgNotFound(AcgId),
    /// A named index does not exist in the targeted ACG.
    IndexNotFound(String),
    /// An index with this name already exists.
    IndexExists(String),
    /// A cluster node is not registered or has stopped heartbeating.
    NodeUnavailable(NodeId),
    /// A client used a cached route that the cluster has since moved
    /// (post-split/migration staleness). Dropping the cached entry and
    /// re-resolving through the Master recovers.
    StaleRoute {
        /// The ACG the stale route pointed at.
        acg: AcgId,
        /// The file whose route moved.
        file: FileId,
    },
    /// A cluster-wide index broadcast reached only part of the cluster;
    /// the registration was rolled back.
    PartialIndexBroadcast {
        /// The index that failed to propagate.
        index: String,
        /// Index Nodes that never received the spec.
        missed: Vec<NodeId>,
    },
    /// A streamed node search session is unknown to the serving Index
    /// Node: it was evicted (LRU / per-client cap), closed, or the node
    /// restarted. The client reopens a session resuming after the last
    /// hit it received.
    SearchSessionExpired {
        /// The session id the node no longer recognizes.
        session: u64,
    },
    /// A query string could not be parsed; the payload describes why.
    InvalidQuery(String),
    /// Stored bytes (WAL frame, serialized index) failed validation.
    Corrupt(String),
    /// A snapshot file failed validation (bad magic, version, checksum or
    /// truncated payload). Recovery skips the file and falls back to an
    /// older snapshot or a full WAL replay; the variant is surfaced so
    /// operators and tooling can see which file was bad and why.
    SnapshotCorrupt {
        /// Path of the rejected snapshot file.
        path: String,
        /// What failed to validate.
        reason: String,
    },
    /// An I/O error from the real file system (WAL files, snapshots).
    Io(String),
    /// An RPC timed out or its channel was disconnected.
    Rpc(String),
    /// Invalid configuration (e.g. zero index nodes, zero partition size).
    Config(String),
    /// The service has been shut down.
    Shutdown,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::FileNotFound(id) => write!(f, "file {id} not found"),
            Error::AcgNotFound(id) => write!(f, "access-causality graph {id} not found"),
            Error::IndexNotFound(name) => write!(f, "index {name:?} not found"),
            Error::IndexExists(name) => write!(f, "index {name:?} already exists"),
            Error::NodeUnavailable(id) => write!(f, "node {id} unavailable"),
            Error::StaleRoute { acg, file } => {
                write!(f, "stale route: file {file} no longer lives in {acg}")
            }
            Error::PartialIndexBroadcast { index, missed } => {
                write!(f, "index {index:?} missed nodes {missed:?}; registration rolled back")
            }
            Error::SearchSessionExpired { session } => {
                write!(f, "search session {session} expired on the serving node")
            }
            Error::InvalidQuery(msg) => write!(f, "invalid query: {msg}"),
            Error::Corrupt(msg) => write!(f, "corrupt data: {msg}"),
            Error::SnapshotCorrupt { path, reason } => {
                write!(f, "corrupt snapshot {path:?}: {reason}")
            }
            Error::Io(msg) => write!(f, "i/o error: {msg}"),
            Error::Rpc(msg) => write!(f, "rpc error: {msg}"),
            Error::Config(msg) => write!(f, "invalid configuration: {msg}"),
            Error::Shutdown => write!(f, "service has shut down"),
        }
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(err: std::io::Error) -> Self {
        Error::Io(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_without_trailing_punctuation() {
        let cases: Vec<Error> = vec![
            Error::FileNotFound(FileId::new(1)),
            Error::AcgNotFound(AcgId::new(2)),
            Error::IndexNotFound("size_idx".into()),
            Error::IndexExists("size_idx".into()),
            Error::NodeUnavailable(NodeId::new(3)),
            Error::StaleRoute { acg: AcgId::new(4), file: FileId::new(5) },
            Error::PartialIndexBroadcast { index: "uid_idx".into(), missed: vec![NodeId::new(2)] },
            Error::SearchSessionExpired { session: 6 },
            Error::InvalidQuery("dangling operator".into()),
            Error::Corrupt("bad crc".into()),
            Error::SnapshotCorrupt { path: "acg-1-9.snap".into(), reason: "bad crc".into() },
            Error::Io("disk full".into()),
            Error::Rpc("timeout".into()),
            Error::Config("zero nodes".into()),
            Error::Shutdown,
        ];
        for err in cases {
            let msg = err.to_string();
            assert!(!msg.is_empty());
            assert!(!msg.ends_with('.'), "{msg}");
            assert!(msg.chars().next().unwrap().is_lowercase() || msg.starts_with('i'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + 'static>() {}
        assert_send_sync::<Error>();
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::other("boom");
        let err: Error = io.into();
        assert!(matches!(err, Error::Io(_)));
    }
}
