//! Core vocabulary types shared by every Propeller crate.
//!
//! This crate defines the identifiers ([`FileId`], [`AcgId`], [`NodeId`],
//! [`ProcessId`]), timestamps ([`Timestamp`]), file attributes
//! ([`InodeAttrs`]), typed attribute values ([`Value`]), file-access trace
//! events ([`TraceEvent`]) and the shared error type ([`Error`]) used across
//! the reproduction of *Propeller: A Scalable Real-Time File-Search Service
//! in Distributed Systems* (ICDCS 2014).
//!
//! Everything here is deliberately small, `serde`-serialisable and free of
//! behaviour so that the substrates built on top (trace capture, ACG
//! construction, index structures, the cluster) agree on one vocabulary.
//!
//! # Examples
//!
//! ```
//! use propeller_types::{FileId, InodeAttrs, Timestamp, Value};
//!
//! let file = FileId::new(42);
//! let attrs = InodeAttrs::builder()
//!     .size(16 << 20)
//!     .mtime(Timestamp::from_secs(1_700_000_000))
//!     .uid(1000)
//!     .build();
//! assert_eq!(attrs.size, 16 << 20);
//! assert_eq!(Value::from(attrs.size), Value::U64(16 << 20));
//! assert_eq!(file.to_string(), "f42");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod attrs;
mod error;
mod event;
mod ids;
mod time;
mod value;

pub use attrs::{AttrName, InodeAttrs, InodeAttrsBuilder};
pub use error::{Error, Result};
pub use event::{FileOp, OpenMode, TraceEvent};
pub use ids::{AcgId, FileId, IndexId, NodeId, ProcessId, RequestId};
pub use time::{Duration, Timestamp};
pub use value::{Value, ValueKind};
