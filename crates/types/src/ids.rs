//! Strongly-typed identifiers.
//!
//! Each identifier is a newtype over an integer so that a [`FileId`] can
//! never be confused with an [`AcgId`] or a [`NodeId`] at compile time
//! (C-NEWTYPE). All identifiers are `Copy`, ordered, hashable and
//! serialisable.

use std::fmt;

use serde::{Deserialize, Serialize};

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $inner:ty, $prefix:expr) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
            Serialize, Deserialize,
        )]
        pub struct $name($inner);

        impl $name {
            /// The largest representable identifier — a convenient
            /// "nothing beyond this" sentinel for exhausted scans and
            /// merge boundaries.
            pub const MAX: Self = Self(<$inner>::MAX);

            /// Creates an identifier from its raw integer representation.
            #[inline]
            pub const fn new(raw: $inner) -> Self {
                Self(raw)
            }

            /// Returns the raw integer representation.
            #[inline]
            pub const fn raw(self) -> $inner {
                self.0
            }
        }

        impl From<$inner> for $name {
            #[inline]
            fn from(raw: $inner) -> Self {
                Self(raw)
            }
        }

        impl From<$name> for $inner {
            #[inline]
            fn from(id: $name) -> Self {
                id.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifies a file (an inode) in the shared storage namespace.
    ///
    /// # Examples
    ///
    /// ```
    /// use propeller_types::FileId;
    /// let id = FileId::new(7);
    /// assert_eq!(id.raw(), 7);
    /// assert_eq!(id.to_string(), "f7");
    /// ```
    FileId,
    u64,
    "f"
);

id_type!(
    /// Identifies an Access-Causality Graph partition (an index group).
    ///
    /// Every file indexed by Propeller belongs to exactly one ACG; the
    /// Master Node owns the `FileId -> AcgId` mapping.
    ///
    /// # Examples
    ///
    /// ```
    /// use propeller_types::AcgId;
    /// assert_eq!(AcgId::new(3).to_string(), "acg3");
    /// ```
    AcgId,
    u64,
    "acg"
);

id_type!(
    /// Identifies a node (Master Node or Index Node) in a Propeller cluster.
    ///
    /// # Examples
    ///
    /// ```
    /// use propeller_types::NodeId;
    /// assert_eq!(NodeId::new(1).to_string(), "n1");
    /// ```
    NodeId,
    u32,
    "n"
);

id_type!(
    /// Identifies a client process whose file accesses are being traced.
    ///
    /// # Examples
    ///
    /// ```
    /// use propeller_types::ProcessId;
    /// assert_eq!(ProcessId::new(4242).to_string(), "p4242");
    /// ```
    ProcessId,
    u32,
    "p"
);

id_type!(
    /// Correlates an RPC request with its response in the cluster fabric.
    ///
    /// # Examples
    ///
    /// ```
    /// use propeller_types::RequestId;
    /// assert_eq!(RequestId::new(9).to_string(), "req9");
    /// ```
    RequestId,
    u64,
    "req"
);

id_type!(
    /// Identifies a user-defined index within an ACG index group.
    ///
    /// Users create named indices (paper §IV "Workflow"); the Index Node
    /// maps the globally unique name to an `IndexId` within each ACG.
    ///
    /// # Examples
    ///
    /// ```
    /// use propeller_types::IndexId;
    /// assert_eq!(IndexId::new(2).to_string(), "idx2");
    /// ```
    IndexId,
    u32,
    "idx"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_round_trip() {
        assert_eq!(FileId::new(123).raw(), 123);
        assert_eq!(AcgId::from(5u64).raw(), 5);
        let n: u32 = NodeId::new(9).into();
        assert_eq!(n, 9);
    }

    #[test]
    fn display_prefixes_disambiguate() {
        assert_eq!(FileId::new(1).to_string(), "f1");
        assert_eq!(AcgId::new(1).to_string(), "acg1");
        assert_eq!(NodeId::new(1).to_string(), "n1");
        assert_eq!(ProcessId::new(1).to_string(), "p1");
        assert_eq!(RequestId::new(1).to_string(), "req1");
        assert_eq!(IndexId::new(1).to_string(), "idx1");
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(FileId::new(1) < FileId::new(2));
        let mut v = vec![FileId::new(3), FileId::new(1), FileId::new(2)];
        v.sort();
        assert_eq!(v, vec![FileId::new(1), FileId::new(2), FileId::new(3)]);
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(FileId::default().raw(), 0);
        assert_eq!(NodeId::default().raw(), 0);
    }

    #[test]
    fn max_outranks_every_identifier() {
        assert_eq!(FileId::MAX.raw(), u64::MAX);
        assert!(FileId::new(u64::MAX - 1) < FileId::MAX);
        assert_eq!(NodeId::MAX.raw(), u32::MAX);
    }
}
