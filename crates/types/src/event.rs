//! File-access trace events.
//!
//! Propeller's client transparently captures every file `open` and `close`
//! (plus the read/write mode) from the FUSE layer (paper §IV "Client"). In
//! this reproduction the capture layer is driven explicitly by applications
//! and workload generators, emitting the same [`TraceEvent`] stream the FUSE
//! interposer would produce.

use serde::{Deserialize, Serialize};

use crate::{FileId, ProcessId, Timestamp};

/// How a file was opened.
///
/// The access-causality rule distinguishes *producers* (opened for read or
/// read-write earlier) from *consumers* (opened for write later), so the
/// mode must travel with the open event.
///
/// # Examples
///
/// ```
/// use propeller_types::OpenMode;
/// assert!(OpenMode::ReadWrite.reads());
/// assert!(OpenMode::ReadWrite.writes());
/// assert!(!OpenMode::Read.writes());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpenMode {
    /// Opened read-only.
    Read,
    /// Opened write-only.
    Write,
    /// Opened read-write.
    ReadWrite,
}

impl OpenMode {
    /// Returns `true` when the open can observe file content.
    #[inline]
    pub fn reads(self) -> bool {
        matches!(self, OpenMode::Read | OpenMode::ReadWrite)
    }

    /// Returns `true` when the open can modify file content.
    #[inline]
    pub fn writes(self) -> bool {
        matches!(self, OpenMode::Write | OpenMode::ReadWrite)
    }
}

/// A single captured file-system operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FileOp {
    /// The file was opened with the given mode.
    Open(OpenMode),
    /// The file was closed.
    Close,
    /// The file was created (implies a subsequent write-open by the caller).
    Create,
    /// The file was deleted.
    Delete,
}

/// One record in a process's file-access trace.
///
/// # Examples
///
/// ```
/// use propeller_types::{FileId, FileOp, OpenMode, ProcessId, Timestamp, TraceEvent};
///
/// let ev = TraceEvent::new(
///     ProcessId::new(100),
///     FileId::new(7),
///     FileOp::Open(OpenMode::Read),
///     Timestamp::from_secs(1),
/// );
/// assert!(ev.is_open());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TraceEvent {
    /// The process performing the operation.
    pub pid: ProcessId,
    /// The file operated on.
    pub file: FileId,
    /// The operation.
    pub op: FileOp,
    /// When the operation happened.
    pub time: Timestamp,
}

impl TraceEvent {
    /// Creates a trace event.
    pub fn new(pid: ProcessId, file: FileId, op: FileOp, time: Timestamp) -> Self {
        TraceEvent { pid, file, op, time }
    }

    /// Convenience constructor for an open event.
    pub fn open(pid: ProcessId, file: FileId, mode: OpenMode, time: Timestamp) -> Self {
        TraceEvent::new(pid, file, FileOp::Open(mode), time)
    }

    /// Convenience constructor for a close event.
    pub fn close(pid: ProcessId, file: FileId, time: Timestamp) -> Self {
        TraceEvent::new(pid, file, FileOp::Close, time)
    }

    /// Returns `true` if this is an open event.
    pub fn is_open(&self) -> bool {
        matches!(self.op, FileOp::Open(_))
    }

    /// Returns the open mode if this is an open event.
    pub fn open_mode(&self) -> Option<OpenMode> {
        match self.op {
            FileOp::Open(m) => Some(m),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_mode_predicates() {
        assert!(OpenMode::Read.reads() && !OpenMode::Read.writes());
        assert!(!OpenMode::Write.reads() && OpenMode::Write.writes());
        assert!(OpenMode::ReadWrite.reads() && OpenMode::ReadWrite.writes());
    }

    #[test]
    fn constructors() {
        let t = Timestamp::from_secs(5);
        let o = TraceEvent::open(ProcessId::new(1), FileId::new(2), OpenMode::Write, t);
        assert!(o.is_open());
        assert_eq!(o.open_mode(), Some(OpenMode::Write));
        let c = TraceEvent::close(ProcessId::new(1), FileId::new(2), t);
        assert!(!c.is_open());
        assert_eq!(c.open_mode(), None);
    }
}
