//! Virtual time.
//!
//! Propeller experiments run either against the wall clock (*measured* mode)
//! or against a virtual clock (*modeled* mode, used to reproduce the paper's
//! 50-million-file figures on a laptop). Both modes speak [`Timestamp`] and
//! [`Duration`]: microsecond-resolution fixed-point values that are cheap to
//! copy, totally ordered and serialisable.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A span of (virtual or real) time with microsecond resolution.
///
/// # Examples
///
/// ```
/// use propeller_types::Duration;
///
/// let d = Duration::from_millis(1500);
/// assert_eq!(d.as_secs_f64(), 1.5);
/// assert_eq!(d * 2, Duration::from_secs(3));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Duration(u64);

impl Duration {
    /// The zero-length duration.
    pub const ZERO: Duration = Duration(0);

    /// Creates a duration from whole microseconds.
    #[inline]
    pub const fn from_micros(micros: u64) -> Self {
        Duration(micros)
    }

    /// Creates a duration from whole milliseconds.
    #[inline]
    pub const fn from_millis(millis: u64) -> Self {
        Duration(millis * 1_000)
    }

    /// Creates a duration from whole seconds.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        Duration(secs * 1_000_000)
    }

    /// Creates a duration from fractional seconds, saturating at zero for
    /// negative or non-finite input.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs.is_finite() && secs > 0.0 {
            Duration((secs * 1e6).round() as u64)
        } else {
            Duration::ZERO
        }
    }

    /// Total microseconds in this duration.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Total milliseconds, truncated.
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }

    /// Returns `true` when this duration is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Converts to a [`std::time::Duration`] for interoperability with the
    /// standard library (sleeps, timeouts).
    #[inline]
    pub const fn to_std(self) -> std::time::Duration {
        std::time::Duration::from_micros(self.0)
    }

    /// Creates a duration from a [`std::time::Duration`], truncating to
    /// microsecond resolution.
    #[inline]
    pub fn from_std(d: std::time::Duration) -> Self {
        Duration(d.as_micros() as u64)
    }
}

impl Add for Duration {
    type Output = Duration;
    #[inline]
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub for Duration {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl SubAssign for Duration {
    #[inline]
    fn sub_assign(&mut self, rhs: Duration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;
    #[inline]
    fn mul(self, rhs: u64) -> Duration {
        Duration(self.0 * rhs)
    }
}

impl Mul<f64> for Duration {
    type Output = Duration;
    #[inline]
    fn mul(self, rhs: f64) -> Duration {
        Duration::from_secs_f64(self.as_secs_f64() * rhs)
    }
}

impl Div<u64> for Duration {
    type Output = Duration;
    #[inline]
    fn div(self, rhs: u64) -> Duration {
        Duration(self.0 / rhs)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

impl std::iter::Sum for Duration {
    fn sum<I: Iterator<Item = Duration>>(iter: I) -> Duration {
        iter.fold(Duration::ZERO, Add::add)
    }
}

/// A point in (virtual or real) time, microseconds since an arbitrary epoch.
///
/// # Examples
///
/// ```
/// use propeller_types::{Duration, Timestamp};
///
/// let t0 = Timestamp::from_secs(100);
/// let t1 = t0 + Duration::from_millis(500);
/// assert!(t1 > t0);
/// assert_eq!(t1 - t0, Duration::from_millis(500));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Timestamp(u64);

impl Timestamp {
    /// The epoch (time zero).
    pub const EPOCH: Timestamp = Timestamp(0);

    /// Creates a timestamp from microseconds since the epoch.
    #[inline]
    pub const fn from_micros(micros: u64) -> Self {
        Timestamp(micros)
    }

    /// Creates a timestamp from seconds since the epoch.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        Timestamp(secs * 1_000_000)
    }

    /// Microseconds since the epoch.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Fractional seconds since the epoch.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration elapsed since `earlier`, saturating to zero if `earlier` is
    /// in the future.
    #[inline]
    pub fn since(self, earlier: Timestamp) -> Duration {
        Duration::from_micros(self.0.saturating_sub(earlier.0))
    }
}

impl Add<Duration> for Timestamp {
    type Output = Timestamp;
    #[inline]
    fn add(self, rhs: Duration) -> Timestamp {
        Timestamp(self.0 + rhs.as_micros())
    }
}

impl AddAssign<Duration> for Timestamp {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.as_micros();
    }
}

impl Sub<Duration> for Timestamp {
    type Output = Timestamp;
    #[inline]
    fn sub(self, rhs: Duration) -> Timestamp {
        Timestamp(self.0 - rhs.as_micros())
    }
}

impl Sub for Timestamp {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Timestamp) -> Duration {
        Duration::from_micros(self.0 - rhs.0)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{:.6}", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(Duration::from_secs(2), Duration::from_millis(2_000));
        assert_eq!(Duration::from_millis(3), Duration::from_micros(3_000));
        assert_eq!(Duration::from_secs_f64(0.25), Duration::from_micros(250_000));
    }

    #[test]
    fn duration_from_secs_f64_saturates() {
        assert_eq!(Duration::from_secs_f64(-1.0), Duration::ZERO);
        assert_eq!(Duration::from_secs_f64(f64::NAN), Duration::ZERO);
        assert_eq!(Duration::from_secs_f64(f64::NEG_INFINITY), Duration::ZERO);
    }

    #[test]
    fn duration_arithmetic() {
        let d = Duration::from_millis(100);
        assert_eq!(d + d, Duration::from_millis(200));
        assert_eq!(d * 3, Duration::from_millis(300));
        assert_eq!(Duration::from_secs(1) / 4, Duration::from_millis(250));
        assert_eq!(d.saturating_sub(Duration::from_secs(1)), Duration::ZERO);
        assert_eq!(d * 2.5, Duration::from_millis(250));
    }

    #[test]
    fn timestamp_arithmetic() {
        let t = Timestamp::from_secs(10);
        let later = t + Duration::from_millis(1);
        assert_eq!(later - t, Duration::from_millis(1));
        assert_eq!(t.since(later), Duration::ZERO);
        assert_eq!(later.since(t), Duration::from_millis(1));
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(Duration::from_micros(5).to_string(), "5us");
        assert_eq!(Duration::from_micros(1500).to_string(), "1.500ms");
        assert_eq!(Duration::from_millis(2500).to_string(), "2.500s");
    }

    #[test]
    fn sum_of_durations() {
        let total: Duration = (1..=4).map(Duration::from_secs).sum();
        assert_eq!(total, Duration::from_secs(10));
    }

    #[test]
    fn std_round_trip() {
        let d = Duration::from_millis(1234);
        assert_eq!(Duration::from_std(d.to_std()), d);
    }
}
