//! Typed attribute values used as index keys and query operands.
//!
//! Propeller is a *general-purpose* file-search service: beyond inode
//! metadata it indexes arbitrary user-defined attributes (paper §IV). All
//! such attributes are represented by [`Value`], a small sum type with a
//! total order so it can serve as a key in the B+-tree, hash and K-D-tree
//! indices.

use std::cmp::Ordering;
use std::fmt;

use serde::{Deserialize, Serialize};

/// The kind (type tag) of a [`Value`].
///
/// # Examples
///
/// ```
/// use propeller_types::{Value, ValueKind};
/// assert_eq!(Value::U64(3).kind(), ValueKind::U64);
/// assert_eq!(Value::from("abc").kind(), ValueKind::Str);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ValueKind {
    /// Unsigned 64-bit integer (sizes, counts, uids).
    U64,
    /// Signed 64-bit integer (deltas, offsets).
    I64,
    /// 64-bit float, compared by total order.
    F64,
    /// UTF-8 string (keywords, names).
    Str,
}

/// A typed attribute value with a total order.
///
/// Values of different kinds are ordered by their [`ValueKind`] first; this
/// keeps mixed-kind B+-tree keys well-defined (the query planner normally
/// prevents mixed-kind comparisons, but index integrity must not depend on
/// that).
///
/// Floats are compared with [`f64::total_cmp`], so `Value` is `Eq`/`Ord`
/// even though `f64` itself is not. `NaN` sorts above every other float.
///
/// # Examples
///
/// ```
/// use propeller_types::Value;
///
/// let a = Value::U64(10);
/// let b = Value::U64(32);
/// assert!(a < b);
/// assert_eq!(Value::from("kernel"), Value::Str("kernel".to_owned()));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// Unsigned 64-bit integer.
    U64(u64),
    /// Signed 64-bit integer.
    I64(i64),
    /// 64-bit float (totally ordered).
    F64(f64),
    /// UTF-8 string.
    Str(String),
}

impl Value {
    /// Returns the kind tag of this value.
    #[inline]
    pub fn kind(&self) -> ValueKind {
        match self {
            Value::U64(_) => ValueKind::U64,
            Value::I64(_) => ValueKind::I64,
            Value::F64(_) => ValueKind::F64,
            Value::Str(_) => ValueKind::Str,
        }
    }

    /// Returns the value as `u64` if it is a `U64`.
    #[inline]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the value as `i64` if it is an `I64`.
    #[inline]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the value as `f64` if it is an `F64`.
    #[inline]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the value as `&str` if it is a `Str`.
    #[inline]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A numeric projection used by the K-D tree when mapping values onto
    /// spatial axes. Strings hash onto the axis; integers and floats map
    /// directly.
    pub fn axis_projection(&self) -> f64 {
        match self {
            Value::U64(v) => *v as f64,
            Value::I64(v) => *v as f64,
            Value::F64(v) => *v,
            Value::Str(s) => {
                use std::hash::{Hash, Hasher};
                let mut h = std::collections::hash_map::DefaultHasher::new();
                s.hash(&mut h);
                (h.finish() >> 11) as f64
            }
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (U64(a), U64(b)) => a.cmp(b),
            (I64(a), I64(b)) => a.cmp(b),
            (F64(a), F64(b)) => a.total_cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            _ => self.kind().cmp(&other.kind()),
        }
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.kind().hash(state);
        match self {
            Value::U64(v) => v.hash(state),
            Value::I64(v) => v.hash(state),
            Value::F64(v) => v.to_bits().hash(state),
            Value::Str(s) => s.hash(state),
        }
    }
}

impl From<u64> for Value {
    #[inline]
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<u32> for Value {
    #[inline]
    fn from(v: u32) -> Self {
        Value::U64(v as u64)
    }
}

impl From<i64> for Value {
    #[inline]
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<f64> for Value {
    #[inline]
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<&str> for Value {
    #[inline]
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    #[inline]
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<crate::Timestamp> for Value {
    #[inline]
    fn from(t: crate::Timestamp) -> Self {
        Value::U64(t.as_micros())
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::U64(v) => write!(f, "{v}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_kind_ordering() {
        assert!(Value::U64(1) < Value::U64(2));
        assert!(Value::I64(-5) < Value::I64(5));
        assert!(Value::F64(1.5) < Value::F64(2.5));
        assert!(Value::from("a") < Value::from("b"));
    }

    #[test]
    fn cross_kind_ordering_is_total_and_consistent() {
        let vals = vec![Value::U64(9), Value::I64(-1), Value::F64(0.5), Value::from("z")];
        let mut sorted = vals.clone();
        sorted.sort();
        // U64 < I64 < F64 < Str by kind discriminant.
        assert_eq!(sorted[0].kind(), ValueKind::U64);
        assert_eq!(sorted[3].kind(), ValueKind::Str);
    }

    #[test]
    fn nan_is_ordered() {
        let nan = Value::F64(f64::NAN);
        let one = Value::F64(1.0);
        // total_cmp puts NaN above all ordinary values.
        assert!(nan > one);
        assert_eq!(nan, Value::F64(f64::NAN));
    }

    #[test]
    fn hash_agrees_with_eq_for_floats() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Value::F64(2.0));
        assert!(set.contains(&Value::F64(2.0)));
        assert!(!set.contains(&Value::F64(3.0)));
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::U64(3).as_u64(), Some(3));
        assert_eq!(Value::U64(3).as_i64(), None);
        assert_eq!(Value::I64(-3).as_i64(), Some(-3));
        assert_eq!(Value::F64(0.5).as_f64(), Some(0.5));
        assert_eq!(Value::from("hi").as_str(), Some("hi"));
    }

    #[test]
    fn axis_projection_monotone_for_numbers() {
        assert!(Value::U64(5).axis_projection() < Value::U64(6).axis_projection());
        assert!(Value::I64(-2).axis_projection() < Value::I64(3).axis_projection());
        // String projection is deterministic.
        assert_eq!(Value::from("x").axis_projection(), Value::from("x").axis_projection());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::U64(7).to_string(), "7");
        assert_eq!(Value::from("key").to_string(), "\"key\"");
    }
}
