//! Inode attributes and attribute naming.
//!
//! Propeller indexes inode metadata (size, mtime, uid, …) out of the box and
//! arbitrary user-defined attributes beyond that (paper §IV). [`InodeAttrs`]
//! is the standard metadata record; [`AttrName`] names any indexable
//! attribute, builtin or custom.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{Timestamp, Value};

/// Names an indexable attribute: one of the builtin inode fields or a
/// user-defined custom attribute.
///
/// # Examples
///
/// ```
/// use propeller_types::AttrName;
///
/// assert_eq!(AttrName::Size.to_string(), "size");
/// assert_eq!(AttrName::parse("mtime"), AttrName::Mtime);
/// assert_eq!(
///     AttrName::parse("protein_energy"),
///     AttrName::custom("protein_energy")
/// );
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum AttrName {
    /// File size in bytes.
    Size,
    /// Last modification time.
    Mtime,
    /// Inode change time.
    Ctime,
    /// Owning user id.
    Uid,
    /// Owning group id.
    Gid,
    /// Permission bits.
    Mode,
    /// Link count.
    Nlink,
    /// A keyword extracted from the file path or content.
    Keyword,
    /// A user-defined attribute (paper: e.g. protein structure energies).
    Custom(String),
}

impl AttrName {
    /// Creates a custom attribute name.
    pub fn custom(name: impl Into<String>) -> Self {
        AttrName::Custom(name.into())
    }

    /// Parses an attribute name, mapping builtin names to their variants and
    /// anything else to [`AttrName::Custom`].
    pub fn parse(s: &str) -> Self {
        match s {
            "size" => AttrName::Size,
            "mtime" => AttrName::Mtime,
            "ctime" => AttrName::Ctime,
            "uid" => AttrName::Uid,
            "gid" => AttrName::Gid,
            "mode" => AttrName::Mode,
            "nlink" => AttrName::Nlink,
            "keyword" => AttrName::Keyword,
            other => AttrName::Custom(other.to_owned()),
        }
    }

    /// Returns `true` for builtin inode attributes (everything except
    /// [`AttrName::Custom`] and [`AttrName::Keyword`]).
    pub fn is_inode_attr(&self) -> bool {
        !matches!(self, AttrName::Custom(_) | AttrName::Keyword)
    }
}

impl fmt::Display for AttrName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrName::Size => f.write_str("size"),
            AttrName::Mtime => f.write_str("mtime"),
            AttrName::Ctime => f.write_str("ctime"),
            AttrName::Uid => f.write_str("uid"),
            AttrName::Gid => f.write_str("gid"),
            AttrName::Mode => f.write_str("mode"),
            AttrName::Nlink => f.write_str("nlink"),
            AttrName::Keyword => f.write_str("keyword"),
            AttrName::Custom(s) => f.write_str(s),
        }
    }
}

impl From<&str> for AttrName {
    fn from(s: &str) -> Self {
        AttrName::parse(s)
    }
}

/// Standard inode metadata for a file.
///
/// Constructed with [`InodeAttrs::builder`]; all fields default to zero /
/// epoch, matching a freshly created empty file.
///
/// # Examples
///
/// ```
/// use propeller_types::{InodeAttrs, Timestamp};
///
/// let attrs = InodeAttrs::builder()
///     .size(4096)
///     .mtime(Timestamp::from_secs(1000))
///     .uid(501)
///     .build();
/// assert_eq!(attrs.size, 4096);
/// assert_eq!(attrs.nlink, 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct InodeAttrs {
    /// File size in bytes.
    pub size: u64,
    /// Last modification time.
    pub mtime: Timestamp,
    /// Inode change time.
    pub ctime: Timestamp,
    /// Owning user id.
    pub uid: u32,
    /// Owning group id.
    pub gid: u32,
    /// Permission bits (POSIX style, e.g. `0o644`).
    pub mode: u32,
    /// Hard link count.
    pub nlink: u32,
}

impl Default for InodeAttrs {
    fn default() -> Self {
        InodeAttrs {
            size: 0,
            mtime: Timestamp::EPOCH,
            ctime: Timestamp::EPOCH,
            uid: 0,
            gid: 0,
            mode: 0o644,
            nlink: 1,
        }
    }
}

impl InodeAttrs {
    /// Starts building an attribute record.
    pub fn builder() -> InodeAttrsBuilder {
        InodeAttrsBuilder::default()
    }

    /// Looks up a builtin attribute by name, returning `None` for
    /// [`AttrName::Keyword`] and [`AttrName::Custom`] which are not stored
    /// in the inode record.
    pub fn get(&self, name: &AttrName) -> Option<Value> {
        match name {
            AttrName::Size => Some(Value::U64(self.size)),
            AttrName::Mtime => Some(Value::U64(self.mtime.as_micros())),
            AttrName::Ctime => Some(Value::U64(self.ctime.as_micros())),
            AttrName::Uid => Some(Value::U64(self.uid as u64)),
            AttrName::Gid => Some(Value::U64(self.gid as u64)),
            AttrName::Mode => Some(Value::U64(self.mode as u64)),
            AttrName::Nlink => Some(Value::U64(self.nlink as u64)),
            AttrName::Keyword | AttrName::Custom(_) => None,
        }
    }

    /// Enumerates the `(name, value)` pairs of all builtin attributes, in a
    /// fixed order. This is the record shape fed to per-ACG indices.
    pub fn entries(&self) -> Vec<(AttrName, Value)> {
        vec![
            (AttrName::Size, Value::U64(self.size)),
            (AttrName::Mtime, Value::U64(self.mtime.as_micros())),
            (AttrName::Ctime, Value::U64(self.ctime.as_micros())),
            (AttrName::Uid, Value::U64(self.uid as u64)),
            (AttrName::Gid, Value::U64(self.gid as u64)),
            (AttrName::Mode, Value::U64(self.mode as u64)),
            (AttrName::Nlink, Value::U64(self.nlink as u64)),
        ]
    }
}

/// Builder for [`InodeAttrs`] (C-BUILDER, non-consuming).
#[derive(Debug, Clone, Default)]
pub struct InodeAttrsBuilder {
    attrs: InodeAttrs,
}

impl InodeAttrsBuilder {
    /// Sets the file size in bytes.
    pub fn size(&mut self, size: u64) -> &mut Self {
        self.attrs.size = size;
        self
    }

    /// Sets the modification time.
    pub fn mtime(&mut self, mtime: Timestamp) -> &mut Self {
        self.attrs.mtime = mtime;
        self
    }

    /// Sets the inode change time.
    pub fn ctime(&mut self, ctime: Timestamp) -> &mut Self {
        self.attrs.ctime = ctime;
        self
    }

    /// Sets the owning user id.
    pub fn uid(&mut self, uid: u32) -> &mut Self {
        self.attrs.uid = uid;
        self
    }

    /// Sets the owning group id.
    pub fn gid(&mut self, gid: u32) -> &mut Self {
        self.attrs.gid = gid;
        self
    }

    /// Sets the permission bits.
    pub fn mode(&mut self, mode: u32) -> &mut Self {
        self.attrs.mode = mode;
        self
    }

    /// Sets the hard-link count.
    pub fn nlink(&mut self, nlink: u32) -> &mut Self {
        self.attrs.nlink = nlink;
        self
    }

    /// Finishes the builder, producing the attribute record.
    pub fn build(&self) -> InodeAttrs {
        self.attrs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sets_fields() {
        let a = InodeAttrs::builder()
            .size(10)
            .uid(1)
            .gid(2)
            .mode(0o755)
            .nlink(3)
            .mtime(Timestamp::from_secs(9))
            .ctime(Timestamp::from_secs(8))
            .build();
        assert_eq!(a.size, 10);
        assert_eq!(a.uid, 1);
        assert_eq!(a.gid, 2);
        assert_eq!(a.mode, 0o755);
        assert_eq!(a.nlink, 3);
        assert_eq!(a.mtime, Timestamp::from_secs(9));
        assert_eq!(a.ctime, Timestamp::from_secs(8));
    }

    #[test]
    fn get_matches_entries() {
        let a = InodeAttrs::builder().size(123).uid(7).build();
        for (name, value) in a.entries() {
            assert_eq!(a.get(&name), Some(value));
        }
        assert_eq!(a.get(&AttrName::Keyword), None);
        assert_eq!(a.get(&AttrName::custom("x")), None);
    }

    #[test]
    fn parse_builtins_and_custom() {
        assert_eq!(AttrName::parse("size"), AttrName::Size);
        assert_eq!(AttrName::parse("uid"), AttrName::Uid);
        assert_eq!(AttrName::parse("weird"), AttrName::custom("weird"));
        assert!(AttrName::Size.is_inode_attr());
        assert!(!AttrName::Keyword.is_inode_attr());
        assert!(!AttrName::custom("x").is_inode_attr());
    }

    #[test]
    fn display_round_trips_builtins() {
        for name in [
            AttrName::Size,
            AttrName::Mtime,
            AttrName::Ctime,
            AttrName::Uid,
            AttrName::Gid,
            AttrName::Mode,
            AttrName::Nlink,
            AttrName::Keyword,
        ] {
            assert_eq!(AttrName::parse(&name.to_string()), name);
        }
    }

    #[test]
    fn default_is_empty_file() {
        let a = InodeAttrs::default();
        assert_eq!(a.size, 0);
        assert_eq!(a.nlink, 1);
        assert_eq!(a.mode, 0o644);
    }
}
