//! Latency distributions for cost models.

use propeller_types::Duration;
use rand::Rng;

/// A distribution of latencies, sampled per operation by the disk, network
/// and file-system cost models.
///
/// # Examples
///
/// ```
/// use propeller_sim::{seeded_rng, Latency};
/// use propeller_types::Duration;
///
/// let mut rng = seeded_rng(7);
/// let fixed = Latency::constant(Duration::from_micros(120));
/// assert_eq!(fixed.sample(&mut rng), Duration::from_micros(120));
///
/// let jittered = Latency::uniform(Duration::from_micros(50), Duration::from_micros(150));
/// let d = jittered.sample(&mut rng);
/// assert!(d >= Duration::from_micros(50) && d < Duration::from_micros(150));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Latency {
    /// Always the same latency.
    Constant(Duration),
    /// Uniform over `[low, high)`.
    Uniform {
        /// Inclusive lower bound.
        low: Duration,
        /// Exclusive upper bound.
        high: Duration,
    },
    /// Exponential with the given mean (memoryless queueing-style jitter).
    Exponential {
        /// Mean of the distribution.
        mean: Duration,
    },
}

impl Latency {
    /// A constant latency.
    pub fn constant(d: Duration) -> Self {
        Latency::Constant(d)
    }

    /// A uniform latency over `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if `low > high`.
    pub fn uniform(low: Duration, high: Duration) -> Self {
        assert!(low <= high, "uniform latency requires low <= high");
        Latency::Uniform { low, high }
    }

    /// An exponential latency with mean `mean`.
    pub fn exponential(mean: Duration) -> Self {
        Latency::Exponential { mean }
    }

    /// The zero latency (useful to disable a cost component).
    pub fn zero() -> Self {
        Latency::Constant(Duration::ZERO)
    }

    /// Samples one latency.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Duration {
        match *self {
            Latency::Constant(d) => d,
            Latency::Uniform { low, high } => {
                if low == high {
                    low
                } else {
                    Duration::from_micros(rng.gen_range(low.as_micros()..high.as_micros()))
                }
            }
            Latency::Exponential { mean } => {
                // Inverse-CDF sampling; clamp the uniform away from 0 so ln()
                // stays finite.
                let u: f64 = rng.gen_range(1e-12..1.0);
                Duration::from_secs_f64(-mean.as_secs_f64() * u.ln())
            }
        }
    }

    /// The mean of the distribution (exact, no sampling).
    pub fn mean(&self) -> Duration {
        match *self {
            Latency::Constant(d) => d,
            Latency::Uniform { low, high } => (low + high) / 2,
            Latency::Exponential { mean } => mean,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeded_rng;

    #[test]
    fn constant_is_constant() {
        let mut rng = seeded_rng(1);
        let l = Latency::constant(Duration::from_millis(2));
        for _ in 0..10 {
            assert_eq!(l.sample(&mut rng), Duration::from_millis(2));
        }
    }

    #[test]
    fn uniform_stays_in_bounds() {
        let mut rng = seeded_rng(2);
        let low = Duration::from_micros(10);
        let high = Duration::from_micros(20);
        let l = Latency::uniform(low, high);
        for _ in 0..1000 {
            let d = l.sample(&mut rng);
            assert!(d >= low && d < high);
        }
    }

    #[test]
    fn degenerate_uniform_is_constant() {
        let mut rng = seeded_rng(3);
        let d = Duration::from_micros(5);
        assert_eq!(Latency::uniform(d, d).sample(&mut rng), d);
    }

    #[test]
    fn exponential_mean_approximately_correct() {
        let mut rng = seeded_rng(4);
        let mean = Duration::from_micros(1000);
        let l = Latency::exponential(mean);
        let n = 20_000;
        let total: Duration = (0..n).map(|_| l.sample(&mut rng)).sum();
        let observed = total.as_micros() as f64 / n as f64;
        assert!((observed - 1000.0).abs() < 50.0, "observed mean {observed}");
    }

    #[test]
    fn mean_is_exact() {
        assert_eq!(
            Latency::uniform(Duration::from_micros(10), Duration::from_micros(30)).mean(),
            Duration::from_micros(20)
        );
        assert_eq!(Latency::zero().mean(), Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "low <= high")]
    fn uniform_rejects_inverted_bounds() {
        let _ = Latency::uniform(Duration::from_micros(2), Duration::from_micros(1));
    }
}
