//! Virtual time and discrete-event simulation substrate.
//!
//! The Propeller paper evaluates on 50–100 million-file datasets stored on
//! 7200 RPM disks in a 9-node GbE cluster. Reproducing those figures on a
//! laptop requires running the *same code paths* while accounting disk,
//! network and CPU costs on a **virtual clock** instead of the wall clock.
//! This crate provides that substrate:
//!
//! * [`SimClock`] — a shareable, thread-safe virtual clock,
//! * [`Clock`] — the abstraction over virtual and wall time so library code
//!   is agnostic to the execution mode,
//! * [`EventQueue`] — a deterministic discrete-event scheduler,
//! * [`Latency`] — latency distributions (constant/uniform/exponential),
//! * [`NodeSlowdowns`] — injected per-node delivery delays for
//!   tail-latency experiments,
//! * [`SeedSplitter`] — deterministic seed derivation so every experiment is
//!   reproducible from a single `u64`.
//!
//! # Examples
//!
//! ```
//! use propeller_sim::{EventQueue, SimClock};
//! use propeller_types::{Duration, Timestamp};
//!
//! let clock = SimClock::new();
//! let mut queue = EventQueue::new();
//! queue.schedule(Timestamp::from_secs(2), "second");
//! queue.schedule(Timestamp::from_secs(1), "first");
//!
//! let (t, ev) = queue.pop().unwrap();
//! clock.advance_to(t);
//! assert_eq!(ev, "first");
//! assert_eq!(clock.now(), Timestamp::from_secs(1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
mod events;
mod latency;
mod rng;
mod slowdown;

pub use clock::{Clock, SimClock, WallClock};
pub use events::EventQueue;
pub use latency::Latency;
pub use rng::{seeded_rng, SeedSplitter};
pub use slowdown::NodeSlowdowns;
