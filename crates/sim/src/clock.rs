//! Virtual and wall clocks behind one trait.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use propeller_types::{Duration, Timestamp};

/// A source of time.
///
/// Library code that needs to *observe* or *account* time takes a
/// `&dyn Clock` (or a concrete clock) so the same code runs in measured
/// (wall-clock) and modeled (virtual-clock) experiments.
pub trait Clock: Send + Sync {
    /// The current time.
    fn now(&self) -> Timestamp;

    /// Accounts `d` of elapsed activity.
    ///
    /// On a [`SimClock`] this advances virtual time; on a [`WallClock`] it
    /// is a no-op (real activity advances real time by itself).
    fn charge(&self, d: Duration);
}

/// A shareable, thread-safe virtual clock.
///
/// Cloning a `SimClock` yields a handle to the *same* clock; all clones
/// observe the same time (smart-pointer semantics like `Arc`).
///
/// # Examples
///
/// ```
/// use propeller_sim::SimClock;
/// use propeller_types::{Duration, Timestamp};
///
/// let clock = SimClock::new();
/// let view = clock.clone();
/// clock.advance(Duration::from_millis(5));
/// assert_eq!(view.now(), Timestamp::from_micros(5_000));
/// ```
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    micros: Arc<AtomicU64>,
}

impl SimClock {
    /// Creates a virtual clock at the epoch.
    pub fn new() -> Self {
        SimClock::default()
    }

    /// Creates a virtual clock starting at `t`.
    pub fn starting_at(t: Timestamp) -> Self {
        let clock = SimClock::new();
        clock.micros.store(t.as_micros(), Ordering::SeqCst);
        clock
    }

    /// The current virtual time.
    pub fn now(&self) -> Timestamp {
        Timestamp::from_micros(self.micros.load(Ordering::SeqCst))
    }

    /// Advances virtual time by `d` and returns the new time.
    pub fn advance(&self, d: Duration) -> Timestamp {
        let new = self.micros.fetch_add(d.as_micros(), Ordering::SeqCst) + d.as_micros();
        Timestamp::from_micros(new)
    }

    /// Advances virtual time to `t` if `t` is in the future; never moves the
    /// clock backwards. Returns the (possibly unchanged) current time.
    pub fn advance_to(&self, t: Timestamp) -> Timestamp {
        let target = t.as_micros();
        let mut cur = self.micros.load(Ordering::SeqCst);
        while cur < target {
            match self.micros.compare_exchange_weak(cur, target, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => return t,
                Err(actual) => cur = actual,
            }
        }
        Timestamp::from_micros(cur)
    }
}

impl Clock for SimClock {
    fn now(&self) -> Timestamp {
        SimClock::now(self)
    }

    fn charge(&self, d: Duration) {
        self.advance(d);
    }
}

/// The real (monotonic) wall clock, reported relative to the clock's
/// creation instant.
///
/// # Examples
///
/// ```
/// use propeller_sim::{Clock, WallClock};
///
/// let clock = WallClock::new();
/// let t0 = clock.now();
/// let t1 = clock.now();
/// assert!(t1 >= t0);
/// ```
#[derive(Debug, Clone)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// Creates a wall clock whose epoch is "now".
    pub fn new() -> Self {
        WallClock { origin: Instant::now() }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now(&self) -> Timestamp {
        Timestamp::from_micros(self.origin.elapsed().as_micros() as u64)
    }

    fn charge(&self, _d: Duration) {
        // Real activity advances real time; nothing to account.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_clock_advances() {
        let c = SimClock::new();
        assert_eq!(c.now(), Timestamp::EPOCH);
        c.advance(Duration::from_secs(1));
        assert_eq!(c.now(), Timestamp::from_secs(1));
    }

    #[test]
    fn clones_share_time() {
        let a = SimClock::new();
        let b = a.clone();
        a.advance(Duration::from_millis(10));
        assert_eq!(b.now(), Timestamp::from_micros(10_000));
    }

    #[test]
    fn advance_to_never_goes_backwards() {
        let c = SimClock::starting_at(Timestamp::from_secs(100));
        c.advance_to(Timestamp::from_secs(50));
        assert_eq!(c.now(), Timestamp::from_secs(100));
        c.advance_to(Timestamp::from_secs(200));
        assert_eq!(c.now(), Timestamp::from_secs(200));
    }

    #[test]
    fn charge_advances_sim_clock_only() {
        let sim = SimClock::new();
        Clock::charge(&sim, Duration::from_secs(3));
        assert_eq!(Clock::now(&sim), Timestamp::from_secs(3));

        let wall = WallClock::new();
        let before = wall.now();
        wall.charge(Duration::from_secs(3600));
        // Charging a wall clock is a no-op; time moves on its own.
        assert!(wall.now().since(before) < Duration::from_secs(1));
    }

    #[test]
    fn concurrent_advances_accumulate() {
        let c = SimClock::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.advance(Duration::from_micros(1));
                    }
                });
            }
        });
        assert_eq!(c.now(), Timestamp::from_micros(4000));
    }
}
