//! Per-node injected slowdowns for tail-latency experiments.
//!
//! Tail-tolerance mechanisms (hedged requests, replica failover) are only
//! testable against a cluster that actually has a slow node. This module
//! provides the injection point: a thread-safe table mapping nodes to
//! [`Latency`] distributions that the RPC layer samples on every delivery
//! to an afflicted node — stalling the message in flight (wall-clock mode)
//! or charging the virtual clock (modeled mode) without touching the
//! node's own code paths.

use std::collections::HashMap;
use std::sync::RwLock;

use propeller_types::{Duration, NodeId};
use rand::Rng;

use crate::latency::Latency;

/// A shared table of injected per-node delivery delays.
///
/// Empty by default (and checked with one cheap read-lock on the hot
/// path), so clusters that never inject a slowdown pay nothing.
///
/// # Examples
///
/// ```
/// use propeller_sim::{seeded_rng, Latency, NodeSlowdowns};
/// use propeller_types::{Duration, NodeId};
///
/// let slow = NodeSlowdowns::new();
/// let node = NodeId::new(3);
/// slow.set(node, Latency::constant(Duration::from_millis(50)));
///
/// let mut rng = seeded_rng(7);
/// assert_eq!(slow.sample(node, &mut rng), Some(Duration::from_millis(50)));
/// assert_eq!(slow.sample(NodeId::new(4), &mut rng), None);
///
/// slow.clear(node);
/// assert!(slow.is_empty());
/// ```
#[derive(Debug, Default)]
pub struct NodeSlowdowns {
    inner: RwLock<HashMap<NodeId, Latency>>,
}

impl NodeSlowdowns {
    /// An empty table: no node is slowed.
    pub fn new() -> Self {
        NodeSlowdowns::default()
    }

    /// Injects (or replaces) a delivery-delay distribution for `node`.
    pub fn set(&self, node: NodeId, latency: Latency) {
        self.inner.write().expect("slowdown lock").insert(node, latency);
    }

    /// Removes the injected slowdown for `node`, if any.
    pub fn clear(&self, node: NodeId) {
        self.inner.write().expect("slowdown lock").remove(&node);
    }

    /// Whether no node currently has an injected slowdown (the fast-path
    /// check callers use to skip sampling entirely).
    pub fn is_empty(&self) -> bool {
        self.inner.read().expect("slowdown lock").is_empty()
    }

    /// Samples the delay for one delivery to `node`: `None` when the node
    /// is not slowed or the sampled delay is zero.
    pub fn sample<R: Rng + ?Sized>(&self, node: NodeId, rng: &mut R) -> Option<Duration> {
        let latency = *self.inner.read().expect("slowdown lock").get(&node)?;
        let d = latency.sample(rng);
        if d == Duration::ZERO {
            None
        } else {
            Some(d)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeded_rng;

    #[test]
    fn empty_table_slows_nobody() {
        let slow = NodeSlowdowns::new();
        let mut rng = seeded_rng(1);
        assert!(slow.is_empty());
        assert_eq!(slow.sample(NodeId::new(1), &mut rng), None);
    }

    #[test]
    fn set_clear_round_trip() {
        let slow = NodeSlowdowns::new();
        let node = NodeId::new(2);
        let mut rng = seeded_rng(2);
        slow.set(node, Latency::constant(Duration::from_micros(250)));
        assert_eq!(slow.sample(node, &mut rng), Some(Duration::from_micros(250)));
        assert!(!slow.is_empty());
        slow.clear(node);
        assert_eq!(slow.sample(node, &mut rng), None);
    }

    #[test]
    fn zero_delay_samples_as_none() {
        let slow = NodeSlowdowns::new();
        let node = NodeId::new(3);
        slow.set(node, Latency::zero());
        let mut rng = seeded_rng(3);
        assert_eq!(slow.sample(node, &mut rng), None);
    }
}
