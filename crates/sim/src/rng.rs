//! Deterministic randomness plumbing.
//!
//! Every experiment in the harness is reproducible from a single `u64` seed.
//! [`seeded_rng`] builds the workhorse RNG; [`SeedSplitter`] derives
//! independent sub-seeds for components (one per index node, one per client
//! thread, …) so adding a component never perturbs the random stream of
//! another.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Creates a deterministic RNG from a `u64` seed.
///
/// # Examples
///
/// ```
/// use propeller_sim::seeded_rng;
/// use rand::Rng;
///
/// let mut a = seeded_rng(42);
/// let mut b = seeded_rng(42);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives independent sub-seeds from a root seed using the SplitMix64
/// finalizer (a strong 64-bit mixer, the standard choice for seed
/// derivation).
///
/// # Examples
///
/// ```
/// use propeller_sim::SeedSplitter;
///
/// let mut splitter = SeedSplitter::new(7);
/// let s1 = splitter.next_seed();
/// let s2 = splitter.next_seed();
/// assert_ne!(s1, s2);
///
/// // Labeled derivation is order-independent:
/// let a = SeedSplitter::new(7).derive("index-node-3");
/// let b = SeedSplitter::new(7).derive("index-node-3");
/// assert_eq!(a, b);
/// ```
#[derive(Debug, Clone)]
pub struct SeedSplitter {
    state: u64,
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedSplitter {
    /// Creates a splitter rooted at `seed`.
    pub fn new(seed: u64) -> Self {
        SeedSplitter { state: splitmix64(seed) }
    }

    /// Returns the next sequential sub-seed (stateful).
    pub fn next_seed(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        splitmix64(self.state)
    }

    /// Derives a sub-seed from a label (stateless with respect to
    /// [`SeedSplitter::next_seed`] calls made on other clones).
    pub fn derive(&self, label: &str) -> u64 {
        let mut h = self.state;
        for b in label.bytes() {
            h = splitmix64(h ^ u64::from(b));
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn seeded_rng_is_deterministic() {
        let xs: Vec<u32> = {
            let mut r = seeded_rng(123);
            (0..10).map(|_| r.gen()).collect()
        };
        let ys: Vec<u32> = {
            let mut r = seeded_rng(123);
            (0..10).map(|_| r.gen()).collect()
        };
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = seeded_rng(1);
        let mut b = seeded_rng(2);
        let xs: Vec<u64> = (0..4).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..4).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn splitter_sequence_is_deterministic() {
        let mut a = SeedSplitter::new(9);
        let mut b = SeedSplitter::new(9);
        for _ in 0..16 {
            assert_eq!(a.next_seed(), b.next_seed());
        }
    }

    #[test]
    fn labeled_derivation_independent_of_sequence() {
        let mut a = SeedSplitter::new(9);
        let _ = a.next_seed();
        let _ = a.next_seed();
        // derive() does not consume sequential state.
        assert_ne!(a.derive("x"), a.derive("y"));
        let b = a.clone();
        assert_eq!(a.derive("x"), b.derive("x"));
    }

    #[test]
    fn sub_seeds_spread() {
        let mut s = SeedSplitter::new(0);
        let seeds: std::collections::HashSet<u64> = (0..1000).map(|_| s.next_seed()).collect();
        assert_eq!(seeds.len(), 1000);
    }
}
