//! A deterministic discrete-event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use propeller_types::Timestamp;

struct Scheduled<E> {
    at: Timestamp,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first,
        // breaking ties by insertion order for determinism.
        other.at.cmp(&self.at).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A min-ordered event queue keyed by [`Timestamp`], with FIFO tie-breaking.
///
/// The queue is the heart of modeled-mode experiments: workload generators
/// schedule operations, the driver pops them in time order and charges their
/// costs to a [`crate::SimClock`].
///
/// # Examples
///
/// ```
/// use propeller_sim::EventQueue;
/// use propeller_types::Timestamp;
///
/// let mut q = EventQueue::new();
/// q.schedule(Timestamp::from_secs(3), 'c');
/// q.schedule(Timestamp::from_secs(1), 'a');
/// q.schedule(Timestamp::from_secs(1), 'b'); // same time: FIFO
///
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, vec!['a', 'b', 'c']);
/// ```
#[derive(Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0 }
    }

    /// Schedules `event` to fire at time `at`.
    pub fn schedule(&mut self, at: Timestamp, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Removes and returns the earliest event, or `None` when empty.
    pub fn pop(&mut self) -> Option<(Timestamp, E)> {
        self.heap.pop().map(|s| (s.at, s.event))
    }

    /// The time of the earliest pending event without removing it.
    pub fn peek_time(&self) -> Option<Timestamp> {
        self.heap.peek().map(|s| s.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.heap.len())
            .field("next_time", &self.peek_time())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Timestamp::from_secs(5), 5);
        q.schedule(Timestamp::from_secs(1), 1);
        q.schedule(Timestamp::from_secs(3), 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 3, 5]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = Timestamp::from_secs(1);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(Timestamp::from_secs(2), ());
        q.schedule(Timestamp::from_secs(1), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(Timestamp::from_secs(1)));
        q.pop();
        assert_eq!(q.len(), 1);
    }
}
