//! The query planner: choosing an access path.
//!
//! The executor always post-filters candidates with the full predicate, so
//! a plan's only obligation is to produce a *superset* of the matching
//! files as cheaply as possible. The planner inspects the conjuncts of the
//! predicate and the indices available in the target group:
//!
//! 1. full-text `contains` conjuncts with an inverted index → postings
//!    merge (the only path that can also score relevance),
//! 2. equality on a hash-indexed attribute → hash probe,
//! 3. two or more range-constrained attributes covered by one K-D index →
//!    K-D box query,
//! 4. a range-constrained attribute with a B+-tree → B+-tree range scan
//!    (two-sided ranges preferred over one-sided),
//! 5. otherwise → full scan.

use std::collections::HashMap;
use std::ops::Bound;

use propeller_index::{AcgEpoch, IndexKind};
use propeller_types::{AttrName, Value};

use crate::ast::{CompareOp, ContainsMode, Predicate};
use crate::request::SearchRequest;

/// What the planner needs to know about a group's indices.
///
/// Implemented for [`AcgEpoch`] (and therefore usable through a deref'd
/// `AcgIndexGroup`); test doubles can implement it to exercise planning
/// without a real group.
pub trait IndexCatalog {
    /// Whether a hash index covers `attr`.
    fn has_hash(&self, attr: &AttrName) -> bool;
    /// Whether a B+-tree index covers `attr`.
    fn has_btree(&self, attr: &AttrName) -> bool;
    /// Attribute sets of the available K-D indices.
    fn kd_attr_sets(&self) -> Vec<Vec<AttrName>>;
    /// Whether an inverted (full-text) index is available.
    fn has_inverted(&self) -> bool;
}

impl IndexCatalog for AcgEpoch {
    fn has_hash(&self, attr: &AttrName) -> bool {
        self.index_specs()
            .iter()
            .any(|s| s.kind == IndexKind::Hash && s.attrs.first() == Some(attr))
    }

    fn has_btree(&self, attr: &AttrName) -> bool {
        self.index_specs()
            .iter()
            .any(|s| s.kind == IndexKind::BTree && s.attrs.first() == Some(attr))
    }

    fn kd_attr_sets(&self) -> Vec<Vec<AttrName>> {
        self.index_specs()
            .iter()
            .filter(|s| s.kind == IndexKind::Kd)
            .map(|s| s.attrs.clone())
            .collect()
    }

    fn has_inverted(&self) -> bool {
        self.inverted().is_some()
    }
}

/// The access path selected by the planner.
#[derive(Debug, Clone, PartialEq)]
pub enum AccessPath {
    /// Probe a hash index for an exact value.
    HashEq {
        /// Probed attribute.
        attr: AttrName,
        /// Probed value.
        value: Value,
    },
    /// Scan a B+-tree over a value range.
    BTreeRange {
        /// Scanned attribute.
        attr: AttrName,
        /// Lower bound.
        lo: Bound<Value>,
        /// Upper bound.
        hi: Bound<Value>,
    },
    /// Axis-aligned box query against a K-D index (bounds are inclusive
    /// supersets of the true predicate; the post-filter trims).
    KdBox {
        /// The K-D index's attribute set, in index order.
        attrs: Vec<AttrName>,
        /// Inclusive lower corner.
        lo: Vec<f64>,
        /// Inclusive upper corner.
        hi: Vec<f64>,
    },
    /// Merge the inverted index's postings lists for the given terms —
    /// document-at-a-time, conjunctive (`All`/`Phrase`, whose adjacency
    /// check stays in the post-filter) or disjunctive (`Any`). Under a
    /// relevance sort the executor scores each admitted document with
    /// BM25 and prunes postings blocks with WAND-style max-score bounds.
    Postings {
        /// The tokenized query terms driving the merge.
        terms: Vec<String>,
        /// Conjunctive or disjunctive merge.
        mode: ContainsMode,
    },
    /// Walk a B+-tree over the request's sort attribute *in result order*
    /// (bounded by any predicate interval on that attribute). Emitted only
    /// for limited, attribute-sorted requests: because candidates arrive
    /// in final order, the executor checks the residual predicate per
    /// record and terminates after `limit` admitted hits — exact semantics
    /// with early termination.
    OrderedScan {
        /// The sort (and scan) attribute; always a single-valued builtin.
        attr: AttrName,
        /// Lower scan bound from the predicate's interval on `attr`.
        lo: Bound<Value>,
        /// Upper scan bound from the predicate's interval on `attr`.
        hi: Bound<Value>,
        /// Walk the tree from the top instead of the bottom.
        descending: bool,
    },
    /// Fall back to scanning every record.
    FullScan,
}

/// A completed plan.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// The access path producing the candidate superset.
    pub path: AccessPath,
}

/// Per-attribute bound accumulator.
#[derive(Debug, Clone)]
struct Interval {
    lo: Bound<Value>,
    hi: Bound<Value>,
    eq: Option<Value>,
}

impl Default for Interval {
    fn default() -> Self {
        Interval { lo: Bound::Unbounded, hi: Bound::Unbounded, eq: None }
    }
}

impl Interval {
    fn tighten(&mut self, op: CompareOp, value: &Value) {
        match op {
            CompareOp::Eq => self.eq = Some(value.clone()),
            CompareOp::Gt => self.raise_lo(Bound::Excluded(value.clone())),
            CompareOp::Ge => self.raise_lo(Bound::Included(value.clone())),
            CompareOp::Lt => self.lower_hi(Bound::Excluded(value.clone())),
            CompareOp::Le => self.lower_hi(Bound::Included(value.clone())),
            CompareOp::Ne => {}
        }
    }

    fn raise_lo(&mut self, new: Bound<Value>) {
        let existing = bound_value(&self.lo);
        let candidate = bound_value(&new);
        match (existing, candidate) {
            (None, _) => self.lo = new,
            (Some(e), Some(c)) if c > e => self.lo = new,
            _ => {}
        }
    }

    fn lower_hi(&mut self, new: Bound<Value>) {
        let existing = bound_value(&self.hi);
        let candidate = bound_value(&new);
        match (existing, candidate) {
            (None, _) => self.hi = new,
            (Some(e), Some(c)) if c < e => self.hi = new,
            _ => {}
        }
    }

    fn is_constrained(&self) -> bool {
        self.eq.is_some()
            || !matches!(self.lo, Bound::Unbounded)
            || !matches!(self.hi, Bound::Unbounded)
    }

    fn two_sided(&self) -> bool {
        self.eq.is_some()
            || (!matches!(self.lo, Bound::Unbounded) && !matches!(self.hi, Bound::Unbounded))
    }

    /// Inclusive f64 projection of this interval for a K-D box (a superset:
    /// exclusive bounds are widened to inclusive).
    fn to_box(&self) -> (f64, f64) {
        if let Some(eq) = &self.eq {
            let p = eq.axis_projection();
            return (p, p);
        }
        let lo = match &self.lo {
            Bound::Included(v) | Bound::Excluded(v) => v.axis_projection(),
            Bound::Unbounded => f64::NEG_INFINITY,
        };
        let hi = match &self.hi {
            Bound::Included(v) | Bound::Excluded(v) => v.axis_projection(),
            Bound::Unbounded => f64::INFINITY,
        };
        (lo, hi)
    }
}

fn bound_value(b: &Bound<Value>) -> Option<&Value> {
    match b {
        Bound::Included(v) | Bound::Excluded(v) => Some(v),
        Bound::Unbounded => None,
    }
}

/// The postings merge serving the predicate's `contains` conjuncts, when
/// the catalog has an inverted index. Every conjunctive (`All`/`Phrase`)
/// conjunct folds into one merged conjunctive term set — the intersection
/// of their postings is still a superset of the full predicate (phrase
/// adjacency stays in the post-filter). With only disjunctive conjuncts,
/// the first one drives an `Any` merge (the others post-filter).
fn postings_path<C: IndexCatalog + ?Sized>(catalog: &C, pred: &Predicate) -> Option<AccessPath> {
    if !catalog.has_inverted() {
        return None;
    }
    let mut conjunctive: Vec<String> = Vec::new();
    let mut first_any: Option<&[String]> = None;
    for conjunct in pred.conjuncts() {
        if let Predicate::Contains { terms, mode } = conjunct {
            match mode {
                ContainsMode::All | ContainsMode::Phrase => {
                    for term in terms {
                        if !conjunctive.contains(term) {
                            conjunctive.push(term.clone());
                        }
                    }
                }
                ContainsMode::Any => first_any = first_any.or(Some(terms)),
            }
        }
    }
    if !conjunctive.is_empty() {
        return Some(AccessPath::Postings { terms: conjunctive, mode: ContainsMode::All });
    }
    first_any.map(|terms| AccessPath::Postings { terms: terms.to_vec(), mode: ContainsMode::Any })
}

/// Default interval map extraction from the predicate's conjuncts.
fn intervals(pred: &Predicate) -> HashMap<AttrName, Interval> {
    let mut map: HashMap<AttrName, Interval> = HashMap::new();
    for conjunct in pred.conjuncts() {
        match conjunct {
            Predicate::Compare { attr, op, value } => {
                map.entry(attr.clone()).or_default().tighten(*op, value);
            }
            Predicate::Keyword(w) => {
                map.entry(AttrName::Keyword)
                    .or_default()
                    .tighten(CompareOp::Eq, &Value::from(w.as_str()));
            }
            _ => {}
        }
    }
    map
}

/// Chooses an access path for a full [`SearchRequest`], which — unlike
/// [`plan`] — can exploit the request's sort and limit: a top-k request
/// sorted by a B+-tree-covered builtin attribute walks that tree in result
/// order ([`AccessPath::OrderedScan`]) and terminates early, instead of
/// materializing the whole candidate superset and heap-selecting k. On a
/// multi-ACG Index Node every ordered-planned group becomes a resumable
/// lazy stream pulled through one node-global k-way merge (see
/// `execute_node_request`), so the early termination happens at `k` total
/// admitted hits across the node, not `k` per group.
///
/// The ordered scan only wins while the predicate is not very selective:
/// it must walk the sort order until k *residual* matches accumulate,
/// which is the whole tree when few records match. So the planner bails
/// to the classic plan whenever the predicate constrains any *other*
/// attribute an index could serve (hash, B+-tree or K-D) — without
/// per-attribute statistics, "another index applies" is the selectivity
/// proxy. A constraint on the sort attribute itself is fine: it tightens
/// the ordered scan's own bounds instead.
pub fn plan_request<C: IndexCatalog + ?Sized>(catalog: &C, request: &SearchRequest) -> Plan {
    if request.limit.is_some() {
        if let Some(attr) = request.sort.attr() {
            if attr.is_inode_attr() && catalog.has_btree(attr) {
                let map = intervals(&request.predicate);
                let kd_sets = catalog.kd_attr_sets();
                // A contains conjunct an inverted index can serve is the
                // same kind of selectivity signal as another indexed
                // attribute: prefer the postings merge to the sort-order
                // walk.
                let selective_contains = postings_path(catalog, &request.predicate).is_some();
                let selective_elsewhere = selective_contains
                    || map.iter().any(|(a, iv)| {
                        a != attr
                            && iv.is_constrained()
                            && ((iv.eq.is_some() && catalog.has_hash(a))
                                || catalog.has_btree(a)
                                || kd_sets.iter().any(|set| set.contains(a)))
                    });
                if !selective_elsewhere {
                    let iv = map.get(attr).cloned().unwrap_or_default();
                    let (lo, hi) = match &iv.eq {
                        Some(eq) => (Bound::Included(eq.clone()), Bound::Included(eq.clone())),
                        None => (iv.lo, iv.hi),
                    };
                    return Plan {
                        path: AccessPath::OrderedScan {
                            attr: attr.clone(),
                            lo,
                            hi,
                            descending: request.sort.is_descending(),
                        },
                    };
                }
            }
        }
    }
    plan(catalog, &request.predicate)
}

/// Chooses an access path for `pred` against `catalog`.
///
/// # Examples
///
/// ```
/// use propeller_index::{AcgIndexGroup, GroupConfig};
/// use propeller_query::{plan, AccessPath, Query};
/// use propeller_types::{AcgId, Timestamp};
///
/// let group = AcgIndexGroup::new(AcgId::new(1), GroupConfig::default());
/// let q = Query::parse("keyword:firefox", Timestamp::from_secs(0)).unwrap();
/// let plan = plan(&*group, &q.predicate); // a group derefs to its epoch
/// assert!(matches!(plan.path, AccessPath::HashEq { .. }));
/// ```
pub fn plan<C: IndexCatalog + ?Sized>(catalog: &C, pred: &Predicate) -> Plan {
    let map = intervals(pred);

    // 0. Postings merge for full-text conjuncts. A term's postings list is
    //    typically far shorter than the group, and only this path can
    //    score relevance.
    if let Some(path) = postings_path(catalog, pred) {
        return Plan { path };
    }

    // 1. Equality probe on a hash index.
    for (attr, iv) in &map {
        if let Some(eq) = &iv.eq {
            if catalog.has_hash(attr) {
                return Plan { path: AccessPath::HashEq { attr: attr.clone(), value: eq.clone() } };
            }
        }
    }

    // 2. K-D box over >= 2 constrained attributes.
    let constrained: Vec<&AttrName> =
        map.iter().filter(|(_, iv)| iv.is_constrained()).map(|(a, _)| a).collect();
    if constrained.len() >= 2 {
        for kd_attrs in catalog.kd_attr_sets() {
            let covered = kd_attrs
                .iter()
                .filter(|a| map.get(a).is_some_and(Interval::is_constrained))
                .count();
            if covered >= 2 {
                let mut lo = Vec::with_capacity(kd_attrs.len());
                let mut hi = Vec::with_capacity(kd_attrs.len());
                for attr in &kd_attrs {
                    let (l, h) = map.get(attr).cloned().unwrap_or_default().to_box();
                    lo.push(l);
                    hi.push(h);
                }
                return Plan { path: AccessPath::KdBox { attrs: kd_attrs, lo, hi } };
            }
        }
    }

    // 3. B+-tree range: prefer two-sided intervals, then any constrained.
    let mut best: Option<(&AttrName, &Interval, u8)> = None;
    for (attr, iv) in &map {
        if !iv.is_constrained() || !catalog.has_btree(attr) {
            continue;
        }
        let score = if iv.two_sided() { 2 } else { 1 };
        if best.map(|(_, _, s)| score > s).unwrap_or(true) {
            best = Some((attr, iv, score));
        }
    }
    if let Some((attr, iv, _)) = best {
        let (lo, hi) = match &iv.eq {
            Some(eq) => (Bound::Included(eq.clone()), Bound::Included(eq.clone())),
            None => (iv.lo.clone(), iv.hi.clone()),
        };
        return Plan { path: AccessPath::BTreeRange { attr: attr.clone(), lo, hi } };
    }

    // 4. Equality via B+-tree (no hash available).
    for (attr, iv) in &map {
        if let Some(eq) = &iv.eq {
            if catalog.has_btree(attr) {
                return Plan {
                    path: AccessPath::BTreeRange {
                        attr: attr.clone(),
                        lo: Bound::Included(eq.clone()),
                        hi: Bound::Included(eq.clone()),
                    },
                };
            }
        }
    }

    Plan { path: AccessPath::FullScan }
}

#[cfg(test)]
mod tests {
    use super::*;
    use propeller_types::Timestamp;

    struct FakeCatalog {
        hash: Vec<AttrName>,
        btree: Vec<AttrName>,
        kd: Vec<Vec<AttrName>>,
        inverted: bool,
    }

    impl IndexCatalog for FakeCatalog {
        fn has_hash(&self, attr: &AttrName) -> bool {
            self.hash.contains(attr)
        }
        fn has_btree(&self, attr: &AttrName) -> bool {
            self.btree.contains(attr)
        }
        fn kd_attr_sets(&self) -> Vec<Vec<AttrName>> {
            self.kd.clone()
        }
        fn has_inverted(&self) -> bool {
            self.inverted
        }
    }

    fn default_catalog() -> FakeCatalog {
        FakeCatalog {
            hash: vec![AttrName::Keyword],
            btree: vec![AttrName::Size, AttrName::Mtime],
            kd: vec![vec![AttrName::Size, AttrName::Mtime]],
            inverted: true,
        }
    }

    fn parse(s: &str) -> Predicate {
        crate::Query::parse(s, Timestamp::from_secs(100 * 86_400)).unwrap().predicate
    }

    #[test]
    fn keyword_goes_to_hash() {
        let p = plan(&default_catalog(), &parse("keyword:firefox & size>1m"));
        assert!(matches!(p.path, AccessPath::HashEq { attr: AttrName::Keyword, .. }));
    }

    #[test]
    fn two_constrained_attrs_go_to_kd() {
        let p = plan(&default_catalog(), &parse("size>1g & mtime<1day"));
        match p.path {
            AccessPath::KdBox { attrs, lo, hi } => {
                assert_eq!(attrs, vec![AttrName::Size, AttrName::Mtime]);
                assert_eq!(lo.len(), 2);
                assert!(hi[0].is_infinite());
                assert!(lo[0] > 0.0);
            }
            other => panic!("expected KdBox, got {other:?}"),
        }
    }

    #[test]
    fn single_range_goes_to_btree() {
        let p = plan(&default_catalog(), &parse("size>16m"));
        match p.path {
            AccessPath::BTreeRange { attr, lo, hi } => {
                assert_eq!(attr, AttrName::Size);
                assert_eq!(lo, Bound::Excluded(Value::U64(16 << 20)));
                assert_eq!(hi, Bound::Unbounded);
            }
            other => panic!("expected BTreeRange, got {other:?}"),
        }
    }

    #[test]
    fn two_sided_range_preferred() {
        let mut cat = default_catalog();
        cat.kd.clear();
        let p = plan(&cat, &parse("size>1m & size<1g & mtime<1day"));
        match p.path {
            AccessPath::BTreeRange { attr, lo, hi } => {
                assert_eq!(attr, AttrName::Size);
                assert!(!matches!(lo, Bound::Unbounded));
                assert!(!matches!(hi, Bound::Unbounded));
            }
            other => panic!("expected two-sided BTreeRange, got {other:?}"),
        }
    }

    #[test]
    fn equality_uses_btree_when_no_hash() {
        let cat =
            FakeCatalog { hash: vec![], btree: vec![AttrName::Uid], kd: vec![], inverted: false };
        let p = plan(&cat, &parse("uid=1000"));
        match p.path {
            AccessPath::BTreeRange { attr, lo, hi } => {
                assert_eq!(attr, AttrName::Uid);
                assert_eq!(lo, Bound::Included(Value::U64(1000)));
                assert_eq!(hi, Bound::Included(Value::U64(1000)));
            }
            other => panic!("expected point BTreeRange, got {other:?}"),
        }
    }

    #[test]
    fn unindexed_predicate_scans() {
        let cat = FakeCatalog { hash: vec![], btree: vec![], kd: vec![], inverted: false };
        assert_eq!(plan(&cat, &parse("uid=5")).path, AccessPath::FullScan);
        assert_eq!(plan(&cat, &parse("*")).path, AccessPath::FullScan);
    }

    #[test]
    fn disjunction_cannot_use_single_index() {
        // An OR at top level constrains nothing conjunctively.
        let p = plan(&default_catalog(), &parse("size>1m | keyword:x"));
        assert_eq!(p.path, AccessPath::FullScan);
    }

    #[test]
    fn bounds_intersect_across_conjuncts() {
        let mut cat = default_catalog();
        cat.kd.clear();
        let p = plan(&cat, &parse("size>1k & size>4k & size<1m"));
        match p.path {
            AccessPath::BTreeRange { lo, .. } => {
                assert_eq!(lo, Bound::Excluded(Value::U64(4096)), "tightest lower bound wins");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn limited_attr_sort_plans_an_ordered_scan() {
        use crate::request::{SearchRequest, SortKey};
        // The only constrained attribute is the sort attribute itself, so
        // the interval tightens the ordered scan's own bounds.
        let req = SearchRequest::new(parse("size>1m & uid>2"))
            .with_limit(10)
            .sorted_by(SortKey::Descending(AttrName::Size));
        match plan_request(&default_catalog(), &req).path {
            AccessPath::OrderedScan { attr, lo, hi, descending } => {
                assert_eq!(attr, AttrName::Size);
                assert_eq!(lo, Bound::Excluded(Value::U64(1 << 20)));
                assert_eq!(hi, Bound::Unbounded);
                assert!(descending);
            }
            other => panic!("expected OrderedScan, got {other:?}"),
        }
    }

    #[test]
    fn ordered_scan_requires_limit_sort_and_btree() {
        use crate::request::{SearchRequest, SortKey};
        let cat = default_catalog();
        // No limit: the whole range comes back anyway; nothing to cut off.
        let req =
            SearchRequest::new(parse("size>1m")).sorted_by(SortKey::Descending(AttrName::Size));
        assert!(!matches!(plan_request(&cat, &req).path, AccessPath::OrderedScan { .. }));
        // File-id sort: no covering tree.
        let req = SearchRequest::new(parse("size>1m")).with_limit(5);
        assert!(!matches!(plan_request(&cat, &req).path, AccessPath::OrderedScan { .. }));
        // Sort attribute without a B+-tree.
        let req = SearchRequest::new(parse("size>1m"))
            .with_limit(5)
            .sorted_by(SortKey::Ascending(AttrName::Uid));
        assert!(!matches!(plan_request(&cat, &req).path, AccessPath::OrderedScan { .. }));
        // A pinned hash equality beats walking the sort order.
        let req = SearchRequest::new(parse("keyword:firefox & size>1m"))
            .with_limit(5)
            .sorted_by(SortKey::Ascending(AttrName::Size));
        assert!(matches!(plan_request(&cat, &req).path, AccessPath::HashEq { .. }));
        // A constraint on a *different* indexed attribute may be far more
        // selective than the sort-order walk (a residual that matches
        // nothing would force the whole tree): fall back to the classic
        // plan rather than risk the asymptotic regression.
        let req = SearchRequest::new(parse("size<1k"))
            .with_limit(10)
            .sorted_by(SortKey::Descending(AttrName::Mtime));
        assert!(
            matches!(plan_request(&cat, &req).path, AccessPath::BTreeRange { .. }),
            "selective range on size must win over an mtime ordered scan"
        );
        let req = SearchRequest::new(parse("size>1m & mtime<1day"))
            .with_limit(10)
            .sorted_by(SortKey::Descending(AttrName::Size));
        assert!(
            matches!(plan_request(&cat, &req).path, AccessPath::KdBox { .. }),
            "two constrained kd-covered attrs keep the classic kd plan"
        );
    }

    #[test]
    fn real_group_implements_catalog() {
        use propeller_index::{AcgIndexGroup, GroupConfig};
        let group = AcgIndexGroup::new(propeller_types::AcgId::new(1), GroupConfig::default());
        assert!(group.has_hash(&AttrName::Keyword));
        assert!(group.has_btree(&AttrName::Size));
        assert_eq!(group.kd_attr_sets(), vec![vec![AttrName::Size, AttrName::Mtime]]);
        assert!(group.has_inverted());
    }

    #[test]
    fn contains_conjunct_plans_a_postings_merge() {
        let p = plan(&default_catalog(), &parse("contains:\"tax report\" & size>1m"));
        match p.path {
            AccessPath::Postings { terms, mode } => {
                assert_eq!(terms, vec!["tax".to_owned(), "report".to_owned()]);
                assert_eq!(mode, ContainsMode::All);
            }
            other => panic!("expected Postings, got {other:?}"),
        }
        // Phrase conjuncts merge into the conjunctive term set; adjacency
        // is the post-filter's job.
        let p = plan(&default_catalog(), &parse("phrase:\"sales report\" & contains:tax"));
        match p.path {
            AccessPath::Postings { terms, mode } => {
                assert_eq!(terms, vec!["sales".to_owned(), "report".to_owned(), "tax".to_owned()]);
                assert_eq!(mode, ContainsMode::All);
            }
            other => panic!("expected Postings, got {other:?}"),
        }
        // Disjunctive-only contains keeps its Any mode.
        let p = plan(&default_catalog(), &parse("contains-any:\"jpg png\""));
        assert!(
            matches!(p.path, AccessPath::Postings { mode: ContainsMode::Any, .. }),
            "{:?}",
            p.path
        );
        // Without an inverted index, contains falls back to other paths.
        let mut cat = default_catalog();
        cat.inverted = false;
        let p = plan(&cat, &parse("contains:tax"));
        assert_eq!(p.path, AccessPath::FullScan);
        // A contains inside an OR constrains nothing conjunctively.
        let p = plan(&default_catalog(), &parse("contains:tax | size>1m"));
        assert_eq!(p.path, AccessPath::FullScan);
    }

    #[test]
    fn contains_beats_the_ordered_scan() {
        use crate::request::{SearchRequest, SortKey};
        let req = SearchRequest::new(parse("contains:tax"))
            .with_limit(10)
            .sorted_by(SortKey::Descending(AttrName::Size));
        assert!(
            matches!(plan_request(&default_catalog(), &req).path, AccessPath::Postings { .. }),
            "postings selectivity must win over the sort-order walk"
        );
        // Relevance sort has no covering B+-tree; it always plans classic,
        // which lands on the postings merge.
        let req =
            SearchRequest::new(parse("contains:tax")).with_limit(10).sorted_by(SortKey::Relevance);
        assert!(matches!(plan_request(&default_catalog(), &req).path, AccessPath::Postings { .. }));
    }
}
