//! Resumable node search sessions — the node half of the **cluster-wide
//! streaming top-k cutoff**.
//!
//! A one-shot node exchange ships `k` hits from *every* node and lets the
//! client merge discard most of them, so cluster-wide work grows linearly
//! with node count even when one node holds the whole hot range. A
//! [`NodeSearchSession`] instead suspends a node's search between client
//! pulls: the client opens a session (`OpenSearch`), receives a first
//! page, and pulls further pages (`PullHits`) only while the node's hits
//! still compete for the global top-k — a cold node ships one small page
//! and is never pulled again.
//!
//! ## How suspension works
//!
//! The session owns pinned epochs but **no borrows into them across
//! pulls**, so it suspends by *position*, not by live iterator:
//!
//! * the classic (non-ordered) share of the search cannot early-terminate
//!   anyway, so it runs **once** at open — on the node's worker pool,
//!   under the shared [`GlobalCutoff`](crate::GlobalCutoff) — and its
//!   merged, `k`-bounded result list is paged out of memory;
//! * each ordered-planned ACG records its scan plan (attribute, bounds,
//!   direction); every pull re-creates the B+-tree walk **positioned
//!   after the session's resume cursor** (one tree descent), pulls the
//!   lazy k-way merge just far enough to fill the page, and lets the walk
//!   fall away again;
//! * the resume cursor is simply [`Cursor::after`] the last hit shipped:
//!   the merge emits in global sort order, so everything not yet shipped
//!   sorts strictly after it, and the same cursor filter that powers
//!   client pagination makes the resume exact.
//!
//! Pages are therefore globally non-decreasing in the request's sort
//! order across pulls, which is what lets the client run its cluster-wide
//! merge directly over per-node page streams.
//!
//! ## Consistency
//!
//! A session **pins** each group's published [`AcgEpoch`] at open and, on
//! the default [`NodeSearchSession::pull_pinned`] path, serves every page
//! from those pinned epochs: all pages of one session read the same
//! committed state no matter how many commits land in between
//! (cross-page consistent pagination). Pinning is just an `Arc` clone —
//! the owning Index Node keeps committing new epochs concurrently; the
//! pinned ones are reclaimed when the session closes. The lower-level
//! [`NodeSearchSession::pull`] takes an explicit epoch lookup instead,
//! for callers that *want* read-committed-per-page semantics or need to
//! drop an ACG mid-session (e.g. after a migration): an ACG that no
//! longer resolves, or whose covering index is dropped, simply stops
//! contributing; nothing panics and the remaining sources stay exact.

use std::ops::Bound;
use std::sync::Arc;

use propeller_index::AcgEpoch;
use propeller_types::{AcgId, AttrName, Value};

use crate::exec::{cursor_scan_bounds, ClassicTask, OrderedHitStream};
use crate::plan::{plan_request, AccessPath, Plan};
use crate::request::{
    merge_hit_sources, merge_sorted_hits, AccessPathKind, Cursor, GlobalCutoff, Hit, SearchRequest,
    SearchStats,
};

/// One ordered-planned ACG's suspended share of a session: the scan plan
/// plus cumulative accounting. The actual B+-tree walk is re-created per
/// pull from the session's resume cursor.
#[derive(Debug)]
struct OrderedState {
    acg: AcgId,
    attr: AttrName,
    lo: Bound<Value>,
    hi: Bound<Value>,
    descending: bool,
    /// Group size at open (for the skip witness at close).
    group_len: usize,
    /// Candidates pulled off this stream across all pulls.
    scanned: usize,
    /// The stream's first hit, pulled at open to seed the classic bound
    /// and **kept** as a primed head for the first pull — the first page
    /// feeds it into the merge instead of re-deriving it with another tree
    /// descent and predicate re-check.
    primed: Option<Hit>,
    /// Resume point strictly after the primed head: the first pull's walk
    /// starts here so the head is never yielded twice.
    seed_cursor: Option<Cursor>,
    /// The stream ran dry (or its ACG/index vanished mid-session).
    done: bool,
}

/// One page of a streamed node search.
pub struct SessionPage {
    /// The page's hits, in request sort order, strictly after everything
    /// the session shipped before.
    pub hits: Vec<Hit>,
    /// This pull's share of the execution stats (`pages_pulled` = 1,
    /// `hits_shipped` = page size; at open, also the classic scans).
    pub stats: SearchStats,
    /// `true` when the session has nothing left to ship — the node drops
    /// it and the client must not pull again.
    pub exhausted: bool,
}

/// A suspended multi-ACG node search, pulled incrementally by the client
/// (see the module docs for the design).
pub struct NodeSearchSession {
    request: SearchRequest,
    /// The epochs pinned at open, one per group consulted —
    /// [`NodeSearchSession::pull_pinned`] pages against exactly these.
    pinned: Vec<Arc<AcgEpoch>>,
    /// The merged, sorted, `k`-bounded result of the classic-planned ACGs
    /// (computed once at open) — paged out via `classic_ix`.
    classic: Vec<Hit>,
    classic_ix: usize,
    ordered: Vec<OrderedState>,
    /// Resume strictly after the last hit shipped (None before page 1).
    resume: Option<Cursor>,
    /// Hits this session may still ship (`limit` minus shipped;
    /// `usize::MAX` for unlimited requests).
    remaining: usize,
    sent: usize,
    pages: u64,
    exhausted: bool,
}

impl std::fmt::Debug for NodeSearchSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeSearchSession")
            .field("sent", &self.sent)
            .field("pages", &self.pages)
            .field("ordered", &self.ordered.len())
            .field("exhausted", &self.exhausted)
            .finish()
    }
}

impl NodeSearchSession {
    /// Opens a session over the node's (already committed) groups: plans
    /// every group, runs the classic (non-ordered) share to completion
    /// through `run_classic` — the Index Node supplies its worker-pool
    /// executor, exactly as for a one-shot search — and records the
    /// ordered plans for incremental pulling. The shared classic bound is
    /// seeded with each ordered stream's first hit, and the pulled hit is
    /// kept as that stream's **primed head**: the first page feeds it into
    /// the merge directly (per-stream resume cursors skip past it), so
    /// session opens never pay a second tree descent per ordered ACG.
    ///
    /// Returns the session plus the open-phase stats (the classic scans;
    /// `acgs_consulted` and `access_paths` cover every group once).
    pub fn open<F>(
        groups: &[Arc<AcgEpoch>],
        request: &SearchRequest,
        run_classic: F,
    ) -> (NodeSearchSession, SearchStats)
    where
        F: FnOnce(Vec<ClassicTask>, Option<&Arc<GlobalCutoff>>) -> Vec<(Vec<Hit>, SearchStats)>,
    {
        let mut tasks: Vec<ClassicTask> = Vec::new();
        let mut ordered: Vec<OrderedState> = Vec::new();
        let mut stats = SearchStats::default();
        for (i, group) in groups.iter().enumerate() {
            let plan = plan_request(&**group, request);
            match plan.path {
                AccessPath::OrderedScan { attr, lo, hi, descending }
                    if group
                        .candidates_ordered(&attr, lo.clone(), hi.clone(), descending)
                        .is_some() =>
                {
                    stats.acgs_consulted += 1;
                    stats.access_paths.push((group.id(), AccessPathKind::OrderedScan));
                    ordered.push(OrderedState {
                        acg: group.id(),
                        attr,
                        lo,
                        hi,
                        descending,
                        group_len: group.len(),
                        scanned: 0,
                        primed: None,
                        seed_cursor: None,
                        done: false,
                    });
                }
                AccessPath::OrderedScan { .. } => {
                    // Unreachable via the planner; degrade to a full scan.
                    tasks.push(ClassicTask { group: i, plan: Plan { path: AccessPath::FullScan } });
                }
                path => tasks.push(ClassicTask { group: i, plan: Plan { path } }),
            }
        }

        let cutoff = match request.limit {
            Some(k) if k > 0 && !tasks.is_empty() => {
                Some(Arc::new(GlobalCutoff::new(request.sort.clone(), k)))
            }
            _ => None,
        };
        // Prime every ordered stream with its first hit. The pull is work
        // the first page needs anyway; the hit (a) seeds the shared
        // classic bound — each stream's first admitted hit is the best it
        // will ever offer the merge — and (b) is *kept* as the stream's
        // primed head: the first page feeds it straight into the merge,
        // with a per-stream resume cursor skipping past it, instead of
        // re-deriving it with an extra tree descent per ordered ACG (the
        // PR-4 documented tradeoff, now gone).
        if request.limit != Some(0) {
            for state in &mut ordered {
                let Some(group) = groups.iter().find(|g| g.id() == state.acg) else {
                    continue;
                };
                let (lo, hi) = cursor_scan_bounds(
                    request.cursor.as_ref(),
                    state.lo.clone(),
                    state.hi.clone(),
                    state.descending,
                );
                if let Some(iter) = group.candidates_ordered(&state.attr, lo, hi, state.descending)
                {
                    let mut stream = OrderedHitStream::new(iter, group, request);

                    let first = stream.next();
                    state.scanned += stream.scanned();
                    stats.candidates_scanned += stream.scanned();
                    match first {
                        Some(hit) => {
                            if let Some(cutoff) = &cutoff {
                                cutoff.try_admit(hit.sort_key.as_ref(), hit.file);
                            }
                            state.seed_cursor = Some(Cursor::after(&hit));
                            state.primed = Some(hit);
                        }
                        // The whole stream is dry: nothing to page.
                        None => state.done = true,
                    }
                }
            }
        }

        let classic_results = run_classic(tasks, cutoff.as_ref());
        let mut lists = Vec::with_capacity(classic_results.len());
        for (hits, task_stats) in classic_results {
            stats.absorb(task_stats);
            lists.push(hits);
        }
        if let Some(cutoff) = &cutoff {
            stats.bound_pruned = cutoff.pruned();
        }
        let classic = merge_sorted_hits(lists, &request.sort, request.limit);

        let remaining = request.limit.unwrap_or(usize::MAX);
        let session = NodeSearchSession {
            request: request.clone(),
            pinned: groups.to_vec(),
            classic,
            classic_ix: 0,
            ordered,
            resume: None,
            remaining,
            sent: 0,
            pages: 0,
            exhausted: false,
        };
        (session, stats)
    }

    /// Total hits shipped so far.
    pub fn sent(&self) -> usize {
        self.sent
    }

    /// Pages served so far (the open's first page included).
    pub fn pages(&self) -> u64 {
        self.pages
    }

    /// Whether the session has nothing left to ship.
    pub fn exhausted(&self) -> bool {
        self.exhausted
    }

    /// Pulls the next page of at most `page` hits **from the epochs
    /// pinned at open**: every page of the session reads the same
    /// committed state regardless of commits, index changes or snapshots
    /// in between. This is the Index Node's serving path.
    pub fn pull_pinned(&mut self, page: usize) -> SessionPage {
        let pinned = self.pinned.clone();
        self.pull(|acg| pinned.iter().find(|e| e.id() == acg).map(|e| &**e), page)
    }

    /// Pulls the next page of at most `page` hits against an explicit
    /// epoch `lookup` (read-committed-per-page when the caller resolves
    /// live groups); an ACG that no longer resolves — it migrated away
    /// mid-session — simply stops contributing.
    ///
    /// Each pull re-creates the ordered B+-tree walks positioned after the
    /// session's resume cursor (one tree descent each), pulls everything
    /// through one lazy k-way merge bounded to the page, and suspends
    /// again. Pages are globally non-decreasing in the request's sort
    /// order across pulls.
    ///
    /// `page` is clamped to at least 1: a zero-size pull must still make
    /// progress, or a wire caller could ping an empty page forever while
    /// re-stamping the session against LRU eviction.
    pub fn pull<'g>(
        &mut self,
        lookup: impl Fn(AcgId) -> Option<&'g AcgEpoch>,
        page: usize,
    ) -> SessionPage {
        self.pages += 1;
        let mut stats = SearchStats { pages_pulled: 1, ..SearchStats::default() };
        let k_page = page.max(1).min(self.remaining);
        if k_page == 0 {
            self.exhausted = self.remaining == 0;
            return SessionPage { hits: Vec::new(), stats, exhausted: self.exhausted };
        }

        let mut req = self.request.clone();
        if let Some(resume) = &self.resume {
            req.cursor = Some(resume.clone());
        }
        // The classic list is consumed strictly in order: everything at or
        // before the resume cursor was either shipped or deduplicated by
        // an earlier page's merge, so the cursor filter *is* the consume
        // pointer — no per-hit provenance tracking needed.
        if let Some(cursor) = &req.cursor {
            while self.classic_ix < self.classic.len() {
                let hit = &self.classic[self.classic_ix];
                if cursor.admits(&req.sort, hit.sort_key.as_ref(), hit.file) {
                    break;
                }
                self.classic_ix += 1;
            }
        }

        enum Src<'a> {
            List(std::iter::Cloned<std::slice::Iter<'a, Hit>>),
            /// An ordered walk, led by its primed head on the first pull
            /// (the seed hit from open, fed to the merge without another
            /// tree descent; the walk behind it resumes past the head).
            Stream {
                head: Option<Hit>,
                stream: OrderedHitStream<'a>,
            },
        }
        impl Iterator for Src<'_> {
            type Item = Hit;
            fn next(&mut self) -> Option<Hit> {
                match self {
                    Src::List(iter) => iter.next(),
                    Src::Stream { head, stream } => head.take().or_else(|| stream.next()),
                }
            }
        }

        // Per-stream pull plans. A stream still holding its primed head
        // resumes its walk from the seed cursor (skipping the head it is
        // about to feed) — only those streams need a request of their own
        // (first pull only); everyone else shares `req`. An unconsumed
        // head is never lost: the merge leaves it strictly after
        // everything shipped, so the session cursor re-derives it on the
        // next pull.
        struct StreamPrep {
            ix: usize,
            head: Option<Hit>,
            /// `None` = use the shared session request.
            req: Option<SearchRequest>,
        }
        let mut preps: Vec<StreamPrep> = Vec::new();
        for i in 0..self.ordered.len() {
            if self.ordered[i].done {
                continue;
            }
            let head = self.ordered[i].primed.take();
            let sreq = head.is_some().then(|| {
                let mut sreq = req.clone();
                sreq.cursor = self.ordered[i].seed_cursor.clone();
                sreq
            });
            preps.push(StreamPrep { ix: i, head, req: sreq });
        }

        let classic_tail = &self.classic[self.classic_ix..];
        let mut sources: Vec<Src<'_>> = vec![Src::List(classic_tail.iter().cloned())];
        // Which `ordered` entry each stream source (sources[1..]) serves.
        let mut stream_of: Vec<usize> = Vec::new();
        for prep in &mut preps {
            let i = prep.ix;
            let Some(group) = lookup(self.ordered[i].acg) else {
                // ACG migrated away mid-session: degrade, keep the rest.
                self.ordered[i].done = true;
                continue;
            };
            let stream_req: &SearchRequest = prep.req.as_ref().unwrap_or(&req);
            let (lo, hi) = cursor_scan_bounds(
                stream_req.cursor.as_ref(),
                self.ordered[i].lo.clone(),
                self.ordered[i].hi.clone(),
                self.ordered[i].descending,
            );
            match group.candidates_ordered(
                &self.ordered[i].attr,
                lo,
                hi,
                self.ordered[i].descending,
            ) {
                Some(iter) => {
                    stream_of.push(i);
                    let head = prep.head.take();
                    sources.push(Src::Stream {
                        head,
                        stream: OrderedHitStream::new(iter, group, stream_req),
                    });
                }
                // The covering index was dropped mid-session: degrade.
                None => self.ordered[i].done = true,
            }
        }

        let hits = merge_hit_sources(&mut sources, &req.sort, Some(k_page));

        for (src, &i) in sources[1..].iter().zip(&stream_of) {
            let Src::Stream { stream, .. } = src else {
                unreachable!("streams follow the classic list")
            };
            self.ordered[i].scanned += stream.scanned();
            stats.candidates_scanned += stream.scanned();
            // `exhausted` implies every pulled hit (the head included) was
            // consumed by the merge, so nothing unshipped can be lost.
            if stream.exhausted() {
                self.ordered[i].done = true;
            }
        }
        drop(sources);
        drop(preps);

        self.sent += hits.len();
        self.remaining = self.remaining.saturating_sub(hits.len());
        if let Some(last) = hits.last() {
            self.resume = Some(Cursor::after(last));
        }
        // A short page means every source ran dry; a full budget means the
        // session served its whole entitlement.
        self.exhausted = hits.len() < k_page || self.remaining == 0;
        if self.exhausted {
            self.classic_ix = self.classic.len();
        }
        stats.hits_shipped = hits.len();
        stats.retained_peak = hits.len();
        SessionPage { hits, stats, exhausted: self.exhausted }
    }

    /// Closes the session, reporting what the streaming protocol saved:
    /// [`SearchStats::node_hits_unsent`] (the rest of this node's one-shot
    /// `k` entitlement, for limited sessions that were not exhausted) and
    /// the ordered candidates never examined ([`SearchStats::merge_skipped`]
    /// / [`SearchStats::candidates_skipped`], against each group's size at
    /// open).
    pub fn close(&mut self) -> SearchStats {
        let mut stats = SearchStats::default();
        if !self.exhausted && self.request.limit.is_some() {
            stats.node_hits_unsent = self.remaining;
        }
        for state in &self.ordered {
            if !state.done {
                let skipped = state.group_len.saturating_sub(state.scanned);
                stats.candidates_skipped += skipped;
                stats.merge_skipped += skipped;
                stats.early_terminated += 1;
            }
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{execute_classic, execute_node_request_sequential};
    use crate::request::{next_cursor, SortKey};
    use propeller_index::{AcgIndexGroup, FileRecord, GroupConfig, IndexOp};
    use propeller_types::{FileId, InodeAttrs, Timestamp};

    fn now() -> Timestamp {
        Timestamp::from_secs(1_000)
    }

    fn seeded_groups(acgs: u64, per_acg: u64, indexed: bool) -> Vec<AcgIndexGroup> {
        (0..acgs)
            .map(|acg| {
                let mut g = AcgIndexGroup::new(
                    AcgId::new(acg + 1),
                    GroupConfig { default_indices: indexed, ..GroupConfig::default() },
                );
                for i in 0..per_acg {
                    let id = acg * 1_000 + i;
                    let rec = FileRecord::new(
                        FileId::new(id),
                        InodeAttrs::builder().size(((id * 7919) % 4096) << 10).build(),
                    );
                    g.enqueue(IndexOp::Upsert(rec), now()).unwrap();
                }
                g.commit(now()).unwrap();
                g
            })
            .collect()
    }

    fn pins(groups: &[AcgIndexGroup]) -> Vec<Arc<AcgEpoch>> {
        groups.iter().map(|g| g.pin()).collect()
    }

    fn run_inline(
        groups: &[Arc<AcgEpoch>],
        request: &SearchRequest,
    ) -> impl FnOnce(Vec<ClassicTask>, Option<&Arc<GlobalCutoff>>) -> crate::ClassicResults {
        let request = request.clone();
        let groups: Vec<Arc<AcgEpoch>> = groups.to_vec();
        move |tasks, cutoff| {
            tasks
                .into_iter()
                .map(|t| execute_classic(&groups[t.group], &request, t.plan, cutoff.map(|c| &**c)))
                .collect()
        }
    }

    fn drain(
        groups: &[Arc<AcgEpoch>],
        request: &SearchRequest,
        page: usize,
    ) -> (Vec<Hit>, NodeSearchSession) {
        let (mut session, _) =
            NodeSearchSession::open(groups, request, run_inline(groups, request));
        let mut all = Vec::new();
        loop {
            let p = session.pull_pinned(page);
            all.extend(p.hits);
            if p.exhausted {
                break;
            }
        }
        (all, session)
    }

    #[test]
    fn paged_session_concatenates_to_the_one_shot_result() {
        let groups = seeded_groups(4, 100, true);
        let refs = pins(&groups);
        let epochs: Vec<&AcgEpoch> = refs.iter().map(|e| &**e).collect();
        let q = crate::Query::parse("size>0", now()).unwrap();
        for (limit, sort) in [
            (Some(25), SortKey::Descending(propeller_types::AttrName::Size)),
            (Some(7), SortKey::Ascending(propeller_types::AttrName::Size)),
            (Some(400), SortKey::FileId),
            (None, SortKey::Descending(propeller_types::AttrName::Size)),
        ] {
            let mut req = SearchRequest::new(q.predicate.clone()).sorted_by(sort);
            if let Some(k) = limit {
                req = req.with_limit(k);
            }
            let (one_shot, _) = execute_node_request_sequential(&epochs, &req);
            for page in [1usize, 3, 16, 1000] {
                let (paged, _) = drain(&refs, &req, page);
                assert_eq!(paged, one_shot, "limit {limit:?} page {page}");
            }
        }
    }

    #[test]
    fn session_scans_only_what_the_shipped_pages_needed() {
        // 16 ordered ACGs, top-100 pulled as one page of 10: the session
        // must scan ~one page's worth of candidates, not k per ACG.
        let groups = seeded_groups(16, 200, true);
        let refs = pins(&groups);
        let q = crate::Query::parse("size>0", now()).unwrap();
        let req = SearchRequest::new(q.predicate)
            .with_limit(100)
            .sorted_by(SortKey::Descending(propeller_types::AttrName::Size));
        let (mut session, open_stats) =
            NodeSearchSession::open(&refs, &req, run_inline(&refs, &req));
        assert_eq!(open_stats.acgs_consulted, 16);
        let page = session.pull_pinned(10);
        assert_eq!(page.hits.len(), 10);
        assert!(!page.exhausted);
        assert!(
            page.stats.candidates_scanned <= 10 + refs.len(),
            "one page must cost ~page+streams candidates, scanned {}",
            page.stats.candidates_scanned
        );
        let close = session.close();
        assert_eq!(close.node_hits_unsent, 90, "the unshipped entitlement is witnessed");
        assert!(close.merge_skipped > 0);
        assert_eq!(close.early_terminated, 16);
    }

    #[test]
    fn seed_hits_are_primed_into_the_first_page_without_rederivation() {
        // The double-work the ROADMAP documented: the first pull used to
        // re-derive every stream's first hit (one tree descent + candidate
        // scan per ordered ACG) because the open discarded the seed pulls.
        // With primed heads, the first page's merge starts from the stored
        // seeds, so the pull scans at most one boundary candidate per
        // stream it actually refills — `pull ≤ hits`, where the old path
        // cost `hits + streams`.
        let groups = seeded_groups(4, 100, true);
        let refs = pins(&groups);
        let q = crate::Query::parse("size>0", now()).unwrap();
        let req = SearchRequest::new(q.predicate)
            .with_limit(20)
            .sorted_by(SortKey::Descending(propeller_types::AttrName::Size));
        let (mut session, open_stats) =
            NodeSearchSession::open(&refs, &req, run_inline(&refs, &req));
        assert_eq!(open_stats.candidates_scanned, 4, "open pulls exactly one seed per stream");
        let page = session.pull_pinned(20);
        assert_eq!(page.hits.len(), 20);
        assert!(
            page.stats.candidates_scanned <= page.hits.len() + refs.len(),
            "first page cost stays within hits + one boundary scan per stream: \
             scanned {} for {} hits over {} streams",
            page.stats.candidates_scanned,
            page.hits.len(),
            refs.len()
        );
        // The cold-stream payoff: 16 streams, a 4-hit first page. The old
        // path paid one derivation per stream just to prime the merge
        // (page + streams = 20 scans); primed heads prime it for free, so
        // only the few refilled streams scan at all.
        let groups = seeded_groups(16, 100, true);
        let refs = pins(&groups);
        let q = crate::Query::parse("size>0", now()).unwrap();
        let req = SearchRequest::new(q.predicate)
            .with_limit(100)
            .sorted_by(SortKey::Descending(propeller_types::AttrName::Size));
        let (mut session, open_stats) =
            NodeSearchSession::open(&refs, &req, run_inline(&refs, &req));
        assert_eq!(open_stats.candidates_scanned, 16);
        let page = session.pull_pinned(4);
        assert_eq!(page.hits.len(), 4);
        assert!(
            page.stats.candidates_scanned <= 2 * page.hits.len(),
            "cold streams must not be touched: scanned {} for a 4-hit page over 16 streams",
            page.stats.candidates_scanned
        );
        // Draining the rest still concatenates to the one-shot result.
        let epochs: Vec<&AcgEpoch> = refs.iter().map(|e| &**e).collect();
        let (one_shot, _) = execute_node_request_sequential(&epochs, &req);
        let mut all = page.hits.clone();
        loop {
            let p = session.pull_pinned(16);
            all.extend(p.hits);
            if p.exhausted {
                break;
            }
        }
        assert_eq!(all, one_shot);
    }

    #[test]
    fn session_pages_match_cursor_pagination_of_the_one_shot_path() {
        let groups = seeded_groups(3, 120, true);
        let refs = pins(&groups);
        let epochs: Vec<&AcgEpoch> = refs.iter().map(|e| &**e).collect();
        let q = crate::Query::parse("size>100k", now()).unwrap();
        let sort = SortKey::Descending(propeller_types::AttrName::Size);
        let req = SearchRequest::new(q.predicate.clone()).with_limit(50).sorted_by(sort.clone());
        let (streamed, _) = drain(&refs, &req, 8);

        // Cursor pagination over the one-shot node path, page size 8.
        let mut paged = Vec::new();
        let mut cursor = None;
        loop {
            let mut page_req =
                SearchRequest::new(q.predicate.clone()).with_limit(8).sorted_by(sort.clone());
            if let Some(c) = cursor.take() {
                page_req = page_req.after(c);
            }
            let (hits, _) = execute_node_request_sequential(&epochs, &page_req);
            if hits.is_empty() {
                break;
            }
            cursor = next_cursor(&hits, Some(8));
            paged.extend(hits);
            if paged.len() >= 50 || cursor.is_none() {
                break;
            }
        }
        paged.truncate(50);
        assert_eq!(streamed, paged);
    }

    #[test]
    fn mixed_plan_session_pages_classic_and_ordered_together() {
        // Two ordered groups plus one indexless (classic full-scan) group.
        let mut groups = seeded_groups(2, 150, true);
        let mut indexless = AcgIndexGroup::new(
            AcgId::new(9),
            GroupConfig { default_indices: false, ..GroupConfig::default() },
        );
        for i in 0..150u64 {
            let id = 9_000 + i;
            let rec = FileRecord::new(
                FileId::new(id),
                InodeAttrs::builder().size(((id * 7919) % 4096) << 10).build(),
            );
            indexless.enqueue(IndexOp::Upsert(rec), now()).unwrap();
        }
        indexless.commit(now()).unwrap();
        groups.push(indexless);
        let refs = pins(&groups);
        let epochs: Vec<&AcgEpoch> = refs.iter().map(|e| &**e).collect();
        let q = crate::Query::parse("size>0", now()).unwrap();
        let req = SearchRequest::new(q.predicate)
            .with_limit(60)
            .sorted_by(SortKey::Descending(propeller_types::AttrName::Size));
        let (one_shot, _) = execute_node_request_sequential(&epochs, &req);
        let (paged, _) = drain(&refs, &req, 7);
        assert_eq!(paged, one_shot);
    }

    #[test]
    fn vanished_acg_mid_session_degrades_without_panic() {
        let groups = seeded_groups(3, 80, true);
        let refs = pins(&groups);
        let q = crate::Query::parse("size>0", now()).unwrap();
        let req = SearchRequest::new(q.predicate)
            .with_limit(100)
            .sorted_by(SortKey::Descending(propeller_types::AttrName::Size));
        let (mut session, _) = NodeSearchSession::open(&refs, &req, run_inline(&refs, &req));
        let first = session.pull_pinned(10);
        // ACG 2 "migrates away": later lookup-based pulls no longer
        // resolve it (a caller opting out of pinned serving).
        let remaining: Vec<&AcgEpoch> =
            refs.iter().filter(|e| e.id() != AcgId::new(2)).map(|e| &**e).collect();
        let mut rest = first.hits.clone();
        loop {
            let p = session.pull(|acg| remaining.iter().copied().find(|g| g.id() == acg), 10);
            rest.extend(p.hits);
            if p.exhausted {
                break;
            }
        }
        // Still sorted, unique, and a superset of the surviving groups'
        // contribution past the first page.
        assert!(rest
            .windows(2)
            .all(|w| req.sort.cmp_hits(&w[0], &w[1]) == std::cmp::Ordering::Less));
        let mut files: Vec<FileId> = rest.iter().map(|h| h.file).collect();
        files.sort_unstable();
        files.dedup();
        assert_eq!(files.len(), rest.len(), "no duplicates across pages");
    }

    #[test]
    fn zero_limit_session_is_immediately_exhausted() {
        let groups = seeded_groups(1, 10, true);
        let refs = pins(&groups);
        let q = crate::Query::parse("size>0", now()).unwrap();
        let req = SearchRequest::new(q.predicate).with_limit(0);
        let (mut session, _) = NodeSearchSession::open(&refs, &req, run_inline(&refs, &req));
        let page = session.pull_pinned(16);
        assert!(page.hits.is_empty());
        assert!(page.exhausted);
        assert_eq!(session.close().node_hits_unsent, 0);
    }
}
