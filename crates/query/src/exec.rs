//! Plan execution with full-predicate post-filtering.

use propeller_index::{AcgIndexGroup, FileRecord};
use propeller_types::{AttrName, FileId, Result, Timestamp, Value};

use crate::ast::Predicate;
use crate::plan::{plan, AccessPath};

/// Evaluates the predicate against one record (exact semantics; the access
/// path only pre-filters). Multi-valued attributes (keywords, repeated
/// custom attributes) match when *any* value satisfies the comparison.
///
/// # Examples
///
/// ```
/// use propeller_index::FileRecord;
/// use propeller_query::{matches_record, Query};
/// use propeller_types::{FileId, InodeAttrs, Timestamp};
///
/// let rec = FileRecord::new(
///     FileId::new(1),
///     InodeAttrs::builder().size(32 << 20).build(),
/// );
/// let q = Query::parse("size>16m", Timestamp::from_secs(0)).unwrap();
/// assert!(matches_record(&rec, &q.predicate));
/// ```
pub fn matches_record(record: &FileRecord, pred: &Predicate) -> bool {
    match pred {
        Predicate::True => true,
        Predicate::Keyword(w) => record.keywords.iter().any(|k| k == w),
        Predicate::Compare { attr, op, value } => {
            attr_values(record, attr).iter().any(|v| op.eval(v, value))
        }
        Predicate::And(ps) => ps.iter().all(|p| matches_record(record, p)),
        Predicate::Or(ps) => ps.iter().any(|p| matches_record(record, p)),
        Predicate::Not(p) => !matches_record(record, p),
    }
}

fn attr_values(record: &FileRecord, attr: &AttrName) -> Vec<Value> {
    match attr {
        AttrName::Keyword => record.keywords.iter().map(|k| Value::from(k.as_str())).collect(),
        AttrName::Custom(name) => record
            .custom
            .iter()
            .filter(|(n, _)| n == name)
            .map(|(_, v)| v.clone())
            .collect(),
        builtin => record.attrs.get(builtin).into_iter().collect(),
    }
}

/// Executes `pred` against a (committed) group: plans an access path,
/// fetches the candidate superset, post-filters with the exact predicate.
/// Results are sorted by file id.
///
/// Callers are responsible for committing the group first; use [`search`]
/// for the paper-faithful commit-then-search entry point.
pub fn execute(group: &AcgIndexGroup, pred: &Predicate) -> Vec<FileId> {
    let plan = plan(group, pred);
    let candidates: Vec<FileId> = match plan.path {
        AccessPath::HashEq { attr, value } => group.lookup_eq(&attr, &value),
        AccessPath::BTreeRange { attr, lo, hi } => group.lookup_range(&attr, lo, hi),
        AccessPath::KdBox { attrs, lo, hi } => group
            .lookup_kd(&attrs, &lo, &hi)
            .unwrap_or_else(|| group.scan(|_| true)),
        AccessPath::FullScan => {
            // Scan evaluates the predicate directly; no second pass needed.
            return group.scan(|r| matches_record(r, pred));
        }
    };
    let mut out: Vec<FileId> = candidates
        .into_iter()
        .filter(|f| group.record(*f).is_some_and(|r| matches_record(r, pred)))
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// The paper-faithful search entry point: **commit buffered index updates
/// first** ("it must commit all modifications into the file indices before
/// performing a file-search request in order to guarantee the consistency
/// of results", §V-D), then execute.
///
/// # Errors
///
/// Returns an error if the commit's WAL truncation fails.
pub fn search(
    group: &mut AcgIndexGroup,
    pred: &Predicate,
    now: Timestamp,
) -> Result<Vec<FileId>> {
    group.commit(now)?;
    Ok(execute(group, pred))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Query;
    use propeller_index::{GroupConfig, IndexOp};
    use propeller_types::{AcgId, InodeAttrs};

    fn now() -> Timestamp {
        Timestamp::from_secs(100 * 86_400)
    }

    fn seeded_group() -> AcgIndexGroup {
        let mut g = AcgIndexGroup::new(AcgId::new(1), GroupConfig::default());
        for i in 0..500u64 {
            let rec = FileRecord::new(
                FileId::new(i),
                InodeAttrs::builder()
                    .size(i * 1024 * 1024) // i MiB
                    .mtime(now() - propeller_types::Duration::from_secs(i * 3600)) // i hours old
                    .uid((i % 4) as u32)
                    .build(),
            )
            .with_keyword(if i % 10 == 0 { "firefox" } else { "other" });
            g.enqueue(IndexOp::Upsert(rec), now()).unwrap();
        }
        g.commit(now()).unwrap();
        g
    }

    fn run(g: &AcgIndexGroup, text: &str) -> Vec<FileId> {
        let q = Query::parse(text, now()).unwrap();
        execute(g, &q.predicate)
    }

    fn brute(g: &AcgIndexGroup, text: &str) -> Vec<FileId> {
        let q = Query::parse(text, now()).unwrap();
        g.scan(|r| matches_record(r, &q.predicate))
    }

    #[test]
    fn size_range_matches_brute_force() {
        let g = seeded_group();
        for q in ["size>16m", "size>=100m", "size<1m", "size>100m & size<200m"] {
            assert_eq!(run(&g, q), brute(&g, q), "query {q}");
        }
        assert_eq!(run(&g, "size>16m").len(), 500 - 17);
    }

    #[test]
    fn paper_query_1_size_and_mtime() {
        let g = seeded_group();
        let q = "size>100m & mtime<24h";
        let got = run(&g, q);
        assert_eq!(got, brute(&g, q));
        // i > 100 (size) and i < 24 (age in hours): empty intersection.
        assert!(got.is_empty());
        let q2 = "size>10m & mtime<24h";
        let got2 = run(&g, q2);
        assert_eq!(got2, brute(&g, q2));
        // 10 < i < 24.
        assert_eq!(got2.len(), 13);
    }

    #[test]
    fn paper_query_2_keyword_and_mtime() {
        let g = seeded_group();
        let q = "keyword:firefox & mtime<1week";
        let got = run(&g, q);
        assert_eq!(got, brute(&g, q));
        // Multiples of 10 younger than 168 hours: 0,10,...,160 => 17.
        assert_eq!(got.len(), 17);
    }

    #[test]
    fn disjunction_and_negation() {
        let g = seeded_group();
        for q in [
            "size<1m | size>490m",
            "!(keyword:firefox)",
            "keyword:firefox | keyword:other",
            "!(size>10m) & uid=1",
        ] {
            assert_eq!(run(&g, q), brute(&g, q), "query {q}");
        }
    }

    #[test]
    fn match_all() {
        let g = seeded_group();
        assert_eq!(run(&g, "*").len(), 500);
    }

    #[test]
    fn results_are_sorted_and_unique() {
        let g = seeded_group();
        let r = run(&g, "size>=0");
        let mut sorted = r.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(r, sorted);
    }

    #[test]
    fn search_commits_pending_updates_first() {
        let mut g = seeded_group();
        let rec = FileRecord::new(
            FileId::new(9999),
            InodeAttrs::builder().size(1 << 40).build(),
        );
        g.enqueue(IndexOp::Upsert(rec), now()).unwrap();
        // Plain execute (no commit) must not see it...
        assert!(!run(&g, "size>1t").contains(&FileId::new(9999)));
        // ...but search (commit-then-execute) must.
        let q = Query::parse("size>=1t", now()).unwrap();
        let got = search(&mut g, &q.predicate, now()).unwrap();
        assert_eq!(got, vec![FileId::new(9999)]);
    }

    #[test]
    fn empty_group_returns_empty() {
        let g = AcgIndexGroup::new(AcgId::new(2), GroupConfig::default());
        assert!(run(&g, "size>0").is_empty());
        assert!(run(&g, "*").is_empty());
    }

    #[test]
    fn custom_attr_queries() {
        let mut g = AcgIndexGroup::new(AcgId::new(3), GroupConfig::default());
        for i in 0..20u64 {
            let rec = FileRecord::new(FileId::new(i), InodeAttrs::default())
                .with_custom("energy", Value::F64(-(i as f64)));
            g.enqueue(IndexOp::Upsert(rec), now()).unwrap();
        }
        g.commit(now()).unwrap();
        let q = Query::parse("energy<-15", now()).unwrap();
        let got = execute(&g, &q.predicate);
        assert_eq!(got.len(), 4); // -16..-19
    }

    #[test]
    fn matches_record_multivalued_any_semantics() {
        let rec = FileRecord::new(FileId::new(1), InodeAttrs::default())
            .with_keyword("alpha")
            .with_keyword("beta");
        assert!(matches_record(&rec, &Predicate::Keyword("beta".into())));
        assert!(!matches_record(&rec, &Predicate::Keyword("gamma".into())));
    }
}
