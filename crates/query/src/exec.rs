//! Plan execution with full-predicate post-filtering.
//!
//! The request path ([`execute_request`]) is a *streaming* pipeline:
//! candidates flow straight from the index structures as `&FileRecord`
//! (no `Vec<FileId>` superset, no re-hash through the record store),
//! predicate evaluation compares values in place (no per-candidate
//! clones), and hits are only materialized once the bounded top-k
//! accumulator decides they will be retained. When the planner emits an
//! [`AccessPath::OrderedScan`] — a limited request sorted by a
//! B+-tree-covered attribute — candidates arrive in final result order
//! and execution **terminates after `limit` admitted hits**, witnessed by
//! [`SearchStats::early_terminated`] and [`SearchStats::candidates_skipped`].
//!
//! A multi-ACG Index Node goes one step further with
//! [`execute_node_request`], the **node-global k cutoff**: every ACG whose
//! plan is an ordered scan contributes a resumable lazy
//! [`OrderedHitStream`], all streams are pulled through one k-way merge,
//! and the node stops after `k` total admitted hits *across* its ACGs
//! instead of `k` per ACG ([`SearchStats::merge_skipped`]). ACGs on
//! non-ordered plans still run their bounded top-k scans — in parallel, on
//! the node's worker pool — but share one [`GlobalCutoff`] so each can
//! prune candidates that already fell out of the merged node-wide top-k
//! ([`SearchStats::bound_pruned`]).

use std::collections::{HashMap, HashSet};
use std::ops::Bound;
use std::sync::Arc;

use propeller_index::{
    bm25_block_bound, bm25_idf, bm25_score, bm25_term_bound, record_contains_all,
    record_contains_any, record_contains_phrase, record_tokens, AcgEpoch, AcgIndexGroup,
    FileRecord, InvertedIndex, PostingsCursor, BLOCK,
};
use propeller_types::{AcgId, AttrName, FileId, Result, Timestamp, Value};

use crate::ast::{CompareOp, ContainsMode, Predicate};
use crate::plan::{plan, plan_request, AccessPath, Plan};
use crate::request::{
    merge_hit_sources, AccessPathKind, Cursor, GlobalCutoff, Hit, SearchRequest, SearchStats,
    SortKey, TopK,
};

/// Evaluates the predicate against one record (exact semantics; the access
/// path only pre-filters). Multi-valued attributes (keywords, repeated
/// custom attributes) match when *any* value satisfies the comparison.
///
/// # Examples
///
/// ```
/// use propeller_index::FileRecord;
/// use propeller_query::{matches_record, Query};
/// use propeller_types::{FileId, InodeAttrs, Timestamp};
///
/// let rec = FileRecord::new(
///     FileId::new(1),
///     InodeAttrs::builder().size(32 << 20).build(),
/// );
/// let q = Query::parse("size>16m", Timestamp::from_secs(0)).unwrap();
/// assert!(matches_record(&rec, &q.predicate));
/// ```
pub fn matches_record(record: &FileRecord, pred: &Predicate) -> bool {
    match pred {
        Predicate::True => true,
        Predicate::Keyword(w) => record.keywords.iter().any(|k| k == w),
        Predicate::Contains { terms, mode } => match mode {
            ContainsMode::All => record_contains_all(record, terms),
            ContainsMode::Any => record_contains_any(record, terms),
            ContainsMode::Phrase => record_contains_phrase(record, terms),
        },
        Predicate::Compare { attr, op, value } => compare_attr(record, attr, *op, value),
        Predicate::And(ps) => ps.iter().all(|p| matches_record(record, p)),
        Predicate::Or(ps) => ps.iter().any(|p| matches_record(record, p)),
        Predicate::Not(p) => !matches_record(record, p),
    }
}

/// Zero-allocation comparison: the record's values for `attr` are visited
/// in place — keywords compare as borrowed strings, custom values by
/// reference, builtin attrs as stack-built `Value`s. Nothing is cloned
/// into a temporary `Vec` per candidate.
fn compare_attr(record: &FileRecord, attr: &AttrName, op: CompareOp, rhs: &Value) -> bool {
    match attr {
        AttrName::Keyword => record.keywords.iter().any(|k| op.eval_str(k, rhs)),
        AttrName::Custom(name) => record.custom.iter().any(|(n, v)| n == name && op.eval(v, rhs)),
        builtin => record.attrs.get(builtin).is_some_and(|v| op.eval(&v, rhs)),
    }
}

/// Executes `pred` against a (committed) group: plans an access path,
/// fetches the candidate superset, post-filters with the exact predicate.
/// Results are sorted by file id.
///
/// This is the thin classic wrapper over [`execute_request`]; new callers
/// should build a [`SearchRequest`] and use the request path directly.
///
/// Callers are responsible for committing the group first; use [`search`]
/// for the paper-faithful commit-then-search entry point.
pub fn execute(group: &AcgEpoch, pred: &Predicate) -> Vec<FileId> {
    let request = SearchRequest::new(pred.clone());
    let (hits, _) = execute_request(group, &request);
    hits.into_iter().map(|h| h.file).collect()
}

/// Executes a [`SearchRequest`] against a (committed) group: plans an
/// access path, streams the candidate records through the exact predicate
/// and a bounded top-k accumulator, and projects the survivors into
/// [`Hit`]s.
///
/// When `request.limit` is `Some(k)`, at most `k` hits are retained at any
/// moment (witnessed by [`SearchStats::retained_peak`]) — the full result
/// set is never materialized, which is what makes cluster-scale top-k
/// searches affordable. The request's cursor is applied here too, so
/// pagination enjoys the same bound. Candidates stream as `&FileRecord`
/// directly off the index structures and hits are built only once the
/// accumulator admits them, so rejected candidates allocate nothing.
///
/// A limited request sorted by a B+-tree-covered builtin attribute runs as
/// an [`AccessPath::OrderedScan`]: the tree is walked in result order, the
/// residual predicate is checked per record (exact semantics), and the
/// scan **stops after `k` admitted hits** — see
/// [`SearchStats::early_terminated`] / [`SearchStats::candidates_skipped`].
///
/// Hits come back in the request's sort order. Callers are responsible
/// for committing the group first (the owning Index Node commits before
/// serving a search).
pub fn execute_request(group: &AcgEpoch, request: &SearchRequest) -> (Vec<Hit>, SearchStats) {
    let plan = plan_request(group, request);
    if let AccessPath::OrderedScan { attr, lo, hi, descending } = plan.path {
        let (lo, hi) = cursor_scan_bounds(request.cursor.as_ref(), lo, hi, descending);
        if let Some(iter) = group.candidates_ordered(&attr, lo, hi, descending) {
            let mut stream = OrderedHitStream::new(iter, group, request);
            let k = request.limit.unwrap_or(usize::MAX);
            let mut hits: Vec<Hit> = Vec::with_capacity(k.min(1024));
            while hits.len() < k {
                match stream.next() {
                    Some(hit) => hits.push(hit),
                    None => break,
                }
            }
            // The stream is in final result order: the k-th admitted hit
            // ends the query — everything behind it can only rank lower.
            let early = !stream.exhausted();
            let stats = SearchStats {
                acgs_consulted: 1,
                candidates_scanned: stream.scanned(),
                retained_peak: hits.len(),
                access_paths: vec![(group.id(), AccessPathKind::OrderedScan)],
                // Records in the group the cutoff never had to examine.
                candidates_skipped: if early {
                    group.len().saturating_sub(stream.scanned())
                } else {
                    0
                },
                early_terminated: usize::from(early),
                ..SearchStats::default()
            };
            return (hits, stats);
        }
        // Unreachable via the planner (it checks for the tree), but
        // degrade to a heap-based full scan rather than panic.
        return execute_classic(group, request, Plan { path: AccessPath::FullScan }, None);
    }
    execute_classic(group, request, plan, None)
}

/// Executes one group's share of a search along a classic (non-ordered)
/// access path: streams the candidates through the exact predicate, the
/// cursor and a bounded top-k accumulator. When `cutoff` is set (the
/// node-global retention bound of [`execute_node_request`]), matching
/// candidates that provably fell out of the merged node-wide top-k are
/// dropped before hit materialization.
pub fn execute_classic(
    group: &AcgEpoch,
    request: &SearchRequest,
    plan: Plan,
    cutoff: Option<&GlobalCutoff>,
) -> (Vec<Hit>, SearchStats) {
    if let AccessPath::Postings { terms, mode } = &plan.path {
        return execute_postings(group, request, terms, *mode, cutoff);
    }
    // A relevance sort on any other path (no inverted index, or the
    // contains term sits under an OR) needs explicit scoring: the sort key
    // is not a record attribute.
    if request.sort == SortKey::Relevance {
        return execute_relevance_scan(group, request, cutoff);
    }
    let kind = AccessPathKind::from(&plan.path);
    let mut scanned = 0usize;

    let (hits, retained_peak) = match plan.path {
        // An ordered plan reaching the classic executor means the covering
        // tree vanished between planning and execution; scan everything.
        AccessPath::FullScan | AccessPath::OrderedScan { .. } => {
            stream_topk(group.records(), group, request, &mut scanned, false, cutoff)
        }
        AccessPath::Postings { .. } => unreachable!("dispatched to execute_postings above"),
        AccessPath::HashEq { attr, value } => match group.candidates_eq(&attr, &value) {
            Some(iter) => stream_topk(iter, group, request, &mut scanned, false, cutoff),
            None => stream_topk(group.records(), group, request, &mut scanned, false, cutoff),
        },
        AccessPath::BTreeRange { attr, lo, hi } => {
            // A range over a multi-valued attribute may yield a record
            // once per in-range value; builtin attrs are single-valued.
            let dedup = !attr.is_inode_attr();
            match group.candidates_range(&attr, lo, hi) {
                Some(iter) => stream_topk(iter, group, request, &mut scanned, dedup, cutoff),
                None => stream_topk(group.records(), group, request, &mut scanned, false, cutoff),
            }
        }
        AccessPath::KdBox { attrs, lo, hi } => match group.candidates_kd(&attrs, &lo, &hi) {
            Some(iter) => stream_topk(iter, group, request, &mut scanned, false, cutoff),
            None => stream_topk(group.records(), group, request, &mut scanned, false, cutoff),
        },
    };

    let stats = SearchStats {
        acgs_consulted: 1,
        candidates_scanned: scanned,
        retained_peak,
        access_paths: vec![(group.id(), kind)],
        ..SearchStats::default()
    };
    (hits, stats)
}

/// Streams candidates through the predicate, cursor, the optional
/// node-global bound and the bounded top-k accumulator. `dedup` guards the
/// one access path (range over a multi-valued attribute) that can yield a
/// record more than once.
fn stream_topk<'a, I>(
    records: I,
    group: &AcgEpoch,
    request: &SearchRequest,
    scanned: &mut usize,
    dedup: bool,
    cutoff: Option<&GlobalCutoff>,
) -> (Vec<Hit>, usize)
where
    I: Iterator<Item = &'a FileRecord>,
{
    let mut topk = TopK::new(request.sort.clone(), request.limit);
    let mut seen: HashSet<FileId> = HashSet::new();
    for record in records {
        if dedup && !seen.insert(record.file) {
            continue;
        }
        *scanned += 1;
        if !matches_record(record, &request.predicate) {
            continue;
        }
        let key = request.sort.key_of(record);
        if let Some(cursor) = &request.cursor {
            if !cursor.admits(&request.sort, key.as_ref(), record.file) {
                continue;
            }
        }
        if let Some(cutoff) = cutoff {
            if !cutoff.try_admit(key.as_ref(), record.file) {
                continue;
            }
        }
        topk.offer(key.as_ref(), record.file, || Hit {
            file: record.file,
            acg: Some(group.id()),
            attrs: request.projection.project(record),
            sort_key: key.clone(),
        });
    }
    let peak = topk.peak_retained();
    (topk.into_sorted(), peak)
}

/// The unique `contains` terms mentioned anywhere in the predicate, in
/// order of first appearance — the term set a relevance sort scores with.
/// Every executor (postings, fallback scan, reference) scores the same
/// set, so ranked results agree across access paths.
pub(crate) fn relevance_terms(pred: &Predicate) -> Vec<String> {
    fn walk(p: &Predicate, out: &mut Vec<String>) {
        match p {
            Predicate::Contains { terms, .. } => {
                for term in terms {
                    if !out.contains(term) {
                        out.push(term.clone());
                    }
                }
            }
            Predicate::And(ps) | Predicate::Or(ps) => ps.iter().for_each(|p| walk(p, out)),
            Predicate::Not(p) => walk(p, out),
            Predicate::Compare { .. } | Predicate::Keyword(_) | Predicate::True => {}
        }
    }
    let mut out = Vec::new();
    walk(pred, &mut out);
    out
}

/// BM25 scoring against one group's corpus statistics — either straight
/// off the group's inverted index, or computed brute-force from the
/// records (the fallback for index-less groups and the independent oracle
/// of the reference executor). Both sides compute identical scores for
/// the same corpus: same `N`, `df`, document lengths and operation order.
enum RelevanceScorer<'a> {
    Indexed(&'a InvertedIndex),
    Brute { doc_count: usize, avg_doc_len: f64, df: HashMap<String, usize> },
}

impl<'a> RelevanceScorer<'a> {
    /// The cheapest accurate scorer for `group`: its inverted index when
    /// one exists, otherwise a brute statistics pass over the records.
    fn of_group(group: &'a AcgEpoch, terms: &[String]) -> Self {
        match group.inverted() {
            Some(inv) => RelevanceScorer::Indexed(inv),
            None => Self::brute(group.records(), terms),
        }
    }

    /// Corpus statistics computed from scratch (pass one of the two-pass
    /// fallback): documents-with-text count, average token length and the
    /// query terms' document frequencies.
    fn brute<I>(records: I, terms: &[String]) -> Self
    where
        I: Iterator<Item = &'a FileRecord>,
    {
        let mut doc_count = 0usize;
        let mut total_tokens = 0u64;
        let mut df: HashMap<String, usize> = terms.iter().map(|t| (t.clone(), 0)).collect();
        for record in records {
            let tokens = record_tokens(record);
            if tokens.is_empty() {
                continue;
            }
            doc_count += 1;
            total_tokens += tokens.len() as u64;
            for term in terms {
                if tokens.iter().any(|t| t == term) {
                    *df.get_mut(term).expect("seeded above") += 1;
                }
            }
        }
        let avg_doc_len = if doc_count == 0 { 0.0 } else { total_tokens as f64 / doc_count as f64 };
        RelevanceScorer::Brute { doc_count, avg_doc_len, df }
    }

    /// The record's BM25 score over `terms` (matching the inverted path's
    /// [`InvertedIndex::score_doc`] exactly).
    fn score(&self, record: &FileRecord, terms: &[String]) -> f64 {
        match self {
            RelevanceScorer::Indexed(inv) => inv.score_doc(record.file, terms),
            RelevanceScorer::Brute { doc_count, avg_doc_len, df } => {
                let tokens = record_tokens(record);
                let doc_len = tokens.len() as u32;
                if doc_len == 0 {
                    return 0.0;
                }
                let mut score = 0.0;
                for term in terms {
                    let tf = tokens.iter().filter(|t| *t == term).count() as u32;
                    if tf == 0 {
                        continue;
                    }
                    let idf = bm25_idf(*doc_count, df.get(term).copied().unwrap_or(0));
                    score += bm25_score(idf, tf, doc_len, *avg_doc_len);
                }
                score
            }
        }
    }
}

/// The relevance fallback for non-postings plans: a full scan that scores
/// every matching record against the group's corpus statistics. Correct on
/// any predicate (plans are candidate supersets; the full scan is the
/// widest one) — just never as fast as the postings merge.
fn execute_relevance_scan(
    group: &AcgEpoch,
    request: &SearchRequest,
    cutoff: Option<&GlobalCutoff>,
) -> (Vec<Hit>, SearchStats) {
    let terms = relevance_terms(&request.predicate);
    let scorer = RelevanceScorer::of_group(group, &terms);
    let mut topk = TopK::new(request.sort.clone(), request.limit);
    let mut scanned = 0usize;
    for record in group.records() {
        scanned += 1;
        if !matches_record(record, &request.predicate) {
            continue;
        }
        let key = Some(Value::F64(scorer.score(record, &terms)));
        if let Some(cursor) = &request.cursor {
            if !cursor.admits(&request.sort, key.as_ref(), record.file) {
                continue;
            }
        }
        if let Some(cutoff) = cutoff {
            if !cutoff.try_admit(key.as_ref(), record.file) {
                continue;
            }
        }
        topk.offer(key.as_ref(), record.file, || Hit {
            file: record.file,
            acg: Some(group.id()),
            attrs: request.projection.project(record),
            sort_key: key.clone(),
        });
    }
    let stats = SearchStats {
        acgs_consulted: 1,
        candidates_scanned: scanned,
        retained_peak: topk.peak_retained(),
        access_paths: vec![(group.id(), AccessPathKind::FullScan)],
        ..SearchStats::default()
    };
    (topk.into_sorted(), stats)
}

/// One query term's read state in a postings merge.
struct TermCursor<'a> {
    cursor: PostingsCursor<'a>,
    idf: f64,
    /// `bm25_term_bound(idf)` — the term's score ceiling over any document.
    bound: f64,
}

/// Executes an [`AccessPath::Postings`] plan: a document-at-a-time merge
/// of the inverted index's postings lists for `terms` — conjunctive
/// (`All`; `Phrase` adjacency stays in the post-filter) or disjunctive
/// (`Any`) — streaming survivors through the exact predicate, the cursor,
/// the optional node-global bound and the bounded top-k accumulator.
///
/// Under a relevance sort with a limit, the merge prunes with WAND-style
/// max-score bounds: once the top-k heap is full, its worst retained score
/// is a threshold θ, and
///
/// * conjunctive merges sum the per-term **block** bounds at each aligned
///   candidate — when the sum cannot beat θ, every document up to the
///   earliest block boundary is provably outranked and the lead cursor
///   jumps past it ([`SearchStats::wand_blocks_skipped`]),
/// * disjunctive merges use the classic pivot rule over per-term bounds —
///   cursors before the pivot seek forward without examining the postings
///   they jump ([`SearchStats::wand_docs_pruned`]).
///
/// Pruning never changes results: a pruned document's best possible score
/// ranks strictly below `limit` already-retained hits.
fn execute_postings(
    group: &AcgEpoch,
    request: &SearchRequest,
    terms: &[String],
    mode: ContainsMode,
    cutoff: Option<&GlobalCutoff>,
) -> (Vec<Hit>, SearchStats) {
    let stats_for = |scanned, peak, blocks, docs| SearchStats {
        acgs_consulted: 1,
        candidates_scanned: scanned,
        retained_peak: peak,
        access_paths: vec![(group.id(), AccessPathKind::Postings)],
        wand_blocks_skipped: blocks,
        wand_docs_pruned: docs,
        ..SearchStats::default()
    };
    if request.limit == Some(0) {
        return (Vec::new(), stats_for(0, 0, 0, 0));
    }
    let Some(inv) = group.inverted() else {
        // The index vanished between planning and execution; degrade to
        // the full-scan paths, which are always correct.
        if request.sort == SortKey::Relevance {
            return execute_relevance_scan(group, request, cutoff);
        }
        return execute_classic(group, request, Plan { path: AccessPath::FullScan }, cutoff);
    };

    // Unique merge terms; a conjunctive merge with any unknown term has an
    // empty intersection, a disjunctive one just drops it.
    let mut unique: Vec<&String> = Vec::with_capacity(terms.len());
    for term in terms {
        if !unique.contains(&term) {
            unique.push(term);
        }
    }
    let conjunctive = mode != ContainsMode::Any;
    let mut cursors: Vec<TermCursor<'_>> = Vec::with_capacity(unique.len());
    for term in &unique {
        match inv.term(term) {
            Some(postings) => {
                let idf = inv.idf(term);
                cursors.push(TermCursor {
                    cursor: PostingsCursor::new(postings),
                    idf,
                    bound: bm25_term_bound(idf),
                });
            }
            None if conjunctive => return (Vec::new(), stats_for(0, 0, 0, 0)),
            None => {}
        }
    }
    if cursors.is_empty() {
        return (Vec::new(), stats_for(0, 0, 0, 0));
    }
    // Conjunctive merges lead with the rarest term: fewest alignment
    // candidates, and the cursor that jumps furthest on a galloping seek.
    if conjunctive {
        cursors.sort_by_key(|t| t.cursor.remaining());
    }

    let relevance = request.sort == SortKey::Relevance;
    let scoring_terms = relevance_terms(&request.predicate);
    // The WAND bounds only cover the merged terms. If the request scores
    // extra terms (a second contains under an OR, say), a document's true
    // score can exceed the merge's bound and pruning would be unsound —
    // so the bound is only armed when the two term sets coincide.
    let bounds_sound = relevance && request.limit.is_some() && {
        let mut a: Vec<&String> = unique.clone();
        let mut b: Vec<&String> = scoring_terms.iter().collect();
        a.sort();
        b.sort();
        a == b
    };

    let mut topk = TopK::new(request.sort.clone(), request.limit);
    let mut scanned = 0usize;
    let mut blocks_skipped = 0usize;
    let mut docs_pruned = 0usize;

    // θ: the score a candidate must (weakly) beat — the worst retained
    // top-k score once the heap is full. Bounds below θ are prunable;
    // bounds equal to θ are not (an equal score can still win its file-id
    // tie-break).
    let theta = |topk: &TopK| -> Option<f64> {
        if !bounds_sound {
            return None;
        }
        topk.floor().and_then(|(key, _)| key.and_then(Value::as_f64))
    };

    // Evaluates one merged document: score (or attribute key), exact
    // predicate, cursor, node bound, offer.
    let eval = |file: FileId, topk: &mut TopK, scanned: &mut usize| {
        *scanned += 1;
        let Some(record) = group.record(file) else { return };
        let key = if relevance {
            Some(Value::F64(inv.score_doc(file, &scoring_terms)))
        } else {
            request.sort.key_of(record)
        };
        if !matches_record(record, &request.predicate) {
            return;
        }
        if let Some(cursor) = &request.cursor {
            if !cursor.admits(&request.sort, key.as_ref(), record.file) {
                return;
            }
        }
        if let Some(cutoff) = cutoff {
            if !cutoff.try_admit(key.as_ref(), record.file) {
                return;
            }
        }
        topk.offer(key.as_ref(), record.file, || Hit {
            file: record.file,
            acg: Some(group.id()),
            attrs: request.projection.project(record),
            sort_key: key.clone(),
        });
    };

    if conjunctive {
        // Align every cursor on one candidate document (galloping).
        'merge: while let Some(mut candidate) = cursors[0].cursor.current().map(|p| p.file) {
            loop {
                let mut aligned = true;
                for tc in cursors.iter_mut() {
                    match tc.cursor.seek(candidate) {
                        None => break 'merge,
                        Some(p) if p.file > candidate => {
                            candidate = p.file;
                            aligned = false;
                            break;
                        }
                        Some(_) => {}
                    }
                }
                if aligned {
                    break;
                }
            }
            // Block-max bound: within the current blocks (valid up to the
            // earliest block boundary), no document can score above the
            // summed per-block ceilings.
            if let Some(theta) = theta(&topk) {
                let bound: f64 =
                    cursors.iter().map(|t| bm25_block_bound(t.idf, t.cursor.block_max_tf())).sum();
                if bound < theta {
                    let boundary = cursors
                        .iter()
                        .filter_map(|t| t.cursor.block_last_file())
                        .min()
                        .expect("aligned cursors are not exhausted");
                    if boundary == FileId::MAX {
                        break;
                    }
                    let lead = &mut cursors[0].cursor;
                    let before = lead.position();
                    lead.seek(FileId::new(boundary.raw() + 1));
                    let after = lead.position();
                    docs_pruned += after - before;
                    blocks_skipped += after / BLOCK - before / BLOCK;
                    continue;
                }
            }
            eval(candidate, &mut topk, &mut scanned);
            for tc in cursors.iter_mut() {
                tc.cursor.advance();
            }
        }
    } else {
        loop {
            cursors.retain(|t| !t.cursor.is_exhausted());
            if cursors.is_empty() {
                break;
            }
            cursors.sort_by_key(|t| t.cursor.current().expect("retained above").file);
            match theta(&topk) {
                Some(theta) => {
                    // WAND pivot: the first document whose prefix of term
                    // bounds could reach θ. Everything before it is
                    // provably outranked.
                    let mut acc = 0.0;
                    let mut pivot = None;
                    for (i, tc) in cursors.iter().enumerate() {
                        acc += tc.bound;
                        if acc >= theta {
                            pivot = Some(i);
                            break;
                        }
                    }
                    let Some(pivot) = pivot else {
                        // Even all remaining terms together cannot reach
                        // θ: every unexamined posting is outranked.
                        docs_pruned += cursors.iter().map(|t| t.cursor.remaining()).sum::<usize>();
                        break;
                    };
                    let pivot_doc = cursors[pivot].cursor.current().expect("retained above").file;
                    let first_doc = cursors[0].cursor.current().expect("retained above").file;
                    if first_doc == pivot_doc {
                        eval(pivot_doc, &mut topk, &mut scanned);
                        for tc in cursors.iter_mut() {
                            if tc.cursor.current().is_some_and(|p| p.file == pivot_doc) {
                                tc.cursor.advance();
                            }
                        }
                    } else {
                        let lead = &mut cursors[0].cursor;
                        let before = lead.position();
                        lead.seek(pivot_doc);
                        let after = lead.position();
                        docs_pruned += after - before;
                        blocks_skipped += after / BLOCK - before / BLOCK;
                    }
                }
                None => {
                    // Plain DAAT-OR: evaluate the smallest current
                    // document, advancing every cursor sitting on it.
                    let doc = cursors[0].cursor.current().expect("retained above").file;
                    eval(doc, &mut topk, &mut scanned);
                    for tc in cursors.iter_mut() {
                        if tc.cursor.current().is_some_and(|p| p.file == doc) {
                            tc.cursor.advance();
                        }
                    }
                }
            }
        }
    }

    let peak = topk.peak_retained();
    (topk.into_sorted(), stats_for(scanned, peak, blocks_skipped, docs_pruned))
}

/// A resumable, lazily-pulled per-ACG ordered hit stream: wraps the
/// group's ordered candidate walk (a B+-tree traversal in result order)
/// and yields **hits** — each `next()` advances the walk just far enough
/// for the residual predicate and cursor to admit one record, then
/// materializes exactly that record. The node-global k-way merge
/// ([`execute_node_request`]) holds one of these per ordered-planned ACG
/// and pulls them on demand, so a stream whose candidates rank poorly is
/// barely advanced at all.
pub struct OrderedHitStream<'a> {
    records: Box<dyn Iterator<Item = &'a FileRecord> + 'a>,
    group_id: AcgId,
    group_len: usize,
    request: &'a SearchRequest,
    scanned: usize,
    exhausted: bool,
}

impl<'a> OrderedHitStream<'a> {
    pub(crate) fn new(
        records: Box<dyn Iterator<Item = &'a FileRecord> + 'a>,
        group: &'a AcgEpoch,
        request: &'a SearchRequest,
    ) -> Self {
        OrderedHitStream {
            records,
            group_id: group.id(),
            group_len: group.len(),
            request,
            scanned: 0,
            exhausted: false,
        }
    }

    /// Candidates pulled off the underlying walk so far.
    pub fn scanned(&self) -> usize {
        self.scanned
    }

    /// Whether the underlying walk ran dry (no cutoff saved anything).
    pub fn exhausted(&self) -> bool {
        self.exhausted
    }

    /// The ACG this stream reads from.
    pub fn group_id(&self) -> AcgId {
        self.group_id
    }

    /// Total records in the group (for skip accounting).
    pub fn group_len(&self) -> usize {
        self.group_len
    }
}

impl Iterator for OrderedHitStream<'_> {
    type Item = Hit;

    fn next(&mut self) -> Option<Hit> {
        for record in self.records.by_ref() {
            self.scanned += 1;
            // Cursor before predicate: the cursor-equal boundary candidate
            // a resumed walk re-yields (scan bounds keep equal keys for
            // the file-id tie-break) is rejected on the cheap key compare
            // without re-evaluating the predicate.
            let key = self.request.sort.key_of(record);
            if let Some(cursor) = &self.request.cursor {
                if !cursor.admits(&self.request.sort, key.as_ref(), record.file) {
                    continue;
                }
            }
            if !matches_record(record, &self.request.predicate) {
                continue;
            }
            return Some(Hit {
                file: record.file,
                acg: Some(self.group_id),
                attrs: self.request.projection.project(record),
                sort_key: key,
            });
        }
        self.exhausted = true;
        None
    }
}

/// One group's non-ordered share of a node-level search: an index into the
/// `groups` slice handed to [`execute_node_request`] plus the classic plan
/// to execute there (see [`execute_classic`]).
pub struct ClassicTask {
    /// Index of the target group in the `groups` slice.
    pub group: usize,
    /// The classic access-path plan chosen for that group.
    pub plan: Plan,
}

/// What a classic-task executor returns: one `(hits, stats)` pair per
/// [`ClassicTask`], in task order (see [`execute_node_request`]).
pub type ClassicResults = Vec<(Vec<Hit>, SearchStats)>;

/// Executes one search against every (already committed) group of an
/// Index Node under a **node-global k cutoff**.
///
/// Groups whose plan is an [`AccessPath::OrderedScan`] contribute a lazy
/// [`OrderedHitStream`] each; all streams — plus the sorted result lists
/// of the remaining (classic-planned) groups — are pulled through one
/// k-way merge that stops after `limit` total admitted hits across the
/// whole node, instead of computing `limit` hits per ACG first. The
/// records the merge never pulled are witnessed by
/// [`SearchStats::merge_skipped`].
///
/// `run_classic` executes the non-ordered tasks — the Index Node runs
/// them on its persistent worker pool; [`execute_node_request_sequential`]
/// runs them inline — and must return one `(hits, stats)` pair per task,
/// in task order. It receives the shared [`GlobalCutoff`] (when the
/// request is limited) so every classic execution can prune against the
/// merged worst-retained key; pruning affects only how much work the ACGs
/// do, never the returned hits, so pooled execution stays byte-identical
/// to sequential.
pub fn execute_node_request<'a, F>(
    groups: &[&'a AcgEpoch],
    request: &'a SearchRequest,
    run_classic: F,
) -> (Vec<Hit>, SearchStats)
where
    F: FnOnce(Vec<ClassicTask>, Option<&Arc<GlobalCutoff>>) -> Vec<(Vec<Hit>, SearchStats)>,
{
    /// Where each group's result lands: an index into the classic results
    /// or into the ordered streams.
    enum Slot {
        Classic(usize),
        Ordered(usize),
    }

    let mut slots: Vec<Slot> = Vec::with_capacity(groups.len());
    let mut tasks: Vec<ClassicTask> = Vec::new();
    let mut streams: Vec<OrderedHitStream<'a>> = Vec::new();
    for (i, group) in groups.iter().enumerate() {
        let plan = plan_request(*group, request);
        if let AccessPath::OrderedScan { attr, lo, hi, descending } = plan.path {
            let (lo, hi) = cursor_scan_bounds(request.cursor.as_ref(), lo, hi, descending);
            if let Some(iter) = group.candidates_ordered(&attr, lo, hi, descending) {
                slots.push(Slot::Ordered(streams.len()));
                streams.push(OrderedHitStream::new(iter, group, request));
            } else {
                // Unreachable via the planner; degrade to a full scan.
                slots.push(Slot::Classic(tasks.len()));
                tasks.push(ClassicTask { group: i, plan: Plan { path: AccessPath::FullScan } });
            }
        } else {
            slots.push(Slot::Classic(tasks.len()));
            tasks.push(ClassicTask { group: i, plan });
        }
    }

    let cutoff = match request.limit {
        Some(k) if !tasks.is_empty() => Some(Arc::new(GlobalCutoff::new(request.sort.clone(), k))),
        _ => None,
    };
    // Seed the classic bound from the ordered streams: each stream's first
    // admitted hit is, by construction, the best hit that stream will ever
    // contribute to the merge, so one cheap pull per stream tightens the
    // shared cutoff *before* the classic scans run — a mixed-plan node
    // prunes against the ordered side's best keys instead of starting from
    // an empty bound. The pulled hits stay primed for the merge (which
    // would have pulled them anyway to prime its heap), so no work is
    // repeated and results are unchanged.
    let mut primed: Vec<Option<Hit>> = Vec::with_capacity(streams.len());
    match &cutoff {
        Some(cutoff) if request.limit != Some(0) => {
            for stream in &mut streams {
                let first = stream.next();
                if let Some(hit) = &first {
                    cutoff.try_admit(hit.sort_key.as_ref(), hit.file);
                }
                primed.push(first);
            }
        }
        _ => primed.resize_with(streams.len(), || None),
    }
    let task_count = tasks.len();
    let classic = run_classic(tasks, cutoff.as_ref());
    assert_eq!(classic.len(), task_count, "one result per classic task");
    let (classic_hits, mut classic_stats): (Vec<Vec<Hit>>, Vec<SearchStats>) =
        classic.into_iter().unzip();

    // The merge's sources: classic sorted lists first (indices 0..tasks),
    // then the lazy ordered streams (indices tasks..), each led by its
    // primed (seed-pulled) head when the bound was seeded.
    struct PrimedStream<'a> {
        head: Option<Hit>,
        stream: OrderedHitStream<'a>,
    }
    enum NodeSource<'a> {
        List(std::vec::IntoIter<Hit>),
        Stream(PrimedStream<'a>),
    }
    impl Iterator for NodeSource<'_> {
        type Item = Hit;
        fn next(&mut self) -> Option<Hit> {
            match self {
                NodeSource::List(iter) => iter.next(),
                NodeSource::Stream(primed) => primed.head.take().or_else(|| primed.stream.next()),
            }
        }
    }
    let mut sources: Vec<NodeSource<'a>> = classic_hits
        .into_iter()
        .map(|hits| NodeSource::List(hits.into_iter()))
        .chain(
            streams
                .into_iter()
                .zip(primed)
                .map(|(stream, head)| NodeSource::Stream(PrimedStream { head, stream })),
        )
        .collect();
    let hits = merge_hit_sources(&mut sources, &request.sort, request.limit);

    // Assemble merged stats in group order.
    let mut stats = SearchStats::default();
    for slot in &slots {
        match *slot {
            Slot::Classic(j) => stats.absorb(std::mem::take(&mut classic_stats[j])),
            Slot::Ordered(j) => {
                let NodeSource::Stream(primed) = &sources[task_count + j] else {
                    unreachable!("stream sources follow the classic lists")
                };
                let stream = &primed.stream;
                stats.acgs_consulted += 1;
                stats.candidates_scanned += stream.scanned();
                stats.access_paths.push((stream.group_id(), AccessPathKind::OrderedScan));
                if !stream.exhausted() {
                    let skipped = stream.group_len().saturating_sub(stream.scanned());
                    stats.candidates_skipped += skipped;
                    stats.merge_skipped += skipped;
                    stats.early_terminated += 1;
                }
            }
        }
    }
    // The node retains at most the merge output beyond the per-ACG peaks.
    stats.retained_peak = stats.retained_peak.max(hits.len());
    if let Some(cutoff) = &cutoff {
        stats.bound_pruned = cutoff.pruned();
    }
    (hits, stats)
}

/// [`execute_node_request`] with the classic tasks run inline on the
/// calling thread — the sequential reference the pooled path must match
/// byte-for-byte, and the single-threaded entry point for callers without
/// a worker pool.
pub fn execute_node_request_sequential(
    groups: &[&AcgEpoch],
    request: &SearchRequest,
) -> (Vec<Hit>, SearchStats) {
    execute_node_request(groups, request, |tasks, cutoff| {
        tasks
            .into_iter()
            .map(|t| execute_classic(groups[t.group], request, t.plan, cutoff.map(|c| &**c)))
            .collect()
    })
}

/// An ordered scan resuming from a cursor never needs entries before the
/// cursor's sort key: ascending scans raise `lo`, descending scans lower
/// `hi`. The cursor key itself stays included — equal-key records are
/// admitted or rejected by the file-id tie-break, not the scan bounds.
pub(crate) fn cursor_scan_bounds(
    cursor: Option<&Cursor>,
    lo: Bound<Value>,
    hi: Bound<Value>,
    descending: bool,
) -> (Bound<Value>, Bound<Value>) {
    let Some(key) = cursor.and_then(|c| c.sort_key()) else { return (lo, hi) };
    if descending {
        let tighter = match &hi {
            Bound::Included(v) | Bound::Excluded(v) => v <= key,
            Bound::Unbounded => false,
        };
        if tighter {
            (lo, hi)
        } else {
            (lo, Bound::Included(key.clone()))
        }
    } else {
        let tighter = match &lo {
            Bound::Included(v) | Bound::Excluded(v) => v >= key,
            Bound::Unbounded => false,
        };
        if tighter {
            (lo, hi)
        } else {
            (Bound::Included(key.clone()), hi)
        }
    }
}

/// The materializing execution path (how every search ran before the
/// streaming pipeline): fetch the full candidate-id superset from the
/// access path, re-resolve each id through the record store, post-filter,
/// and push everything through the heap. Kept as the equivalence oracle
/// for tests and as the baseline the `topk_search` bench measures the
/// streaming pipeline against.
pub fn execute_request_reference(
    group: &AcgEpoch,
    request: &SearchRequest,
) -> (Vec<Hit>, SearchStats) {
    // Relevance ranking runs as a fully index-independent oracle: the
    // corpus statistics come from a brute pass over the records, every
    // record is scanned and scored, and the heap selects. The streaming
    // postings merge must reproduce these hits byte for byte.
    if request.sort == SortKey::Relevance {
        let terms = relevance_terms(&request.predicate);
        let scorer = RelevanceScorer::brute(group.records(), &terms);
        let mut topk = TopK::new(request.sort.clone(), request.limit);
        let mut scanned = 0usize;
        for record in group.records() {
            scanned += 1;
            if !matches_record(record, &request.predicate) {
                continue;
            }
            let key = Some(Value::F64(scorer.score(record, &terms)));
            if let Some(cursor) = &request.cursor {
                if !cursor.admits(&request.sort, key.as_ref(), record.file) {
                    continue;
                }
            }
            topk.push(Hit {
                file: record.file,
                acg: Some(group.id()),
                attrs: request.projection.project(record),
                sort_key: key,
            });
        }
        let stats = SearchStats {
            acgs_consulted: 1,
            candidates_scanned: scanned,
            retained_peak: topk.peak_retained(),
            access_paths: vec![(group.id(), AccessPathKind::FullScan)],
            ..SearchStats::default()
        };
        return (topk.into_sorted(), stats);
    }
    let plan = plan(group, &request.predicate);
    let kind = AccessPathKind::from(&plan.path);
    let mut topk = TopK::new(request.sort.clone(), request.limit);
    let mut scanned = 0usize;

    let consider = |record: &FileRecord, topk: &mut TopK| {
        if !matches_record(record, &request.predicate) {
            return;
        }
        let key = request.sort.key_of(record);
        if let Some(cursor) = &request.cursor {
            if !cursor.admits(&request.sort, key.as_ref(), record.file) {
                return;
            }
        }
        topk.push(Hit::of_record(record, Some(group.id()), &request.sort, &request.projection));
    };

    match plan.path {
        AccessPath::FullScan => {
            for record in group.records() {
                scanned += 1;
                consider(record, &mut topk);
            }
        }
        path => {
            let candidates: Vec<FileId> = match path {
                AccessPath::HashEq { attr, value } => group.lookup_eq(&attr, &value),
                AccessPath::BTreeRange { attr, lo, hi } => group.lookup_range(&attr, lo, hi),
                AccessPath::KdBox { attrs, lo, hi } => {
                    group.lookup_kd(&attrs, &lo, &hi).unwrap_or_else(|| group.scan(|_| true))
                }
                // The contains superset via brute record checks — no
                // inverted-index involvement in the oracle.
                AccessPath::Postings { terms, mode } => group.scan(|r| match mode {
                    ContainsMode::All => record_contains_all(r, &terms),
                    ContainsMode::Any => record_contains_any(r, &terms),
                    ContainsMode::Phrase => record_contains_phrase(r, &terms),
                }),
                AccessPath::OrderedScan { .. } | AccessPath::FullScan => {
                    unreachable!("not emitted by the classic planner")
                }
            };
            let mut seen: HashSet<FileId> = HashSet::with_capacity(candidates.len());
            for file in candidates {
                if !seen.insert(file) {
                    continue;
                }
                let Some(record) = group.record(file) else { continue };
                scanned += 1;
                consider(record, &mut topk);
            }
        }
    }

    let stats = SearchStats {
        acgs_consulted: 1,
        candidates_scanned: scanned,
        retained_peak: topk.peak_retained(),
        access_paths: vec![(group.id(), kind)],
        ..SearchStats::default()
    };
    (topk.into_sorted(), stats)
}

/// The paper-faithful search entry point: **commit buffered index updates
/// first** ("it must commit all modifications into the file indices before
/// performing a file-search request in order to guarantee the consistency
/// of results", §V-D), then execute.
///
/// # Errors
///
/// Returns an error if the commit's WAL truncation fails.
pub fn search(group: &mut AcgIndexGroup, pred: &Predicate, now: Timestamp) -> Result<Vec<FileId>> {
    group.commit(now)?;
    Ok(execute(group, pred))
}

/// The request-path equivalent of [`search`]: commit buffered updates,
/// then run [`execute_request`].
///
/// # Errors
///
/// Returns an error if the commit's WAL truncation fails.
pub fn search_request(
    group: &mut AcgIndexGroup,
    request: &SearchRequest,
    now: Timestamp,
) -> Result<(Vec<Hit>, SearchStats)> {
    group.commit(now)?;
    Ok(execute_request(group, request))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Query;
    use propeller_index::{GroupConfig, IndexOp};
    use propeller_types::{AcgId, InodeAttrs};

    fn now() -> Timestamp {
        Timestamp::from_secs(100 * 86_400)
    }

    fn seeded_group() -> AcgIndexGroup {
        let mut g = AcgIndexGroup::new(AcgId::new(1), GroupConfig::default());
        for i in 0..500u64 {
            let rec = FileRecord::new(
                FileId::new(i),
                InodeAttrs::builder()
                    .size(i * 1024 * 1024) // i MiB
                    .mtime(now() - propeller_types::Duration::from_secs(i * 3600)) // i hours old
                    .uid((i % 4) as u32)
                    .build(),
            )
            .with_keyword(if i % 10 == 0 { "firefox" } else { "other" });
            g.enqueue(IndexOp::Upsert(rec), now()).unwrap();
        }
        g.commit(now()).unwrap();
        g
    }

    fn run(g: &AcgIndexGroup, text: &str) -> Vec<FileId> {
        let q = Query::parse(text, now()).unwrap();
        execute(g, &q.predicate)
    }

    fn brute(g: &AcgIndexGroup, text: &str) -> Vec<FileId> {
        let q = Query::parse(text, now()).unwrap();
        g.scan(|r| matches_record(r, &q.predicate))
    }

    #[test]
    fn size_range_matches_brute_force() {
        let g = seeded_group();
        for q in ["size>16m", "size>=100m", "size<1m", "size>100m & size<200m"] {
            assert_eq!(run(&g, q), brute(&g, q), "query {q}");
        }
        assert_eq!(run(&g, "size>16m").len(), 500 - 17);
    }

    #[test]
    fn paper_query_1_size_and_mtime() {
        let g = seeded_group();
        let q = "size>100m & mtime<24h";
        let got = run(&g, q);
        assert_eq!(got, brute(&g, q));
        // i > 100 (size) and i < 24 (age in hours): empty intersection.
        assert!(got.is_empty());
        let q2 = "size>10m & mtime<24h";
        let got2 = run(&g, q2);
        assert_eq!(got2, brute(&g, q2));
        // 10 < i < 24.
        assert_eq!(got2.len(), 13);
    }

    #[test]
    fn paper_query_2_keyword_and_mtime() {
        let g = seeded_group();
        let q = "keyword:firefox & mtime<1week";
        let got = run(&g, q);
        assert_eq!(got, brute(&g, q));
        // Multiples of 10 younger than 168 hours: 0,10,...,160 => 17.
        assert_eq!(got.len(), 17);
    }

    #[test]
    fn disjunction_and_negation() {
        let g = seeded_group();
        for q in [
            "size<1m | size>490m",
            "!(keyword:firefox)",
            "keyword:firefox | keyword:other",
            "!(size>10m) & uid=1",
        ] {
            assert_eq!(run(&g, q), brute(&g, q), "query {q}");
        }
    }

    #[test]
    fn match_all() {
        let g = seeded_group();
        assert_eq!(run(&g, "*").len(), 500);
    }

    #[test]
    fn results_are_sorted_and_unique() {
        let g = seeded_group();
        let r = run(&g, "size>=0");
        let mut sorted = r.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(r, sorted);
    }

    #[test]
    fn search_commits_pending_updates_first() {
        let mut g = seeded_group();
        let rec = FileRecord::new(FileId::new(9999), InodeAttrs::builder().size(1 << 40).build());
        g.enqueue(IndexOp::Upsert(rec), now()).unwrap();
        // Plain execute (no commit) must not see it...
        assert!(!run(&g, "size>1t").contains(&FileId::new(9999)));
        // ...but search (commit-then-execute) must.
        let q = Query::parse("size>=1t", now()).unwrap();
        let got = search(&mut g, &q.predicate, now()).unwrap();
        assert_eq!(got, vec![FileId::new(9999)]);
    }

    #[test]
    fn empty_group_returns_empty() {
        let g = AcgIndexGroup::new(AcgId::new(2), GroupConfig::default());
        assert!(run(&g, "size>0").is_empty());
        assert!(run(&g, "*").is_empty());
    }

    #[test]
    fn custom_attr_queries() {
        let mut g = AcgIndexGroup::new(AcgId::new(3), GroupConfig::default());
        for i in 0..20u64 {
            let rec = FileRecord::new(FileId::new(i), InodeAttrs::default())
                .with_custom("energy", Value::F64(-(i as f64)));
            g.enqueue(IndexOp::Upsert(rec), now()).unwrap();
        }
        g.commit(now()).unwrap();
        let q = Query::parse("energy<-15", now()).unwrap();
        let got = execute(&g, &q.predicate);
        assert_eq!(got.len(), 4); // -16..-19
    }

    #[test]
    fn request_topk_matches_full_execution_prefix() {
        use crate::request::{SearchRequest, SortKey};
        let g = seeded_group();
        let q = Query::parse("size>16m", now()).unwrap();
        let full = execute(&g, &q.predicate);
        let req = SearchRequest::new(q.predicate.clone()).with_limit(10);
        let (hits, stats) = execute_request(&g, &req);
        let ids: Vec<FileId> = hits.iter().map(|h| h.file).collect();
        assert_eq!(ids, full[..10].to_vec(), "top-10 by file id = sorted prefix");
        assert!(stats.retained_peak <= 10, "bounded heap: {}", stats.retained_peak);
        assert_eq!(stats.acgs_consulted, 1);

        // Descending size: the k largest files.
        let req = SearchRequest::new(q.predicate.clone())
            .with_limit(5)
            .sorted_by(SortKey::Descending(propeller_types::AttrName::Size));
        let (hits, stats) = execute_request(&g, &req);
        let sizes: Vec<u64> =
            hits.iter().map(|h| h.sort_key.clone().unwrap().as_u64().unwrap()).collect();
        assert_eq!(sizes, vec![499 << 20, 498 << 20, 497 << 20, 496 << 20, 495 << 20]);
        assert!(stats.retained_peak <= 5);
    }

    #[test]
    fn request_cursor_pages_cover_exactly_the_full_result() {
        use crate::request::SearchRequest;
        let g = seeded_group();
        let q = Query::parse("size>16m", now()).unwrap();
        let full = execute(&g, &q.predicate);
        let mut pages = Vec::new();
        let mut cursor = None;
        loop {
            let mut req = SearchRequest::new(q.predicate.clone()).with_limit(64);
            if let Some(c) = cursor.take() {
                req = req.after(c);
            }
            let (hits, stats) = execute_request(&g, &req);
            assert!(stats.retained_peak <= 64);
            if hits.is_empty() {
                break;
            }
            pages.extend(hits.iter().map(|h| h.file));
            match crate::request::next_cursor(&hits, Some(64)) {
                Some(c) => cursor = Some(c),
                None => break,
            }
        }
        assert_eq!(pages, full);
    }

    #[test]
    fn request_projection_round_trips_attributes() {
        use crate::request::{Projection, SearchRequest};
        let g = seeded_group();
        let q = Query::parse("size>=499m", now()).unwrap();
        let req = SearchRequest::new(q.predicate).with_projection(Projection::Attrs(vec![
            propeller_types::AttrName::Size,
            propeller_types::AttrName::Uid,
        ]));
        let (hits, _) = execute_request(&g, &req);
        assert_eq!(hits.len(), 1);
        assert_eq!(
            hits[0].attrs,
            vec![
                (propeller_types::AttrName::Size, Value::U64(499 << 20)),
                (propeller_types::AttrName::Uid, Value::U64(3)),
            ]
        );
    }

    #[test]
    fn ordered_scan_terminates_early_and_matches_reference() {
        use crate::request::{SearchRequest, SortKey};
        let g = seeded_group();
        // Predicates constrain only the sort attribute or unindexed
        // attributes — otherwise the planner (rightly) prefers the more
        // selective classic access path over the ordered walk.
        for (text, sort) in [
            ("size>16m", SortKey::Ascending(propeller_types::AttrName::Size)),
            ("size>16m", SortKey::Descending(propeller_types::AttrName::Size)),
            ("uid<3", SortKey::Descending(propeller_types::AttrName::Mtime)),
        ] {
            let q = Query::parse(text, now()).unwrap();
            let req =
                SearchRequest::new(q.predicate.clone()).with_limit(10).sorted_by(sort.clone());
            let (hits, stats) = execute_request(&g, &req);
            let (ref_hits, _) = execute_request_reference(&g, &req);
            assert_eq!(hits, ref_hits, "sort {sort:?}");
            assert_eq!(stats.early_terminated, 1, "sort {sort:?}");
            assert!(stats.candidates_skipped > 0, "sort {sort:?}: {stats:?}");
            assert!(
                stats.candidates_scanned + stats.candidates_skipped <= g.len(),
                "sort {sort:?}: {stats:?}"
            );
            assert_eq!(stats.access_paths[0].1, crate::request::AccessPathKind::OrderedScan);
        }
    }

    #[test]
    fn ordered_scan_pagination_covers_the_full_result_in_order() {
        use crate::request::{SearchRequest, SortKey};
        let g = seeded_group();
        let q = Query::parse("size>16m", now()).unwrap();
        let sort = SortKey::Descending(propeller_types::AttrName::Size);
        let full_req = SearchRequest::new(q.predicate.clone()).sorted_by(sort.clone());
        let (full, _) = execute_request(&g, &full_req);
        let mut paged = Vec::new();
        let mut cursor = None;
        loop {
            let mut req =
                SearchRequest::new(q.predicate.clone()).with_limit(37).sorted_by(sort.clone());
            if let Some(c) = cursor.take() {
                req = req.after(c);
            }
            let (hits, stats) = execute_request(&g, &req);
            assert!(stats.retained_peak <= 37);
            if hits.is_empty() {
                break;
            }
            match crate::request::next_cursor(&hits, Some(37)) {
                Some(c) => cursor = Some(c),
                None => {
                    paged.extend(hits);
                    break;
                }
            }
            paged.extend(hits);
        }
        assert_eq!(paged, full);
    }

    #[test]
    fn streaming_paths_match_reference_on_all_access_paths() {
        use crate::request::SearchRequest;
        let g = seeded_group();
        for text in [
            "keyword:firefox",           // hash probe
            "size>100m & size<200m",     // btree range (after kd? two-sided single attr)
            "size>10m & mtime<1week",    // kd box
            "uid=1",                     // full scan (uid unindexed)
            "*",                         // full scan
            "keyword:firefox | size<2m", // full scan (disjunction)
        ] {
            let q = Query::parse(text, now()).unwrap();
            for limit in [None, Some(5), Some(1000)] {
                let mut req = SearchRequest::new(q.predicate.clone());
                if let Some(k) = limit {
                    req = req.with_limit(k);
                }
                let (hits, _) = execute_request(&g, &req);
                let (ref_hits, _) = execute_request_reference(&g, &req);
                assert_eq!(hits, ref_hits, "query {text:?} limit {limit:?}");
            }
        }
    }

    #[test]
    fn node_global_cutoff_matches_per_acg_reference_with_fewer_scans() {
        use crate::request::{merge_sorted_hits, SearchRequest, SortKey};
        // 4 ACGs x 250 files, sorted top-10: the node-global merge must
        // return exactly what per-ACG top-k + merge returns, while pulling
        // only ~k + #groups candidates instead of k per ACG.
        let groups: Vec<AcgIndexGroup> = (0..4u64)
            .map(|g| {
                let mut group = AcgIndexGroup::new(AcgId::new(g + 1), GroupConfig::default());
                for i in 0..250u64 {
                    let id = g * 1000 + i;
                    let rec = FileRecord::new(
                        FileId::new(id),
                        InodeAttrs::builder().size(((id * 7919) % 4096) << 10).build(),
                    );
                    group.enqueue(IndexOp::Upsert(rec), now()).unwrap();
                }
                group.commit(now()).unwrap();
                group
            })
            .collect();
        let refs: Vec<&AcgEpoch> = groups.iter().map(|g| &**g).collect();
        let q = Query::parse("size>0", now()).unwrap();
        let req = SearchRequest::new(q.predicate)
            .with_limit(10)
            .sorted_by(SortKey::Descending(propeller_types::AttrName::Size));

        let per_acg: Vec<Vec<Hit>> = refs.iter().map(|g| execute_request(g, &req).0).collect();
        let reference = merge_sorted_hits(per_acg, &req.sort, req.limit);

        let (hits, stats) = execute_node_request_sequential(&refs, &req);
        assert_eq!(hits, reference, "node-global merge must be byte-identical");
        assert_eq!(hits.len(), 10);
        assert_eq!(stats.acgs_consulted, 4);
        assert!(
            stats.candidates_scanned <= 10 + refs.len(),
            "global cutoff must scan ~k total, scanned {}",
            stats.candidates_scanned
        );
        assert!(stats.merge_skipped > 0, "merge-level skips must be witnessed: {stats:?}");
        assert_eq!(
            stats.candidates_scanned + stats.candidates_skipped,
            4 * 250,
            "scanned + skipped covers every record"
        );
        assert!(stats.access_paths.iter().all(|(_, k)| *k == AccessPathKind::OrderedScan));
    }

    #[test]
    fn node_request_mixes_ordered_streams_and_bounded_classic_scans() {
        use crate::request::{merge_sorted_hits, SearchRequest, SortKey};
        // Two ordered-planned groups (default indices) plus one group with
        // no indices at all (classic full scan under the shared bound).
        let seed = |mut group: AcgIndexGroup, base: u64| {
            for i in 0..200u64 {
                let id = base + i;
                let rec = FileRecord::new(
                    FileId::new(id),
                    InodeAttrs::builder().size(((id * 131) % 1000) << 10).build(),
                );
                group.enqueue(IndexOp::Upsert(rec), now()).unwrap();
            }
            group.commit(now()).unwrap();
            group
        };
        let g1 = seed(AcgIndexGroup::new(AcgId::new(1), GroupConfig::default()), 0);
        let g2 = seed(AcgIndexGroup::new(AcgId::new(2), GroupConfig::default()), 1000);
        let g3 = seed(
            AcgIndexGroup::new(
                AcgId::new(3),
                GroupConfig { default_indices: false, ..GroupConfig::default() },
            ),
            2000,
        );
        let refs: Vec<&AcgEpoch> = vec![&g1, &g2, &g3];
        let q = Query::parse("size>0", now()).unwrap();
        let req = SearchRequest::new(q.predicate)
            .with_limit(8)
            .sorted_by(SortKey::Descending(propeller_types::AttrName::Size));

        let per_acg: Vec<Vec<Hit>> = refs.iter().map(|g| execute_request(g, &req).0).collect();
        let reference = merge_sorted_hits(per_acg, &req.sort, req.limit);
        let (hits, stats) = execute_node_request_sequential(&refs, &req);
        assert_eq!(hits, reference);
        // The indexless group full-scans (all 200 records); the bound
        // prunes most of its matching candidates before materialization.
        let kinds: Vec<AccessPathKind> = stats.access_paths.iter().map(|(_, k)| *k).collect();
        assert_eq!(
            kinds,
            vec![
                AccessPathKind::OrderedScan,
                AccessPathKind::OrderedScan,
                AccessPathKind::FullScan
            ]
        );
        assert!(stats.bound_pruned > 0, "shared bound must prune: {stats:?}");
        assert!(stats.merge_skipped > 0, "{stats:?}");
    }

    #[test]
    fn node_request_with_duplicate_files_across_groups_keeps_distinct_topk() {
        use crate::request::{merge_sorted_hits, SearchRequest, SortKey};
        // A file can legally surface from two ACGs of one node (stale
        // route degraded to pre-tombstone behaviour): the global bound
        // must count distinct files, or the duplicate eats a slot and a
        // rightful hit is pruned. Indexless groups force the classic
        // (bound-pruned) path.
        let indexless = |acg: u64| {
            AcgIndexGroup::new(
                AcgId::new(acg),
                GroupConfig { default_indices: false, ..GroupConfig::default() },
            )
        };
        let mut g1 = indexless(1);
        g1.enqueue(
            IndexOp::Upsert(FileRecord::new(
                FileId::new(7),
                InodeAttrs::builder().size(100).build(),
            )),
            now(),
        )
        .unwrap();
        g1.commit(now()).unwrap();
        let mut g2 = indexless(2);
        for (file, size) in [(7u64, 100u64), (8, 50)] {
            g2.enqueue(
                IndexOp::Upsert(FileRecord::new(
                    FileId::new(file),
                    InodeAttrs::builder().size(size).build(),
                )),
                now(),
            )
            .unwrap();
        }
        g2.commit(now()).unwrap();
        let refs: Vec<&AcgEpoch> = vec![&g1, &g2];
        let q = Query::parse("size>0", now()).unwrap();
        let req = SearchRequest::new(q.predicate)
            .with_limit(2)
            .sorted_by(SortKey::Descending(propeller_types::AttrName::Size));
        let per_acg: Vec<Vec<Hit>> = refs.iter().map(|g| execute_request(g, &req).0).collect();
        let reference = merge_sorted_hits(per_acg, &req.sort, req.limit);
        let (hits, _) = execute_node_request_sequential(&refs, &req);
        let files: Vec<u64> = hits.iter().map(|h| h.file.raw()).collect();
        assert_eq!(files, vec![7, 8], "both distinct files make the top-2");
        assert_eq!(
            hits.iter().map(|h| h.file).collect::<Vec<_>>(),
            reference.iter().map(|h| h.file).collect::<Vec<_>>()
        );
    }

    #[test]
    fn node_request_unlimited_and_zero_limit_edges() {
        use crate::request::{SearchRequest, SortKey};
        let g = seeded_group();
        let refs: Vec<&AcgEpoch> = vec![&g];
        let q = Query::parse("size>16m", now()).unwrap();
        // Unlimited: no cutoff, plain merged full result.
        let req = SearchRequest::new(q.predicate.clone())
            .sorted_by(SortKey::Ascending(propeller_types::AttrName::Size));
        let (hits, stats) = execute_node_request_sequential(&refs, &req);
        let (ref_hits, _) = execute_request(&g, &req);
        assert_eq!(hits, ref_hits);
        assert_eq!(stats.bound_pruned, 0);
        assert_eq!(stats.merge_skipped, 0);
        // Zero limit: nothing is pulled, nothing returned.
        let req = req.with_limit(0);
        let (hits, stats) = execute_node_request_sequential(&refs, &req);
        assert!(hits.is_empty());
        assert_eq!(stats.candidates_scanned, 0, "limit 0 must not prime streams");
    }

    #[test]
    fn matches_record_multivalued_any_semantics() {
        let rec = FileRecord::new(FileId::new(1), InodeAttrs::default())
            .with_keyword("alpha")
            .with_keyword("beta");
        assert!(matches_record(&rec, &Predicate::Keyword("beta".into())));
        assert!(!matches_record(&rec, &Predicate::Keyword("gamma".into())));
    }

    /// A deterministic content corpus: every file holds "the"; thirds hold
    /// "quick brown" (adjacent), sevenths hold "fox", roughly 1% "zebra",
    /// and doc lengths vary so BM25 normalization actually discriminates.
    fn content_group(acg: u64, base: u64, n: u64) -> AcgIndexGroup {
        let mut g = AcgIndexGroup::new(AcgId::new(acg), GroupConfig::default());
        for i in 0..n {
            let mut words = vec!["the"];
            if i % 3 == 0 {
                words.push("quick");
                words.push("brown");
            }
            if i % 7 == 0 {
                words.push("fox");
                if i % 21 == 0 {
                    words.push("fox"); // tf variation
                }
            }
            if i % 101 == 0 {
                words.push("zebra");
            }
            words.extend(std::iter::repeat_n("filler", (i % 5) as usize));
            let rec =
                FileRecord::new(FileId::new(base + i), InodeAttrs::builder().size(i << 10).build())
                    .with_content(words.join(" "));
            g.enqueue(IndexOp::Upsert(rec), now()).unwrap();
        }
        g.commit(now()).unwrap();
        g
    }

    #[test]
    fn contains_modes_match_reference_and_plan_postings() {
        use crate::request::SearchRequest;
        let g = content_group(1, 0, 400);
        for text in [
            "contains:\"quick fox\"",     // conjunctive merge
            "contains-any:\"fox zebra\"", // disjunctive merge
            "phrase:\"quick brown\"",     // adjacency post-filter
            "phrase:\"brown quick\"",     // wrong order: superset pruned to empty
            "contains:zebra & size>100k", // residual attribute conjunct
            "contains:\"quick the fox\"", // three-way intersection
        ] {
            let q = Query::parse(text, now()).unwrap();
            for limit in [None, Some(7), Some(1000)] {
                let mut req = SearchRequest::new(q.predicate.clone());
                if let Some(k) = limit {
                    req = req.with_limit(k);
                }
                let (hits, stats) = execute_request(&g, &req);
                let (ref_hits, _) = execute_request_reference(&g, &req);
                assert_eq!(hits, ref_hits, "query {text:?} limit {limit:?}");
                assert_eq!(
                    stats.access_paths[0].1,
                    AccessPathKind::Postings,
                    "query {text:?} must ride the inverted index"
                );
            }
        }
    }

    #[test]
    fn relevance_ranking_matches_the_brute_oracle_bit_for_bit() {
        use crate::request::{SearchRequest, SortKey};
        let g = content_group(1, 0, 400);
        for text in ["contains:\"quick fox\"", "contains-any:\"fox zebra\"", "contains:zebra"] {
            let q = Query::parse(text, now()).unwrap();
            let req = SearchRequest::new(q.predicate.clone())
                .with_limit(10)
                .sorted_by(SortKey::Relevance);
            let (hits, stats) = execute_request(&g, &req);
            let (ref_hits, _) = execute_request_reference(&g, &req);
            // Bit-identical scores: the postings path and the brute scorer
            // must agree on N, df, avgdl and per-term summation order.
            assert_eq!(hits, ref_hits, "query {text:?}");
            assert_eq!(stats.access_paths[0].1, AccessPathKind::Postings);
            let scores: Vec<f64> =
                hits.iter().map(|h| h.sort_key.clone().unwrap().as_f64().unwrap()).collect();
            assert!(scores.windows(2).all(|w| w[0] >= w[1]), "descending scores: {scores:?}");
        }
    }

    #[test]
    fn relevance_pagination_covers_the_full_ranking() {
        use crate::request::{next_cursor, SearchRequest, SortKey};
        let g = content_group(1, 0, 400);
        let q = Query::parse("contains-any:\"quick fox\"", now()).unwrap();
        let full_req = SearchRequest::new(q.predicate.clone()).sorted_by(SortKey::Relevance);
        let (full, _) = execute_request(&g, &full_req);
        let mut paged = Vec::new();
        let mut cursor = None;
        loop {
            let mut req = SearchRequest::new(q.predicate.clone())
                .with_limit(29)
                .sorted_by(SortKey::Relevance);
            if let Some(c) = cursor.take() {
                req = req.after(c);
            }
            let (hits, _) = execute_request(&g, &req);
            if hits.is_empty() {
                break;
            }
            match next_cursor(&hits, Some(29)) {
                Some(c) => cursor = Some(c),
                None => {
                    paged.extend(hits);
                    break;
                }
            }
            paged.extend(hits);
        }
        assert_eq!(paged, full);
    }

    #[test]
    fn wand_block_max_pruning_skips_blocks_and_stays_exact() {
        use crate::request::{SearchRequest, SortKey};
        // 1024 docs all contain both terms; only the first 16 carry high
        // term frequencies (and sit well under the average doc length, so
        // their scores beat the length-agnostic tf=1 block bound). Once the
        // heap fills on those, every later block's max-tf bound falls below
        // θ and the conjunctive merge must jump block to block instead of
        // scoring doc by doc.
        let mut g = AcgIndexGroup::new(AcgId::new(9), GroupConfig::default());
        for i in 0..1024u64 {
            let text = if i < 16 {
                format!("{}{}", "alpha ".repeat(10), "beta ".repeat(10))
            } else {
                format!("alpha beta {}", "filler ".repeat(40))
            };
            let rec = FileRecord::new(FileId::new(i), InodeAttrs::default()).with_content(text);
            g.enqueue(IndexOp::Upsert(rec), now()).unwrap();
        }
        g.commit(now()).unwrap();
        let q = Query::parse("contains:\"alpha beta\"", now()).unwrap();
        let req = SearchRequest::new(q.predicate).with_limit(8).sorted_by(SortKey::Relevance);
        let (hits, stats) = execute_request(&g, &req);
        let (ref_hits, _) = execute_request_reference(&g, &req);
        assert_eq!(hits, ref_hits, "pruning must not change the ranking");
        assert_eq!(hits.len(), 8);
        assert!(hits.iter().all(|h| h.file.raw() < 16), "high-tf docs win");
        assert!(stats.wand_blocks_skipped > 0, "block skips witnessed: {stats:?}");
        assert!(stats.wand_docs_pruned > 0, "doc-level pruning witnessed: {stats:?}");
        assert!(stats.candidates_scanned < 1024, "WAND must not score the whole corpus: {stats:?}");
    }

    #[test]
    fn wand_disjunctive_pivot_prunes_the_weak_tail() {
        use crate::request::{SearchRequest, SortKey};
        // "special" is rare (high idf, early files); "common" is everywhere
        // (vanishing idf). After the rare postings exhaust, the sum of the
        // remaining term bounds can never reach θ and the disjunctive merge
        // must stop without walking the common tail.
        let mut g = AcgIndexGroup::new(AcgId::new(10), GroupConfig::default());
        for i in 0..1024u64 {
            let text =
                if i < 32 { "special common".to_string() } else { "common filler".to_string() };
            let rec = FileRecord::new(FileId::new(i), InodeAttrs::default()).with_content(text);
            g.enqueue(IndexOp::Upsert(rec), now()).unwrap();
        }
        g.commit(now()).unwrap();
        let q = Query::parse("contains-any:\"special common\"", now()).unwrap();
        let req = SearchRequest::new(q.predicate).with_limit(8).sorted_by(SortKey::Relevance);
        let (hits, stats) = execute_request(&g, &req);
        let (ref_hits, _) = execute_request_reference(&g, &req);
        assert_eq!(hits, ref_hits);
        assert!(hits.iter().all(|h| h.file.raw() < 32), "rare-term docs dominate");
        assert!(stats.wand_docs_pruned > 500, "tail must be pruned: {stats:?}");
    }

    #[test]
    fn relevance_without_inverted_degrades_to_the_brute_scan() {
        use crate::request::{SearchRequest, SortKey};
        let mut g = AcgIndexGroup::new(
            AcgId::new(11),
            GroupConfig { default_indices: false, ..GroupConfig::default() },
        );
        for i in 0..100u64 {
            let text = if i % 9 == 0 { "needle haystack" } else { "haystack" };
            let rec = FileRecord::new(FileId::new(i), InodeAttrs::default()).with_content(text);
            g.enqueue(IndexOp::Upsert(rec), now()).unwrap();
        }
        g.commit(now()).unwrap();
        let q = Query::parse("contains:needle", now()).unwrap();
        let req = SearchRequest::new(q.predicate).with_limit(5).sorted_by(SortKey::Relevance);
        let (hits, stats) = execute_request(&g, &req);
        let (ref_hits, _) = execute_request_reference(&g, &req);
        assert_eq!(hits, ref_hits, "no inverted index: scored full scan still ranks");
        assert_eq!(hits.len(), 5);
        assert_eq!(stats.access_paths[0].1, AccessPathKind::FullScan);
        assert_eq!(stats.wand_blocks_skipped, 0, "nothing to prune without postings");
    }

    #[test]
    fn node_merge_ranks_contains_across_groups() {
        use crate::request::{merge_sorted_hits, SearchRequest, SortKey};
        let g1 = content_group(1, 0, 300);
        let g2 = content_group(2, 1000, 300);
        let g3 = content_group(3, 2000, 300);
        let refs: Vec<&AcgEpoch> = vec![&g1, &g2, &g3];
        let q = Query::parse("contains-any:\"fox zebra\"", now()).unwrap();
        let req = SearchRequest::new(q.predicate).with_limit(12).sorted_by(SortKey::Relevance);
        let per_acg: Vec<Vec<Hit>> = refs.iter().map(|g| execute_request(g, &req).0).collect();
        let reference = merge_sorted_hits(per_acg, &req.sort, req.limit);
        let (hits, stats) = execute_node_request_sequential(&refs, &req);
        assert_eq!(hits, reference, "node-global ranked merge must be byte-identical");
        assert_eq!(hits.len(), 12);
        assert_eq!(stats.acgs_consulted, 3);
        assert!(stats.access_paths.iter().all(|(_, k)| *k == AccessPathKind::Postings));
    }
}
