//! Plan execution with full-predicate post-filtering, including the
//! top-k/sort-aware request path ([`execute_request`]) that bounds per-ACG
//! result materialization to O(limit).

use std::collections::HashSet;

use propeller_index::{AcgIndexGroup, FileRecord};
use propeller_types::{AttrName, FileId, Result, Timestamp, Value};

use crate::ast::Predicate;
use crate::plan::{plan, AccessPath};
use crate::request::{AccessPathKind, Hit, SearchRequest, SearchStats, TopK};

/// Evaluates the predicate against one record (exact semantics; the access
/// path only pre-filters). Multi-valued attributes (keywords, repeated
/// custom attributes) match when *any* value satisfies the comparison.
///
/// # Examples
///
/// ```
/// use propeller_index::FileRecord;
/// use propeller_query::{matches_record, Query};
/// use propeller_types::{FileId, InodeAttrs, Timestamp};
///
/// let rec = FileRecord::new(
///     FileId::new(1),
///     InodeAttrs::builder().size(32 << 20).build(),
/// );
/// let q = Query::parse("size>16m", Timestamp::from_secs(0)).unwrap();
/// assert!(matches_record(&rec, &q.predicate));
/// ```
pub fn matches_record(record: &FileRecord, pred: &Predicate) -> bool {
    match pred {
        Predicate::True => true,
        Predicate::Keyword(w) => record.keywords.iter().any(|k| k == w),
        Predicate::Compare { attr, op, value } => {
            attr_values(record, attr).iter().any(|v| op.eval(v, value))
        }
        Predicate::And(ps) => ps.iter().all(|p| matches_record(record, p)),
        Predicate::Or(ps) => ps.iter().any(|p| matches_record(record, p)),
        Predicate::Not(p) => !matches_record(record, p),
    }
}

fn attr_values(record: &FileRecord, attr: &AttrName) -> Vec<Value> {
    match attr {
        AttrName::Keyword => record.keywords.iter().map(|k| Value::from(k.as_str())).collect(),
        AttrName::Custom(name) => {
            record.custom.iter().filter(|(n, _)| n == name).map(|(_, v)| v.clone()).collect()
        }
        builtin => record.attrs.get(builtin).into_iter().collect(),
    }
}

/// Executes `pred` against a (committed) group: plans an access path,
/// fetches the candidate superset, post-filters with the exact predicate.
/// Results are sorted by file id.
///
/// This is the thin classic wrapper over [`execute_request`]; new callers
/// should build a [`SearchRequest`] and use the request path directly.
///
/// Callers are responsible for committing the group first; use [`search`]
/// for the paper-faithful commit-then-search entry point.
pub fn execute(group: &AcgIndexGroup, pred: &Predicate) -> Vec<FileId> {
    let request = SearchRequest::new(pred.clone());
    let (hits, _) = execute_request(group, &request);
    hits.into_iter().map(|h| h.file).collect()
}

/// Executes a [`SearchRequest`] against a (committed) group: plans an
/// access path, streams the candidates through the exact predicate and a
/// bounded top-k heap, and projects the survivors into [`Hit`]s.
///
/// When `request.limit` is `Some(k)`, at most `k` hits are retained at any
/// moment (witnessed by [`SearchStats::retained_peak`]) — the full result
/// set is never materialized, which is what makes cluster-scale top-k
/// searches affordable. The request's cursor is applied here too, so
/// pagination enjoys the same bound.
///
/// Hits come back in the request's sort order. Callers are responsible
/// for committing the group first (the owning Index Node commits before
/// serving a search).
pub fn execute_request(group: &AcgIndexGroup, request: &SearchRequest) -> (Vec<Hit>, SearchStats) {
    let plan = plan(group, &request.predicate);
    let kind = AccessPathKind::from(&plan.path);
    let mut topk = TopK::new(request.sort.clone(), request.limit);
    let mut scanned = 0usize;

    let consider = |record: &FileRecord, topk: &mut TopK| {
        if !matches_record(record, &request.predicate) {
            return;
        }
        let key = request.sort.key_of(record);
        if let Some(cursor) = &request.cursor {
            if !cursor.admits(&request.sort, key.as_ref(), record.file) {
                return;
            }
        }
        topk.push(Hit::of_record(record, Some(group.id()), &request.sort, &request.projection));
    };

    match plan.path {
        AccessPath::FullScan => {
            // Stream every record straight through the predicate and heap;
            // nothing beyond the heap is ever materialized.
            for record in group.records() {
                scanned += 1;
                consider(record, &mut topk);
            }
        }
        path => {
            let candidates: Vec<FileId> = match path {
                AccessPath::HashEq { attr, value } => group.lookup_eq(&attr, &value),
                AccessPath::BTreeRange { attr, lo, hi } => group.lookup_range(&attr, lo, hi),
                AccessPath::KdBox { attrs, lo, hi } => {
                    group.lookup_kd(&attrs, &lo, &hi).unwrap_or_else(|| group.scan(|_| true))
                }
                AccessPath::FullScan => unreachable!("handled above"),
            };
            // An index may hand back the same file more than once (e.g.
            // multi-valued attributes); past this point every candidate is
            // unique so the heap bound is exact.
            let mut seen: HashSet<FileId> = HashSet::with_capacity(candidates.len());
            for file in candidates {
                if !seen.insert(file) {
                    continue;
                }
                let Some(record) = group.record(file) else { continue };
                scanned += 1;
                consider(record, &mut topk);
            }
        }
    }

    let stats = SearchStats {
        acgs_consulted: 1,
        candidates_scanned: scanned,
        retained_peak: topk.peak_retained(),
        access_paths: vec![(group.id(), kind)],
        elapsed: propeller_types::Duration::ZERO,
    };
    (topk.into_sorted(), stats)
}

/// The paper-faithful search entry point: **commit buffered index updates
/// first** ("it must commit all modifications into the file indices before
/// performing a file-search request in order to guarantee the consistency
/// of results", §V-D), then execute.
///
/// # Errors
///
/// Returns an error if the commit's WAL truncation fails.
pub fn search(group: &mut AcgIndexGroup, pred: &Predicate, now: Timestamp) -> Result<Vec<FileId>> {
    group.commit(now)?;
    Ok(execute(group, pred))
}

/// The request-path equivalent of [`search`]: commit buffered updates,
/// then run [`execute_request`].
///
/// # Errors
///
/// Returns an error if the commit's WAL truncation fails.
pub fn search_request(
    group: &mut AcgIndexGroup,
    request: &SearchRequest,
    now: Timestamp,
) -> Result<(Vec<Hit>, SearchStats)> {
    group.commit(now)?;
    Ok(execute_request(group, request))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Query;
    use propeller_index::{GroupConfig, IndexOp};
    use propeller_types::{AcgId, InodeAttrs};

    fn now() -> Timestamp {
        Timestamp::from_secs(100 * 86_400)
    }

    fn seeded_group() -> AcgIndexGroup {
        let mut g = AcgIndexGroup::new(AcgId::new(1), GroupConfig::default());
        for i in 0..500u64 {
            let rec = FileRecord::new(
                FileId::new(i),
                InodeAttrs::builder()
                    .size(i * 1024 * 1024) // i MiB
                    .mtime(now() - propeller_types::Duration::from_secs(i * 3600)) // i hours old
                    .uid((i % 4) as u32)
                    .build(),
            )
            .with_keyword(if i % 10 == 0 { "firefox" } else { "other" });
            g.enqueue(IndexOp::Upsert(rec), now()).unwrap();
        }
        g.commit(now()).unwrap();
        g
    }

    fn run(g: &AcgIndexGroup, text: &str) -> Vec<FileId> {
        let q = Query::parse(text, now()).unwrap();
        execute(g, &q.predicate)
    }

    fn brute(g: &AcgIndexGroup, text: &str) -> Vec<FileId> {
        let q = Query::parse(text, now()).unwrap();
        g.scan(|r| matches_record(r, &q.predicate))
    }

    #[test]
    fn size_range_matches_brute_force() {
        let g = seeded_group();
        for q in ["size>16m", "size>=100m", "size<1m", "size>100m & size<200m"] {
            assert_eq!(run(&g, q), brute(&g, q), "query {q}");
        }
        assert_eq!(run(&g, "size>16m").len(), 500 - 17);
    }

    #[test]
    fn paper_query_1_size_and_mtime() {
        let g = seeded_group();
        let q = "size>100m & mtime<24h";
        let got = run(&g, q);
        assert_eq!(got, brute(&g, q));
        // i > 100 (size) and i < 24 (age in hours): empty intersection.
        assert!(got.is_empty());
        let q2 = "size>10m & mtime<24h";
        let got2 = run(&g, q2);
        assert_eq!(got2, brute(&g, q2));
        // 10 < i < 24.
        assert_eq!(got2.len(), 13);
    }

    #[test]
    fn paper_query_2_keyword_and_mtime() {
        let g = seeded_group();
        let q = "keyword:firefox & mtime<1week";
        let got = run(&g, q);
        assert_eq!(got, brute(&g, q));
        // Multiples of 10 younger than 168 hours: 0,10,...,160 => 17.
        assert_eq!(got.len(), 17);
    }

    #[test]
    fn disjunction_and_negation() {
        let g = seeded_group();
        for q in [
            "size<1m | size>490m",
            "!(keyword:firefox)",
            "keyword:firefox | keyword:other",
            "!(size>10m) & uid=1",
        ] {
            assert_eq!(run(&g, q), brute(&g, q), "query {q}");
        }
    }

    #[test]
    fn match_all() {
        let g = seeded_group();
        assert_eq!(run(&g, "*").len(), 500);
    }

    #[test]
    fn results_are_sorted_and_unique() {
        let g = seeded_group();
        let r = run(&g, "size>=0");
        let mut sorted = r.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(r, sorted);
    }

    #[test]
    fn search_commits_pending_updates_first() {
        let mut g = seeded_group();
        let rec = FileRecord::new(FileId::new(9999), InodeAttrs::builder().size(1 << 40).build());
        g.enqueue(IndexOp::Upsert(rec), now()).unwrap();
        // Plain execute (no commit) must not see it...
        assert!(!run(&g, "size>1t").contains(&FileId::new(9999)));
        // ...but search (commit-then-execute) must.
        let q = Query::parse("size>=1t", now()).unwrap();
        let got = search(&mut g, &q.predicate, now()).unwrap();
        assert_eq!(got, vec![FileId::new(9999)]);
    }

    #[test]
    fn empty_group_returns_empty() {
        let g = AcgIndexGroup::new(AcgId::new(2), GroupConfig::default());
        assert!(run(&g, "size>0").is_empty());
        assert!(run(&g, "*").is_empty());
    }

    #[test]
    fn custom_attr_queries() {
        let mut g = AcgIndexGroup::new(AcgId::new(3), GroupConfig::default());
        for i in 0..20u64 {
            let rec = FileRecord::new(FileId::new(i), InodeAttrs::default())
                .with_custom("energy", Value::F64(-(i as f64)));
            g.enqueue(IndexOp::Upsert(rec), now()).unwrap();
        }
        g.commit(now()).unwrap();
        let q = Query::parse("energy<-15", now()).unwrap();
        let got = execute(&g, &q.predicate);
        assert_eq!(got.len(), 4); // -16..-19
    }

    #[test]
    fn request_topk_matches_full_execution_prefix() {
        use crate::request::{SearchRequest, SortKey};
        let g = seeded_group();
        let q = Query::parse("size>16m", now()).unwrap();
        let full = execute(&g, &q.predicate);
        let req = SearchRequest::new(q.predicate.clone()).with_limit(10);
        let (hits, stats) = execute_request(&g, &req);
        let ids: Vec<FileId> = hits.iter().map(|h| h.file).collect();
        assert_eq!(ids, full[..10].to_vec(), "top-10 by file id = sorted prefix");
        assert!(stats.retained_peak <= 10, "bounded heap: {}", stats.retained_peak);
        assert_eq!(stats.acgs_consulted, 1);

        // Descending size: the k largest files.
        let req = SearchRequest::new(q.predicate.clone())
            .with_limit(5)
            .sorted_by(SortKey::Descending(propeller_types::AttrName::Size));
        let (hits, stats) = execute_request(&g, &req);
        let sizes: Vec<u64> =
            hits.iter().map(|h| h.sort_key.clone().unwrap().as_u64().unwrap()).collect();
        assert_eq!(sizes, vec![499 << 20, 498 << 20, 497 << 20, 496 << 20, 495 << 20]);
        assert!(stats.retained_peak <= 5);
    }

    #[test]
    fn request_cursor_pages_cover_exactly_the_full_result() {
        use crate::request::SearchRequest;
        let g = seeded_group();
        let q = Query::parse("size>16m", now()).unwrap();
        let full = execute(&g, &q.predicate);
        let mut pages = Vec::new();
        let mut cursor = None;
        loop {
            let mut req = SearchRequest::new(q.predicate.clone()).with_limit(64);
            if let Some(c) = cursor.take() {
                req = req.after(c);
            }
            let (hits, stats) = execute_request(&g, &req);
            assert!(stats.retained_peak <= 64);
            if hits.is_empty() {
                break;
            }
            pages.extend(hits.iter().map(|h| h.file));
            match crate::request::next_cursor(&hits, Some(64)) {
                Some(c) => cursor = Some(c),
                None => break,
            }
        }
        assert_eq!(pages, full);
    }

    #[test]
    fn request_projection_round_trips_attributes() {
        use crate::request::{Projection, SearchRequest};
        let g = seeded_group();
        let q = Query::parse("size>=499m", now()).unwrap();
        let req = SearchRequest::new(q.predicate).with_projection(Projection::Attrs(vec![
            propeller_types::AttrName::Size,
            propeller_types::AttrName::Uid,
        ]));
        let (hits, _) = execute_request(&g, &req);
        assert_eq!(hits.len(), 1);
        assert_eq!(
            hits[0].attrs,
            vec![
                (propeller_types::AttrName::Size, Value::U64(499 << 20)),
                (propeller_types::AttrName::Uid, Value::U64(3)),
            ]
        );
    }

    #[test]
    fn matches_record_multivalued_any_semantics() {
        let rec = FileRecord::new(FileId::new(1), InodeAttrs::default())
            .with_keyword("alpha")
            .with_keyword("beta");
        assert!(matches_record(&rec, &Predicate::Keyword("beta".into())));
        assert!(!matches_record(&rec, &Predicate::Keyword("gamma".into())));
    }
}
