//! Query substrate: AST, parser, planner and executor for Propeller
//! file-search requests.
//!
//! The paper's File Query Engine interprets requests "from either the file
//! system namespace (e.g., a dynamic query-directory `/foo/bar/?size>1m`)
//! or a file-search API" (§IV). This crate implements that engine's
//! language side:
//!
//! * [`Predicate`] / [`Query`] — the AST (comparisons, keyword match,
//!   `&`/`|`/`!` combinators),
//! * [`Query::parse`] — the text syntax, including size suffixes (`1m`,
//!   `16mb`, `1g`) and relative-time literals (`mtime < 1day`),
//! * [`plan`] — index selection against any [`IndexCatalog`] (hash for
//!   equality, B+-tree for ranges, K-D tree for multi-attribute boxes,
//!   full scan as fallback),
//! * [`execute`] / [`search`] — plan execution with full-predicate
//!   post-filtering; [`search`] commits the group first, enforcing the
//!   paper's search-sees-every-acknowledged-update rule,
//! * [`SearchRequest`] / [`SearchResponse`] — the first-class search API:
//!   top-k ([`execute_request`] bounds per-group materialization to
//!   O(limit)), sorting, projection, cursor pagination and fan-out
//!   failure policy. This is the canonical entry shape; the bare
//!   `Predicate` functions above are thin compatibility wrappers,
//! * [`execute_node_request`] — multi-ACG execution with a **node-global
//!   k cutoff**: per-ACG ordered candidate streams pulled through one
//!   k-way merge (stop at `k` total admitted hits across all ACGs), and a
//!   shared [`GlobalCutoff`] pruning non-ordered scans against the merged
//!   worst-retained key — seeded with each ordered stream's first hit so
//!   mixed-plan nodes prune from the start,
//! * [`NodeSearchSession`] — the same node-level search *suspended
//!   between client pulls*: the cluster extends the k cutoff across the
//!   wire by pulling each node's merge one small page at a time, so cold
//!   nodes ship ~one page instead of `k` hits.
//!
//! # Examples
//!
//! ```
//! use propeller_query::Query;
//! use propeller_types::Timestamp;
//!
//! let now = Timestamp::from_secs(1_000_000);
//! let q = Query::parse("size>16m & mtime<1day", now).unwrap();
//! assert!(q.scope.is_none());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ast;
mod exec;
mod parser;
mod plan;
mod request;
mod session;

pub use ast::{CompareOp, ContainsMode, Predicate, Query};
pub use exec::{
    execute, execute_classic, execute_node_request, execute_node_request_sequential,
    execute_request, execute_request_reference, matches_record, search, search_request,
    ClassicResults, ClassicTask, OrderedHitStream,
};
pub use parser::parse_size;
pub use plan::{plan, plan_request, AccessPath, IndexCatalog, Plan};
pub use request::{
    merge_hit_sources, merge_sorted_hits, next_cursor, run_local_search, AccessPathKind, Cursor,
    FanOutPolicy, GlobalCutoff, Hit, HitMerger, Projection, SearchRequest, SearchResponse,
    SearchStats, SortKey, TopK,
};
pub use session::{NodeSearchSession, SessionPage};
