//! Recursive-descent parser for the query syntax.
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! query    := or
//! or       := and ('|' and)*
//! and      := unary ('&' unary)*
//! unary    := '!' unary | '(' or ')' | '*' | term
//! term     := 'keyword' ':' word
//!           | ('contains' | 'contains-any' | 'phrase') ':' word
//!           | attr OP operand
//! OP       := '=' | '!=' | '<' | '<=' | '>' | '>='
//! operand  := number unit? | quoted | word
//! unit     := size (k|kb|m|mb|g|gb|t|tb) or time (s|sec|min|h|hour|day|week)
//! ```
//!
//! `size>1m` means one mebibyte; `mtime<1day` means "modified within the
//! last day" — the parser rewrites the age comparison onto the absolute
//! `mtime` axis using the supplied `now` (`age < 1day` ⇔ `mtime > now−1day`).
//!
//! Full-text terms take a quoted (or bare) word whose content is tokenized
//! with the same tokenizer the inverted index uses: `contains:"tax report"`
//! requires every term, `contains-any:"jpg png"` any term, and
//! `phrase:"quarterly sales report"` the exact adjacent sequence within
//! one text field.

use propeller_types::{AttrName, Duration, Error, Result, Timestamp, Value};

use crate::ast::{CompareOp, ContainsMode, Predicate, Query};

/// Parses a size literal with optional binary-unit suffix (`16m`, `1gb`,
/// `512`), returning bytes.
///
/// # Errors
///
/// Returns [`Error::InvalidQuery`] for malformed numbers or unknown units.
///
/// # Examples
///
/// ```
/// use propeller_query::parse_size;
/// assert_eq!(parse_size("16m").unwrap(), 16 << 20);
/// assert_eq!(parse_size("1gb").unwrap(), 1 << 30);
/// assert_eq!(parse_size("512").unwrap(), 512);
/// ```
pub fn parse_size(text: &str) -> Result<u64> {
    let (num, unit) = split_number(text)?;
    let mult: u64 = match unit.to_ascii_lowercase().as_str() {
        "" | "b" => 1,
        "k" | "kb" => 1 << 10,
        "m" | "mb" => 1 << 20,
        "g" | "gb" => 1 << 30,
        "t" | "tb" => 1 << 40,
        other => {
            return Err(Error::InvalidQuery(format!("unknown size unit {other:?}")));
        }
    };
    Ok((num * mult as f64).round() as u64)
}

fn parse_duration(text: &str) -> Result<Option<Duration>> {
    let Ok((num, unit)) = split_number(text) else {
        return Ok(None);
    };
    let secs: f64 = match unit.to_ascii_lowercase().as_str() {
        "s" | "sec" | "second" | "seconds" => 1.0,
        "min" | "minute" | "minutes" => 60.0,
        "h" | "hour" | "hours" => 3600.0,
        "day" | "days" | "d" => 86_400.0,
        "week" | "weeks" | "w" => 7.0 * 86_400.0,
        _ => return Ok(None),
    };
    Ok(Some(Duration::from_secs_f64(num * secs)))
}

fn split_number(text: &str) -> Result<(f64, &str)> {
    let split = text
        .char_indices()
        .find(|(_, c)| !c.is_ascii_digit() && *c != '.')
        .map(|(i, _)| i)
        .unwrap_or(text.len());
    if split == 0 {
        return Err(Error::InvalidQuery(format!("expected a number in {text:?}")));
    }
    let num: f64 = text[..split]
        .parse()
        .map_err(|e| Error::InvalidQuery(format!("bad number {text:?}: {e}")))?;
    Ok((num, &text[split..]))
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Word(String),
    Op(CompareOp),
    Amp,
    Pipe,
    Bang,
    LParen,
    RParen,
    Colon,
    Star,
}

fn tokenize(text: &str) -> Result<Vec<Token>> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = text.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            ' ' | '\t' | '\n' => i += 1,
            '&' => {
                tokens.push(Token::Amp);
                i += 1;
            }
            '|' => {
                tokens.push(Token::Pipe);
                i += 1;
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            ':' => {
                tokens.push(Token::Colon);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Op(CompareOp::Eq));
                i += 1;
            }
            '!' => {
                if chars.get(i + 1) == Some(&'=') {
                    tokens.push(Token::Op(CompareOp::Ne));
                    i += 2;
                } else {
                    tokens.push(Token::Bang);
                    i += 1;
                }
            }
            '<' => {
                if chars.get(i + 1) == Some(&'=') {
                    tokens.push(Token::Op(CompareOp::Le));
                    i += 2;
                } else {
                    tokens.push(Token::Op(CompareOp::Lt));
                    i += 1;
                }
            }
            '>' => {
                if chars.get(i + 1) == Some(&'=') {
                    tokens.push(Token::Op(CompareOp::Ge));
                    i += 2;
                } else {
                    tokens.push(Token::Op(CompareOp::Gt));
                    i += 1;
                }
            }
            '"' => {
                let mut word = String::new();
                i += 1;
                while i < chars.len() && chars[i] != '"' {
                    word.push(chars[i]);
                    i += 1;
                }
                if i >= chars.len() {
                    return Err(Error::InvalidQuery("unterminated string literal".into()));
                }
                i += 1; // closing quote
                tokens.push(Token::Word(word));
            }
            c if c.is_ascii_alphanumeric() || c == '_' || c == '.' || c == '/' || c == '-' => {
                let mut word = String::new();
                while i < chars.len()
                    && (chars[i].is_ascii_alphanumeric()
                        || chars[i] == '_'
                        || chars[i] == '.'
                        || chars[i] == '/'
                        || chars[i] == '-')
                {
                    word.push(chars[i]);
                    i += 1;
                }
                tokens.push(Token::Word(word));
            }
            other => {
                return Err(Error::InvalidQuery(format!("unexpected character {other:?}")));
            }
        }
    }
    Ok(tokens)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    now: Timestamp,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_word(&mut self) -> Result<String> {
        match self.next() {
            Some(Token::Word(w)) => Ok(w),
            other => Err(Error::InvalidQuery(format!("expected a word, found {other:?}"))),
        }
    }

    fn parse_or(&mut self) -> Result<Predicate> {
        let mut parts = vec![self.parse_and()?];
        while self.peek() == Some(&Token::Pipe) {
            self.next();
            parts.push(self.parse_and()?);
        }
        Ok(if parts.len() == 1 { parts.pop().expect("one element") } else { Predicate::Or(parts) })
    }

    fn parse_and(&mut self) -> Result<Predicate> {
        let mut parts = vec![self.parse_unary()?];
        while self.peek() == Some(&Token::Amp) {
            self.next();
            parts.push(self.parse_unary()?);
        }
        Ok(Predicate::and(parts))
    }

    fn parse_unary(&mut self) -> Result<Predicate> {
        match self.peek() {
            Some(Token::Bang) => {
                self.next();
                Ok(Predicate::Not(Box::new(self.parse_unary()?)))
            }
            Some(Token::LParen) => {
                self.next();
                let inner = self.parse_or()?;
                match self.next() {
                    Some(Token::RParen) => Ok(inner),
                    other => Err(Error::InvalidQuery(format!("expected ')', found {other:?}"))),
                }
            }
            Some(Token::Star) => {
                self.next();
                Ok(Predicate::True)
            }
            _ => self.parse_term(),
        }
    }

    fn parse_term(&mut self) -> Result<Predicate> {
        let word = self.expect_word()?;
        if word.eq_ignore_ascii_case("keyword") && self.peek() == Some(&Token::Colon) {
            self.next();
            let kw = self.expect_word()?;
            return Ok(Predicate::Keyword(kw));
        }
        if self.peek() == Some(&Token::Colon) {
            let mode = if word.eq_ignore_ascii_case("contains") {
                Some(ContainsMode::All)
            } else if word.eq_ignore_ascii_case("contains-any") {
                Some(ContainsMode::Any)
            } else if word.eq_ignore_ascii_case("phrase") {
                Some(ContainsMode::Phrase)
            } else {
                None
            };
            if let Some(mode) = mode {
                self.next();
                let text = self.expect_word()?;
                let terms = propeller_index::tokenize(&text);
                if terms.is_empty() {
                    return Err(Error::InvalidQuery(format!(
                        "{word}: needs at least one searchable term, got {text:?}"
                    )));
                }
                return Ok(Predicate::Contains { terms, mode });
            }
        }
        let attr = AttrName::parse(&word);
        let op = match self.next() {
            Some(Token::Op(op)) => op,
            Some(Token::Colon) => CompareOp::Eq, // attr:value sugar
            other => {
                return Err(Error::InvalidQuery(format!(
                    "expected a comparison after {word:?}, found {other:?}"
                )));
            }
        };
        let operand = self.expect_word()?;
        self.build_compare(attr, op, &operand)
    }

    fn build_compare(&self, attr: AttrName, op: CompareOp, operand: &str) -> Result<Predicate> {
        // Relative time on time attributes: `mtime < 1day` means age < 1day.
        if matches!(attr, AttrName::Mtime | AttrName::Ctime) {
            if let Some(age) = parse_duration(operand)? {
                let cutoff =
                    Timestamp::from_micros(self.now.as_micros().saturating_sub(age.as_micros()));
                return Ok(Predicate::Compare {
                    attr,
                    op: op.flipped(),
                    value: Value::U64(cutoff.as_micros()),
                });
            }
        }
        if matches!(attr, AttrName::Size) {
            return Ok(Predicate::Compare { attr, op, value: Value::U64(parse_size(operand)?) });
        }
        // Generic operand: number when it parses as one, string otherwise.
        let value = match operand.parse::<u64>() {
            Ok(n) => Value::U64(n),
            Err(_) => match operand.parse::<f64>() {
                Ok(x) => Value::F64(x),
                Err(_) => Value::Str(operand.to_owned()),
            },
        };
        Ok(Predicate::Compare { attr, op, value })
    }
}

/// Parses query text into a [`Query`] (no scope).
pub(crate) fn parse_query(text: &str, now: Timestamp) -> Result<Query> {
    let tokens = tokenize(text)?;
    if tokens.is_empty() {
        return Err(Error::InvalidQuery("empty query".into()));
    }
    let mut parser = Parser { tokens, pos: 0, now };
    let predicate = parser.parse_or()?;
    if parser.pos != parser.tokens.len() {
        return Err(Error::InvalidQuery(format!("trailing tokens after position {}", parser.pos)));
    }
    Ok(Query { predicate, scope: None })
}

/// Parses the dynamic query-directory form `/path/?predicate`.
pub(crate) fn parse_query_dir(path: &str, now: Timestamp) -> Result<Query> {
    let Some((scope, query)) = path.split_once('?') else {
        return Err(Error::InvalidQuery(format!(
            "query directory {path:?} is missing a '?' segment"
        )));
    };
    let mut q = parse_query(query, now)?;
    q.scope = Some(scope.to_owned());
    Ok(q)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn now() -> Timestamp {
        Timestamp::from_secs(10 * 86_400) // day 10
    }

    #[test]
    fn parse_simple_size_query() {
        let q = Query::parse("size>16m", now()).unwrap();
        assert_eq!(q.predicate, Predicate::cmp(AttrName::Size, CompareOp::Gt, 16u64 << 20));
    }

    #[test]
    fn parse_conjunction_table3_query1() {
        // Paper Table III query #1: size > 1 GB & mtime < 1 day.
        let q = Query::parse("size>1g & mtime<1day", now()).unwrap();
        let conj = q.predicate.conjuncts();
        assert_eq!(conj.len(), 2);
        assert_eq!(*conj[0], Predicate::cmp(AttrName::Size, CompareOp::Gt, 1u64 << 30));
        // mtime<1day rewrites to mtime > now - 1day.
        let expected_cutoff = now().as_micros() - 86_400_000_000;
        assert_eq!(*conj[1], Predicate::cmp(AttrName::Mtime, CompareOp::Gt, expected_cutoff));
    }

    #[test]
    fn parse_keyword_query_table3_query2() {
        let q = Query::parse("keyword:firefox & mtime<1week", now()).unwrap();
        let conj = q.predicate.conjuncts();
        assert_eq!(*conj[0], Predicate::Keyword("firefox".into()));
    }

    #[test]
    fn parse_or_and_not_with_parens() {
        let q = Query::parse("!(size>1m | keyword:tmp) & uid=0", now()).unwrap();
        match &q.predicate {
            Predicate::And(parts) => {
                assert!(matches!(parts[0], Predicate::Not(_)));
                assert_eq!(parts[1], Predicate::cmp(AttrName::Uid, CompareOp::Eq, 0u64));
            }
            other => panic!("unexpected shape: {other:?}"),
        }
    }

    #[test]
    fn parse_query_directory() {
        let q = Query::parse_dir("/foo/bar/?size>1m", now()).unwrap();
        assert_eq!(q.scope.as_deref(), Some("/foo/bar/"));
        assert_eq!(q.predicate, Predicate::cmp(AttrName::Size, CompareOp::Gt, 1u64 << 20));
    }

    #[test]
    fn parse_star_matches_all() {
        assert_eq!(Query::parse("*", now()).unwrap().predicate, Predicate::True);
    }

    #[test]
    fn parse_quoted_strings() {
        let q = Query::parse("keyword:\"hello world\"", now()).unwrap();
        assert_eq!(q.predicate, Predicate::Keyword("hello world".into()));
    }

    #[test]
    fn parse_custom_attribute() {
        let q = Query::parse("energy<-1.5", now());
        // Negative literals come through the word tokenizer as "-1.5".
        let q = q.unwrap();
        assert_eq!(q.predicate, Predicate::cmp(AttrName::custom("energy"), CompareOp::Lt, -1.5));
    }

    #[test]
    fn size_units() {
        assert_eq!(parse_size("1k").unwrap(), 1024);
        assert_eq!(parse_size("2mb").unwrap(), 2 << 20);
        assert_eq!(parse_size("1t").unwrap(), 1 << 40);
        assert_eq!(parse_size("1.5k").unwrap(), 1536);
        assert!(parse_size("abc").is_err());
        assert!(parse_size("5parsecs").is_err());
    }

    #[test]
    fn ge_le_operators() {
        let q = Query::parse("size>=4k & size<=8k", now()).unwrap();
        let conj = q.predicate.conjuncts();
        assert_eq!(*conj[0], Predicate::cmp(AttrName::Size, CompareOp::Ge, 4096u64));
        assert_eq!(*conj[1], Predicate::cmp(AttrName::Size, CompareOp::Le, 8192u64));
    }

    #[test]
    fn errors_are_reported() {
        assert!(Query::parse("", now()).is_err());
        assert!(Query::parse("size>", now()).is_err());
        assert!(Query::parse("size 5", now()).is_err());
        assert!(Query::parse("(size>1", now()).is_err());
        assert!(Query::parse("size>1 size>2", now()).is_err());
        assert!(Query::parse("\"unterminated", now()).is_err());
        assert!(Query::parse_dir("/no/query/here", now()).is_err());
    }

    #[test]
    fn mtime_relative_week() {
        let q = Query::parse("mtime<1week", now()).unwrap();
        let cutoff = now().as_micros() - 7 * 86_400_000_000;
        assert_eq!(q.predicate, Predicate::cmp(AttrName::Mtime, CompareOp::Gt, cutoff));
    }

    #[test]
    fn mtime_absolute_number_stays_absolute() {
        let q = Query::parse("mtime>123456", now()).unwrap();
        assert_eq!(q.predicate, Predicate::cmp(AttrName::Mtime, CompareOp::Gt, 123_456u64));
    }

    #[test]
    fn contains_phrase_and_any_parse_with_tokenized_terms() {
        let q = Query::parse("contains:\"Tax-Report 2013\"", now()).unwrap();
        assert_eq!(
            q.predicate,
            Predicate::contains(vec!["tax", "report", "2013"], ContainsMode::All)
        );
        let q = Query::parse("contains-any:\"jpg png\"", now()).unwrap();
        assert_eq!(q.predicate, Predicate::contains(vec!["jpg", "png"], ContainsMode::Any));
        let q = Query::parse("phrase:\"quarterly sales report\"", now()).unwrap();
        assert_eq!(
            q.predicate,
            Predicate::contains(vec!["quarterly", "sales", "report"], ContainsMode::Phrase)
        );
        // Bare (unquoted) single-word operands work too, and compose.
        let q = Query::parse("contains:report & size>1m", now()).unwrap();
        assert_eq!(q.predicate.conjuncts().len(), 2);
        // No searchable token in the operand is an error...
        assert!(Query::parse("contains:\"--- ---\"", now()).is_err());
        // ...and an attribute named `contains` is still reachable via
        // comparison operators (the colon sugar is claimed by full text).
        let q = Query::parse("contains=5", now()).unwrap();
        assert_eq!(q.predicate, Predicate::cmp(AttrName::custom("contains"), CompareOp::Eq, 5u64));
    }

    #[test]
    fn colon_sugar_for_equality() {
        let q = Query::parse("uid:1000", now()).unwrap();
        assert_eq!(q.predicate, Predicate::cmp(AttrName::Uid, CompareOp::Eq, 1000u64));
    }
}
