//! The first-class search API: [`SearchRequest`] in, [`SearchResponse`]
//! out.
//!
//! Every search entry point in the system — the cluster client
//! (`FileQueryEngine`), the single-node service (`Propeller`), the wire
//! protocol, and the evaluation baselines — speaks this request/response
//! pair. A request carries the predicate plus result-set shaping options:
//!
//! * [`SearchRequest::limit`] — top-k; pushed into plan execution so no
//!   ACG ever retains more than O(k) hits past its candidate filter,
//! * [`SearchRequest::sort`] — order by any built-in attribute, ascending
//!   or descending (default: file id),
//! * [`SearchRequest::projection`] — ids only, selected attributes, or
//!   full records,
//! * [`SearchRequest::cursor`] — opaque continuation for pagination,
//! * [`SearchRequest::fan_out`] — whether a search must reach every Index
//!   Node or may return a partial (but well-labelled) result.
//!
//! The response returns typed [`Hit`]s, a completeness marker with the
//! unreachable nodes, per-query [`SearchStats`], and the continuation
//! [`Cursor`] when more results may exist.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};

use propeller_index::FileRecord;
use propeller_types::{AcgId, AttrName, Duration, Error, FileId, NodeId, Result, Timestamp, Value};

use crate::ast::{Predicate, Query};
use crate::exec::matches_record;
use crate::plan::AccessPath;

// ---------------------------------------------------------------------------
// Request options
// ---------------------------------------------------------------------------

/// Result ordering. The default orders by file id ascending, which is also
/// the tie-break within equal attribute values, so every ordering is total
/// and pagination cursors are unambiguous.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum SortKey {
    /// Ascending file id (the classic `Vec<FileId>` order).
    #[default]
    FileId,
    /// Ascending by a built-in inode attribute.
    Ascending(AttrName),
    /// Descending by a built-in inode attribute.
    Descending(AttrName),
    /// Descending BM25 relevance score (best match first). The score is not
    /// a record attribute — the executor computes it against the corpus
    /// statistics of the serving ACG and carries it as the hit's sort key
    /// ([`propeller_types::Value::F64`]) — so this sort is only valid for
    /// requests whose predicate mentions a `contains` term (see
    /// [`SearchRequest::validate`]).
    Relevance,
}

impl SortKey {
    /// The attribute sorted by, if any.
    pub fn attr(&self) -> Option<&AttrName> {
        match self {
            SortKey::FileId | SortKey::Relevance => None,
            SortKey::Ascending(a) | SortKey::Descending(a) => Some(a),
        }
    }

    /// Whether the attribute order is reversed.
    pub fn is_descending(&self) -> bool {
        matches!(self, SortKey::Descending(_))
    }

    /// Extracts the sort key value of a record (`None` for file-id order
    /// and for relevance, whose score needs corpus statistics the record
    /// alone does not carry — the executor fills it in).
    pub fn key_of(&self, record: &FileRecord) -> Option<Value> {
        self.attr().and_then(|a| record.attrs.get(a))
    }

    /// Result-order comparison of `(key, file)` pairs: equal keys always
    /// tie-break on ascending file id.
    pub fn cmp_keys(
        &self,
        a_key: Option<&Value>,
        a_file: FileId,
        b_key: Option<&Value>,
        b_file: FileId,
    ) -> Ordering {
        let by_key = match self {
            SortKey::FileId => Ordering::Equal,
            SortKey::Ascending(_) => a_key.cmp(&b_key),
            SortKey::Descending(_) | SortKey::Relevance => b_key.cmp(&a_key),
        };
        by_key.then(a_file.cmp(&b_file))
    }

    /// Result-order comparison of two hits.
    pub fn cmp_hits(&self, a: &Hit, b: &Hit) -> Ordering {
        self.cmp_keys(a.sort_key.as_ref(), a.file, b.sort_key.as_ref(), b.file)
    }
}

/// Which attributes each [`Hit`] carries back.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Projection {
    /// Ids only (cheapest; the classic result shape).
    #[default]
    Ids,
    /// The selected attributes (built-in, keyword or custom).
    Attrs(Vec<AttrName>),
    /// Every attribute of the record: all inode fields, keywords and
    /// custom attributes.
    Full,
}

impl Projection {
    /// Projects a record into the attribute list a [`Hit`] carries.
    pub fn project(&self, record: &FileRecord) -> Vec<(AttrName, Value)> {
        match self {
            Projection::Ids => Vec::new(),
            Projection::Attrs(attrs) => {
                let mut out = Vec::with_capacity(attrs.len());
                for attr in attrs {
                    out.extend(attr_values(record, attr).into_iter().map(|v| (attr.clone(), v)));
                }
                out
            }
            Projection::Full => {
                let mut out = record.attrs.entries();
                out.extend(
                    record.keywords.iter().map(|k| (AttrName::Keyword, Value::from(k.as_str()))),
                );
                out.extend(
                    record.custom.iter().map(|(n, v)| (AttrName::custom(n.clone()), v.clone())),
                );
                out
            }
        }
    }
}

fn attr_values(record: &FileRecord, attr: &AttrName) -> Vec<Value> {
    match attr {
        AttrName::Keyword => record.keywords.iter().map(|k| Value::from(k.as_str())).collect(),
        AttrName::Custom(name) => {
            record.custom.iter().filter(|(n, _)| n == name).map(|(_, v)| v.clone()).collect()
        }
        builtin => record.attrs.get(builtin).into_iter().collect(),
    }
}

/// How a fan-out search treats unreachable replicas.
///
/// Both policies are **quorum-aware**: an ACG only counts as lost when
/// *every* node of its replica set is unreachable — as long as one replica
/// answers (possibly after a mid-stream failover), the ACG's hits are
/// complete and no degradation is reported.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FanOutPolicy {
    /// Every relevant ACG must be answered by at least one of its
    /// replicas; losing all replicas of any ACG fails the search (the
    /// consistency-first default).
    #[default]
    RequireAll,
    /// Tolerate lost ACGs: return the hits from the replica-set groups
    /// that answered, with [`SearchResponse::complete`] `false` and the
    /// lost ACGs listed in [`SearchResponse::unreachable`], as long as at
    /// least `min_nodes` groups answered.
    AllowPartial {
        /// Minimum number of answering replica-set groups for the search
        /// to succeed. (Named for the pre-replication protocol where one
        /// group was exactly one node; with R = 1 that reading still
        /// holds.)
        min_nodes: usize,
    },
}

/// An opaque pagination token: "resume strictly after this hit". Obtained
/// from [`SearchResponse::cursor`]; its contents are an implementation
/// detail and may change.
#[derive(Debug, Clone, PartialEq)]
pub struct Cursor {
    key: Option<Value>,
    file: FileId,
}

impl Cursor {
    /// The cursor resuming after `hit`.
    pub fn after(hit: &Hit) -> Cursor {
        Cursor { key: hit.sort_key.clone(), file: hit.file }
    }

    /// The sort-key value this cursor resumes after (used by the executor
    /// to tighten an ordered scan's bounds).
    pub(crate) fn sort_key(&self) -> Option<&Value> {
        self.key.as_ref()
    }

    /// Whether `(key, file)` lies strictly after this cursor in `sort`
    /// order (i.e. belongs to a later page).
    pub fn admits(&self, sort: &SortKey, key: Option<&Value>, file: FileId) -> bool {
        sort.cmp_keys(key, file, self.key.as_ref(), self.file) == Ordering::Greater
    }
}

// ---------------------------------------------------------------------------
// Request / response
// ---------------------------------------------------------------------------

/// A file-search request: predicate plus result-set shaping options.
///
/// # Examples
///
/// ```
/// use propeller_query::{FanOutPolicy, SearchRequest, SortKey};
/// use propeller_types::{AttrName, Timestamp};
///
/// let req = SearchRequest::parse("size>16m", Timestamp::from_secs(0))
///     .unwrap()
///     .with_limit(10)
///     .sorted_by(SortKey::Descending(AttrName::Size))
///     .with_fan_out(FanOutPolicy::AllowPartial { min_nodes: 1 });
/// assert_eq!(req.limit, Some(10));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SearchRequest {
    /// The exact match predicate.
    pub predicate: Predicate,
    /// Top-k: at most this many hits come back (and no ACG retains more
    /// than O(k) hits past its candidate filter while computing them).
    pub limit: Option<usize>,
    /// Result ordering.
    pub sort: SortKey,
    /// Attributes carried per hit.
    pub projection: Projection,
    /// Resume strictly after this point (from a previous response).
    pub cursor: Option<Cursor>,
    /// Partial-failure tolerance of the fan-out.
    pub fan_out: FanOutPolicy,
    /// Opt-in for availability-first pagination under
    /// [`FanOutPolicy::AllowPartial`]: incomplete responses normally
    /// suppress their continuation cursor (resuming past a page that is
    /// missing lost ACGs' hits would skip them permanently). With this
    /// set, an incomplete response carries the cursor **and** the
    /// unreachable-ACG set, so a caller can keep paginating the reachable
    /// ACGs now and separately backfill the gap (re-query the listed ACGs'
    /// range once a replica recovers) instead of stalling the whole scan.
    pub cursor_on_incomplete: bool,
}

impl SearchRequest {
    /// A request with default options (unlimited, file-id order, ids only,
    /// require-all fan-out).
    pub fn new(predicate: Predicate) -> Self {
        SearchRequest {
            predicate,
            limit: None,
            sort: SortKey::default(),
            projection: Projection::default(),
            cursor: None,
            fan_out: FanOutPolicy::default(),
            cursor_on_incomplete: false,
        }
    }

    /// Parses the textual query syntax into a request with default options.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidQuery`] on parse errors.
    pub fn parse(text: &str, now: Timestamp) -> Result<Self> {
        Ok(SearchRequest::new(Query::parse(text, now)?.predicate))
    }

    /// Sets the top-k limit.
    #[must_use]
    pub fn with_limit(mut self, limit: usize) -> Self {
        self.limit = Some(limit);
        self
    }

    /// Sets the result ordering.
    #[must_use]
    pub fn sorted_by(mut self, sort: SortKey) -> Self {
        self.sort = sort;
        self
    }

    /// Sets the per-hit projection.
    #[must_use]
    pub fn with_projection(mut self, projection: Projection) -> Self {
        self.projection = projection;
        self
    }

    /// Resumes after `cursor` (from a previous response).
    #[must_use]
    pub fn after(mut self, cursor: Cursor) -> Self {
        self.cursor = Some(cursor);
        self
    }

    /// Sets the fan-out policy.
    #[must_use]
    pub fn with_fan_out(mut self, fan_out: FanOutPolicy) -> Self {
        self.fan_out = fan_out;
        self
    }

    /// Opts incomplete (partial fan-out) responses into carrying a
    /// continuation cursor alongside their unreachable-ACG set (see
    /// [`SearchRequest::cursor_on_incomplete`]).
    #[must_use]
    pub fn with_cursor_on_incomplete(mut self) -> Self {
        self.cursor_on_incomplete = true;
        self
    }

    /// Validates option combinations: sorting is only defined over
    /// built-in (single-valued, always-present) attributes, and relevance
    /// order needs a `contains` term to score against.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidQuery`] for keyword/custom sort keys, and
    /// for a relevance sort whose predicate mentions no `contains` term.
    pub fn validate(&self) -> Result<()> {
        if let Some(attr) = self.sort.attr() {
            if !attr.is_inode_attr() {
                return Err(Error::InvalidQuery(format!(
                    "cannot sort by multi-valued attribute {attr}"
                )));
            }
        }
        if self.sort == SortKey::Relevance && !self.predicate.mentions_contains() {
            return Err(Error::InvalidQuery(
                "relevance sort needs a contains/phrase term to score against".into(),
            ));
        }
        Ok(())
    }
}

/// One search result: the file, its owning ACG (when the search ran
/// against ACG-partitioned indices) and the projected attributes.
#[derive(Debug, Clone, PartialEq)]
pub struct Hit {
    /// The matching file.
    pub file: FileId,
    /// The ACG whose index group produced the hit (`None` for baselines
    /// without ACG partitioning).
    pub acg: Option<AcgId>,
    /// Attributes selected by the request's [`Projection`].
    pub attrs: Vec<(AttrName, Value)>,
    /// The value of the sort attribute (`None` under file-id order).
    pub sort_key: Option<Value>,
}

impl Hit {
    /// Builds a hit from a record under the given request options.
    pub fn of_record(
        record: &FileRecord,
        acg: Option<AcgId>,
        sort: &SortKey,
        projection: &Projection,
    ) -> Hit {
        Hit {
            file: record.file,
            acg,
            attrs: projection.project(record),
            sort_key: sort.key_of(record),
        }
    }
}

/// Which access path an ACG's plan used (a compact mirror of
/// [`AccessPath`] for stats reporting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessPathKind {
    /// Hash-index equality probe.
    HashEq,
    /// B+-tree range scan.
    BTreeRange,
    /// K-D tree box query.
    KdBox,
    /// Inverted-index postings merge (document-at-a-time).
    Postings,
    /// Sort-order B+-tree walk with early termination.
    OrderedScan,
    /// Full record scan.
    FullScan,
}

impl From<&AccessPath> for AccessPathKind {
    fn from(path: &AccessPath) -> Self {
        match path {
            AccessPath::HashEq { .. } => AccessPathKind::HashEq,
            AccessPath::BTreeRange { .. } => AccessPathKind::BTreeRange,
            AccessPath::KdBox { .. } => AccessPathKind::KdBox,
            AccessPath::Postings { .. } => AccessPathKind::Postings,
            AccessPath::OrderedScan { .. } => AccessPathKind::OrderedScan,
            AccessPath::FullScan => AccessPathKind::FullScan,
        }
    }
}

/// Per-query execution statistics, merged across ACGs and nodes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Index groups consulted.
    pub acgs_consulted: usize,
    /// Candidate records fetched past the access paths and evaluated
    /// against the full predicate.
    pub candidates_scanned: usize,
    /// The largest number of hits any single ACG retained at once while
    /// computing its result (bounded by the limit when one is set — the
    /// top-k path never materializes a full result set).
    pub retained_peak: usize,
    /// The access path each consulted ACG used.
    pub access_paths: Vec<(AcgId, AccessPathKind)>,
    /// Records an early-terminated ordered scan never had to examine
    /// (the consulted group's size minus the records actually scanned) —
    /// the witness that the cutoff saved work.
    pub candidates_skipped: usize,
    /// Number of per-ACG executions that stopped before exhausting their
    /// candidate stream (ordered-scan early termination, per-ACG or at the
    /// node-global merge).
    pub early_terminated: usize,
    /// The subset of [`SearchStats::candidates_skipped`] recorded at a
    /// *node-global* merge: records in ordered candidate streams the k-way
    /// merge across ACGs never pulled because `k` hits were already
    /// admitted node-wide (the cutoff fired at the merge rather than
    /// inside a per-ACG execution). On a single-ACG node this coincides
    /// with plain per-ACG early termination; the cross-ACG saving proper
    /// is visible in `candidates_scanned` staying near `k` total instead
    /// of `k × ACGs` (the `topk_search` bench reports both sides).
    pub merge_skipped: usize,
    /// Matching candidates pruned by the shared node-global retention
    /// bound ([`GlobalCutoff`]) before hit materialization on non-ordered
    /// plans. Under parallel execution the exact count depends on worker
    /// interleaving (the bound tightens as ACGs race), so it is a
    /// lower-bound witness, not a deterministic one.
    pub bound_pruned: usize,
    /// Result pages shipped over the wire. A one-shot node exchange counts
    /// as one page; a streamed search session counts one per
    /// `OpenSearch`/`PullHits` round trip, so the merged total across
    /// nodes witnesses how many pulls the cluster-wide cutoff needed.
    pub pages_pulled: usize,
    /// Hits actually shipped over the wire (set by the serving node per
    /// response, summed by the client). Under the streamed cross-node
    /// cutoff this stays well below `k × nodes` when the hot range is
    /// concentrated — the headline witness of the streaming protocol.
    pub hits_shipped: usize,
    /// Hits a closed streamed session was still entitled to ship (the
    /// node-side `k` minus what the client actually pulled before the
    /// global top-k filled). This is what the one-shot k-per-node exchange
    /// would have shipped from that node beyond what the session did —
    /// assuming the node could fill its `k`; the session's ordered streams
    /// were deliberately never advanced to find out.
    pub node_hits_unsent: usize,
    /// Postings blocks a WAND-style relevance merge jumped over whole
    /// because their max-score bound could not beat the worst retained
    /// top-k score — the block-skip witness of the bound pruning.
    pub wand_blocks_skipped: usize,
    /// Postings entries those skipped blocks (and bound-driven seeks)
    /// never examined — the document-level saving of the WAND bound. Like
    /// [`SearchStats::bound_pruned`], a lower-bound witness: the threshold
    /// tightens as the top-k heap fills, so the exact count depends on
    /// candidate order.
    pub wand_docs_pruned: usize,
    /// Hedged "tied" session opens the client fired because a replica
    /// missed the hedge latency budget — the tail-tolerance witness that
    /// the second replica was actually asked.
    pub hedges_fired: usize,
    /// Hedged opens where the *hedge* (not the originally asked replica)
    /// answered first and served the stream — the subset of
    /// [`SearchStats::hedges_fired`] that actually cut the tail.
    pub hedges_won: usize,
    /// Mid-stream replica failovers: a serving replica died (or its
    /// session erred) and the client resumed the same ACG stream on
    /// another replica from its cursor, losing and duplicating nothing.
    pub replica_failovers: usize,
    /// Epochs pinned for this search: one per ACG consulted, each an
    /// `Arc` clone of whatever epoch that ACG had published when the
    /// search opened. The search reads those pinned epochs for its whole
    /// lifetime, so later commits are invisible to it by construction.
    pub epoch_pins: usize,
    /// Commits the serving node published while this search was
    /// executing. Non-zero values witness that ingest proceeded
    /// concurrently with the read — the epoch-pinning counterpart to a
    /// lock the search never took.
    pub commits_during_search: usize,
    /// What the caller waited for. One-shot fan-outs run in parallel, so
    /// merged stats carry the slowest node's service time; a streamed
    /// search issues its pulls sequentially from the client merge, so the
    /// client overwrites the merged value with its measured wall time
    /// across opens, pulls and closes.
    pub elapsed: Duration,
    /// Per-node service-time breakdown: each serving node appends its
    /// `(id, measured service time)` rows and [`SearchStats::absorb`]
    /// concatenates them, so the merged record still attributes latency to
    /// individual nodes after `elapsed` collapsed to the max. A node
    /// appears once per exchange it served (opens, pulls), which is what
    /// lets a slow-node witness pick out the straggler by summing per id.
    pub node_elapsed: Vec<(NodeId, Duration)>,
}

impl SearchStats {
    /// Folds another stats record (e.g. one node's) into this one.
    pub fn absorb(&mut self, other: SearchStats) {
        self.acgs_consulted += other.acgs_consulted;
        self.candidates_scanned += other.candidates_scanned;
        self.retained_peak = self.retained_peak.max(other.retained_peak);
        self.access_paths.extend(other.access_paths);
        self.candidates_skipped += other.candidates_skipped;
        self.early_terminated += other.early_terminated;
        self.merge_skipped += other.merge_skipped;
        self.bound_pruned += other.bound_pruned;
        self.pages_pulled += other.pages_pulled;
        self.hits_shipped += other.hits_shipped;
        self.node_hits_unsent += other.node_hits_unsent;
        self.wand_blocks_skipped += other.wand_blocks_skipped;
        self.wand_docs_pruned += other.wand_docs_pruned;
        self.hedges_fired += other.hedges_fired;
        self.hedges_won += other.hedges_won;
        self.replica_failovers += other.replica_failovers;
        self.epoch_pins += other.epoch_pins;
        self.commits_during_search += other.commits_during_search;
        self.elapsed = self.elapsed.max(other.elapsed);
        self.node_elapsed.extend(other.node_elapsed);
    }

    /// The slowest node in the [`SearchStats::node_elapsed`] breakdown by
    /// *summed* service time across its exchanges, or `None` when no node
    /// reported one. This is the per-node attribution `elapsed`'s max-fold
    /// loses: ties break toward the lower node id for determinism.
    pub fn slowest_node(&self) -> Option<(NodeId, Duration)> {
        let mut totals: std::collections::BTreeMap<NodeId, Duration> =
            std::collections::BTreeMap::new();
        for &(node, d) in &self.node_elapsed {
            let t = totals.entry(node).or_default();
            *t = Duration::from_micros(t.as_micros() + d.as_micros());
        }
        totals.into_iter().max_by_key(|&(node, d)| (d, std::cmp::Reverse(node)))
    }
}

/// The result of a [`SearchRequest`].
#[derive(Debug, Clone, PartialEq)]
pub struct SearchResponse {
    /// Hits in request sort order, at most `limit` of them, de-duplicated
    /// by file id.
    pub hits: Vec<Hit>,
    /// `true` when every relevant ACG was answered by at least one of its
    /// replicas. Partial results (under [`FanOutPolicy::AllowPartial`])
    /// set this to `false`.
    pub complete: bool,
    /// ACGs whose **every** replica failed to answer (empty when
    /// `complete`). Named by ACG rather than node: with replication a
    /// dead node is not a hole in the result set — only a fully
    /// unreachable replica set is, and this names exactly the data the
    /// response is missing.
    pub unreachable: Vec<AcgId>,
    /// Execution statistics.
    pub stats: SearchStats,
    /// Continuation token: present when the limit was reached, more
    /// results may exist **and the response is complete**. Pass to
    /// [`SearchRequest::after`] for the next page. Incomplete (partial
    /// fan-out) responses never carry a cursor: resuming after a page
    /// that is missing unreachable nodes' hits would skip, permanently,
    /// every missing hit that sorted before the cursor.
    pub cursor: Option<Cursor>,
}

impl SearchResponse {
    /// An empty, complete response.
    pub fn empty() -> Self {
        SearchResponse {
            hits: Vec::new(),
            complete: true,
            unreachable: Vec::new(),
            stats: SearchStats::default(),
            cursor: None,
        }
    }

    /// The hit file ids, in response order.
    pub fn file_ids(&self) -> Vec<FileId> {
        self.hits.iter().map(|h| h.file).collect()
    }
}

// ---------------------------------------------------------------------------
// Bounded top-k accumulation and k-way merging
// ---------------------------------------------------------------------------

/// A hit ranked for heap storage: the ordering is the request's result
/// order, so a max-heap's peek is always the *worst* retained hit.
struct Ranked {
    hit: Hit,
    sort: SortKey,
}

impl PartialEq for Ranked {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Ranked {}

impl PartialOrd for Ranked {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ranked {
    fn cmp(&self, other: &Self) -> Ordering {
        self.sort.cmp_hits(&self.hit, &other.hit)
    }
}

/// A bounded top-k accumulator: retains at most `limit` hits (unbounded
/// when `limit` is `None`), evicting the worst via a max-heap. This is the
/// structure that keeps per-ACG memory at O(k) for limited searches.
pub struct TopK {
    sort: SortKey,
    limit: Option<usize>,
    heap: BinaryHeap<Ranked>,
    peak: usize,
}

impl TopK {
    /// An accumulator for the given order and limit.
    pub fn new(sort: SortKey, limit: Option<usize>) -> Self {
        TopK { sort, limit, heap: BinaryHeap::new(), peak: 0 }
    }

    /// Offers a hit; it is retained only if it ranks within the top
    /// `limit` seen so far.
    pub fn push(&mut self, hit: Hit) {
        let key = hit.sort_key.clone();
        self.offer(key.as_ref(), hit.file, move || hit);
    }

    /// Offers a hit *lazily*: `make` runs only when the hit will actually
    /// be retained, so rejected candidates never pay projection or
    /// allocation — the zero-allocation fast path of the streaming
    /// executor. `key` must equal the sort key `make`'s hit will carry.
    pub fn offer(&mut self, key: Option<&Value>, file: FileId, make: impl FnOnce() -> Hit) {
        if let Some(limit) = self.limit {
            if limit == 0 {
                return;
            }
            if self.heap.len() >= limit {
                let worst = self.heap.peek().expect("heap non-empty at capacity");
                let rank =
                    self.sort.cmp_keys(key, file, worst.hit.sort_key.as_ref(), worst.hit.file);
                if rank != Ordering::Less {
                    return;
                }
                self.heap.pop();
            }
        }
        self.heap.push(Ranked { hit: make(), sort: self.sort.clone() });
        self.peak = self.peak.max(self.heap.len());
    }

    /// The most hits retained at any point (the O(k) witness).
    pub fn peak_retained(&self) -> usize {
        self.peak
    }

    /// The worst retained hit's `(sort key, file)` once the accumulator is
    /// at capacity — the rank a new candidate must strictly beat to be
    /// retained. `None` while below capacity (or unlimited), when every
    /// offer is retained anyway. This is the threshold a WAND-style
    /// postings merge prunes against.
    pub fn floor(&self) -> Option<(Option<&Value>, FileId)> {
        let limit = self.limit?;
        if self.heap.len() < limit {
            return None;
        }
        self.heap.peek().map(|worst| (worst.hit.sort_key.as_ref(), worst.hit.file))
    }

    /// Finishes, returning the retained hits in result order.
    pub fn into_sorted(self) -> Vec<Hit> {
        self.heap.into_sorted_vec().into_iter().map(|r| r.hit).collect()
    }
}

/// A node-global retention bound shared by every per-ACG execution of one
/// search (the cross-ACG cutoff for non-ordered plans): it tracks the best
/// `limit` **distinct files** (by `(sort key, file id)` rank) *any* ACG
/// has offered so far, so a candidate that can no longer rank in the
/// merged node-wide top-k is pruned before hit materialization. Pruning
/// never changes results — a pruned candidate is provably outranked by
/// `limit` recorded candidates, each retained by its own ACG's
/// accumulator — it only spares the projection/allocation work and keeps
/// per-ACG lists from all filling to `k` when the node will merge away
/// most of them.
///
/// Distinct files matter: the final merge de-duplicates by file id, and a
/// file can legally surface from two ACGs of one node (a stale route that
/// degraded to the documented pre-tombstone behaviour leaves the old copy
/// searchable). Counting both copies against `limit` would tighten the
/// bound beyond the true node-wide top-k and prune a hit that belongs in
/// the merged result, so a re-offer of an admitted file only replaces its
/// recorded rank (when better) instead of consuming a second slot.
///
/// Thread-safe: per-ACG executions on a worker pool share one instance.
/// The common case — a candidate provably outside the bound — rejects
/// under a read lock against a published worst-rank snapshot; only actual
/// admissions take the write lock.
pub struct GlobalCutoff {
    sort: SortKey,
    limit: usize,
    state: std::sync::RwLock<CutoffState>,
    pruned: std::sync::atomic::AtomicUsize,
}

/// The bound's retained set: a lazy-deletion max-heap over ranks plus the
/// live best rank per admitted file.
#[derive(Default)]
struct CutoffState {
    /// Max-heap in result order: the peek is the worst *possibly-live*
    /// pair. Entries superseded by a better re-offer of the same file
    /// linger and are skipped on eviction (`best` is the authority).
    heap: BinaryHeap<RankedKey>,
    /// file → its best recorded sort key. `len() <= limit` always.
    best: HashMap<FileId, Option<Value>>,
}

impl CutoffState {
    /// The current live worst `(key, file)`, dropping superseded heap
    /// entries along the way. `None` while below capacity.
    fn live_worst(&mut self) -> Option<(Option<Value>, FileId)> {
        while let Some(entry) = self.heap.peek() {
            let live = self.best.get(&entry.file).is_some_and(|best| *best == entry.key);
            if live {
                return Some((entry.key.clone(), entry.file));
            }
            self.heap.pop();
        }
        None
    }
}

/// A `(sort key, file)` pair ranked for [`GlobalCutoff`] heap storage.
struct RankedKey {
    key: Option<Value>,
    file: FileId,
    sort: SortKey,
}

impl PartialEq for RankedKey {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for RankedKey {}

impl PartialOrd for RankedKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for RankedKey {
    fn cmp(&self, other: &Self) -> Ordering {
        self.sort.cmp_keys(self.key.as_ref(), self.file, other.key.as_ref(), other.file)
    }
}

impl GlobalCutoff {
    /// A cutoff retaining the best `limit` distinct files under `sort`.
    pub fn new(sort: SortKey, limit: usize) -> Self {
        GlobalCutoff {
            sort,
            limit,
            state: std::sync::RwLock::new(CutoffState::default()),
            pruned: std::sync::atomic::AtomicUsize::new(0),
        }
    }

    fn prune_one(&self) {
        self.pruned.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    /// Offers a candidate's `(key, file)` pair. Returns `true` (recording
    /// the pair) when it still ranks within the node-global top `limit`
    /// distinct files; `false` when it is provably outside the merged
    /// result and the caller may skip materializing it.
    pub fn try_admit(&self, key: Option<&Value>, file: FileId) -> bool {
        if self.limit == 0 {
            self.prune_one();
            return false;
        }
        // Fast path (shared lock): reject candidates provably outside the
        // bound without serializing the worker pool. The worst rank only
        // ever tightens, so a reject decided on a stale snapshot is still
        // safe — and an admitted file's re-offer must fall through to the
        // dedup logic below.
        {
            let state = self.state.read().unwrap_or_else(std::sync::PoisonError::into_inner);
            if state.best.len() >= self.limit && !state.best.contains_key(&file) {
                // At capacity, the heap's peek is the worst possibly-live
                // pair: real-worst-or-better, so ranking not-better than
                // it proves the candidate is outside the bound.
                if let Some(worst) = state.heap.peek() {
                    let rank = self.sort.cmp_keys(key, file, worst.key.as_ref(), worst.file);
                    if rank != Ordering::Less {
                        drop(state);
                        self.prune_one();
                        return false;
                    }
                }
            }
        }
        let mut state = self.state.write().unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(best) = state.best.get(&file) {
            // The file is already retained: the merge de-duplicates by
            // file keeping the better-ranked copy, so only a strictly
            // better re-offer matters — record it without consuming a
            // second slot. A not-better copy can never reach the output.
            let rank = self.sort.cmp_keys(key, file, best.as_ref(), file);
            if rank == Ordering::Less {
                state.best.insert(file, key.cloned());
                state.heap.push(RankedKey { key: key.cloned(), file, sort: self.sort.clone() });
                return true;
            }
            drop(state);
            self.prune_one();
            return false;
        }
        if state.best.len() >= self.limit {
            match state.live_worst() {
                Some((worst_key, worst_file)) => {
                    let rank = self.sort.cmp_keys(key, file, worst_key.as_ref(), worst_file);
                    if rank != Ordering::Less {
                        drop(state);
                        self.prune_one();
                        return false;
                    }
                    state.heap.pop();
                    state.best.remove(&worst_file);
                }
                None => unreachable!("best is non-empty at capacity, so a live worst exists"),
            }
        }
        state.best.insert(file, key.cloned());
        state.heap.push(RankedKey { key: key.cloned(), file, sort: self.sort.clone() });
        true
    }

    /// Number of candidates pruned so far (the `bound_pruned` witness).
    pub fn pruned(&self) -> usize {
        self.pruned.load(std::sync::atomic::Ordering::Relaxed)
    }
}

/// K-way merges per-source sorted hit lists into one sorted, de-duplicated
/// (by file id), limit-truncated list — the aggregation step of the search
/// fan-out.
pub fn merge_sorted_hits(lists: Vec<Vec<Hit>>, sort: &SortKey, limit: Option<usize>) -> Vec<Hit> {
    let mut sources: Vec<std::vec::IntoIter<Hit>> = lists.into_iter().map(Vec::into_iter).collect();
    merge_hit_sources(&mut sources, sort, limit)
}

/// The generalized k-way merge beneath [`merge_sorted_hits`]: sources are
/// arbitrary iterators yielding hits in request sort order, pulled
/// **lazily** — once `limit` distinct hits are admitted, no source is
/// advanced further. With lazily-evaluated sources (the node-global merge
/// over per-ACG ordered candidate streams) that early exit is what bounds
/// a multi-ACG node's work at `k` total admitted hits instead of `k` per
/// ACG. Sources are taken by `&mut` so the caller can inspect how far each
/// was advanced afterwards.
pub fn merge_hit_sources<I>(sources: &mut [I], sort: &SortKey, limit: Option<usize>) -> Vec<Hit>
where
    I: Iterator<Item = Hit>,
{
    let mut merger = HitMerger::new(sort.clone(), limit);
    let mut out = Vec::new();
    while let Some(hit) = merger.next_hit(sources) {
        out.push(hit);
    }
    out
}

/// A primed head in a [`HitMerger`] heap: the next un-emitted hit of one
/// source. Ordering is reversed so `BinaryHeap`'s max-heap pops the *best*
/// next hit.
struct MergeHead {
    hit: Hit,
    source: usize,
    sort: SortKey,
}

impl PartialEq for MergeHead {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for MergeHead {}
impl PartialOrd for MergeHead {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for MergeHead {
    fn cmp(&self, other: &Self) -> Ordering {
        other.sort.cmp_hits(&other.hit, &self.hit)
    }
}

/// A **stateful** k-way hit merge that survives across output pages.
///
/// [`merge_hit_sources`] builds a fresh heap per call and drops un-emitted
/// source heads on return, so calling it once per page would silently lose
/// every primed hit between pages. `HitMerger` owns the heap, the
/// de-duplication set and the admitted count for the lifetime of a search,
/// letting a paginating caller pull one page at a time while the
/// underlying node sessions stay open — deep pagination advances each
/// source exactly as far as the merged prefix needs, never re-reading.
///
/// Sources are passed to each call (they live beside the merger in the
/// caller); the merger addresses them by slice index, so the caller must
/// pass the same sources in the same order every time. A source that
/// returns `None` is never polled again — transient exhaustion must be
/// absorbed inside the source itself (the replica streams do exactly that
/// for session-expiry reopens and replica failover).
pub struct HitMerger {
    sort: SortKey,
    limit: Option<usize>,
    heap: BinaryHeap<MergeHead>,
    seen: std::collections::HashSet<FileId>,
    admitted: usize,
    primed: bool,
    /// Source whose head was emitted but not yet re-primed. Refilling is
    /// deferred to the next pop so a source is never advanced past the
    /// last hit the merge actually needed — pulling eagerly here would
    /// fetch one extra page from whichever node served the final hit.
    pending_refill: Option<usize>,
}

impl HitMerger {
    /// A merger emitting hits in `sort` order, at most `limit` of them
    /// across all calls.
    pub fn new(sort: SortKey, limit: Option<usize>) -> Self {
        HitMerger {
            sort,
            limit,
            heap: BinaryHeap::new(),
            seen: std::collections::HashSet::new(),
            admitted: 0,
            primed: false,
            pending_refill: None,
        }
    }

    /// Distinct hits admitted so far across all calls.
    pub fn admitted(&self) -> usize {
        self.admitted
    }

    /// Whether the limit has been reached (no further hit will be emitted).
    pub fn done(&self) -> bool {
        self.limit.is_some_and(|k| self.admitted >= k)
    }

    /// Emits the next merged hit, advancing whichever source it came from.
    /// `None` once the limit is reached or every source is exhausted.
    pub fn next_hit<I>(&mut self, sources: &mut [I]) -> Option<Hit>
    where
        I: Iterator<Item = Hit>,
    {
        if self.done() {
            return None;
        }
        if !self.primed {
            self.primed = true;
            for (i, iter) in sources.iter_mut().enumerate() {
                if let Some(hit) = iter.next() {
                    self.heap.push(MergeHead { hit, source: i, sort: self.sort.clone() });
                }
            }
        }
        loop {
            if let Some(source) = self.pending_refill.take() {
                if let Some(next) = sources[source].next() {
                    self.heap.push(MergeHead { hit: next, source, sort: self.sort.clone() });
                }
            }
            let MergeHead { hit, source, .. } = self.heap.pop()?;
            self.pending_refill = Some(source);
            if self.seen.insert(hit.file) {
                self.admitted += 1;
                return Some(hit);
            }
        }
    }
}

/// Runs a request against a plain record collection (no ACG partitioning,
/// no access paths — a linear evaluate/sort/paginate/project pass). The
/// evaluation baselines use this so every system answers the same
/// [`SearchRequest`] API with identical result-shaping semantics.
pub fn run_local_search<I>(records: I, request: &SearchRequest) -> SearchResponse
where
    I: IntoIterator<Item = FileRecord>,
{
    let mut topk = TopK::new(request.sort.clone(), request.limit);
    let mut scanned = 0usize;
    for record in records {
        scanned += 1;
        if !matches_record(&record, &request.predicate) {
            continue;
        }
        let key = request.sort.key_of(&record);
        if let Some(cursor) = &request.cursor {
            if !cursor.admits(&request.sort, key.as_ref(), record.file) {
                continue;
            }
        }
        topk.push(Hit::of_record(&record, None, &request.sort, &request.projection));
    }
    let retained_peak = topk.peak_retained();
    let hits = topk.into_sorted();
    let cursor = next_cursor(&hits, request.limit);
    SearchResponse {
        hits,
        complete: true,
        unreachable: Vec::new(),
        stats: SearchStats { candidates_scanned: scanned, retained_peak, ..SearchStats::default() },
        cursor,
    }
}

/// The continuation cursor for a result page: present exactly when the
/// page is full (`limit` reached), i.e. more results may exist.
pub fn next_cursor(hits: &[Hit], limit: Option<usize>) -> Option<Cursor> {
    match (limit, hits.last()) {
        (Some(k), Some(last)) if hits.len() >= k => Some(Cursor::after(last)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use propeller_types::InodeAttrs;

    fn rec(file: u64, size: u64) -> FileRecord {
        FileRecord::new(FileId::new(file), InodeAttrs::builder().size(size).build())
    }

    fn hit(file: u64, key: Option<u64>) -> Hit {
        Hit { file: FileId::new(file), acg: None, attrs: Vec::new(), sort_key: key.map(Value::U64) }
    }

    #[test]
    fn topk_retains_best_k_and_tracks_peak() {
        let sort = SortKey::Descending(AttrName::Size);
        let mut topk = TopK::new(sort, Some(3));
        for i in 0..100u64 {
            topk.push(hit(i, Some(i)));
        }
        assert!(topk.peak_retained() <= 3, "peak {}", topk.peak_retained());
        let hits = topk.into_sorted();
        let files: Vec<u64> = hits.iter().map(|h| h.file.raw()).collect();
        assert_eq!(files, vec![99, 98, 97]);
    }

    #[test]
    fn topk_unlimited_keeps_everything_sorted() {
        let mut topk = TopK::new(SortKey::FileId, None);
        for i in [5u64, 1, 9, 3] {
            topk.push(hit(i, None));
        }
        let files: Vec<u64> = topk.into_sorted().iter().map(|h| h.file.raw()).collect();
        assert_eq!(files, vec![1, 3, 5, 9]);
    }

    #[test]
    fn merge_dedups_and_truncates() {
        let a = vec![hit(1, None), hit(3, None), hit(5, None)];
        let b = vec![hit(2, None), hit(3, None), hit(6, None)];
        let merged = merge_sorted_hits(vec![a, b], &SortKey::FileId, Some(4));
        let files: Vec<u64> = merged.iter().map(|h| h.file.raw()).collect();
        assert_eq!(files, vec![1, 2, 3, 5]);
    }

    #[test]
    fn hit_merger_pages_match_the_one_shot_merge() {
        let a = vec![hit(1, None), hit(3, None), hit(5, None), hit(9, None)];
        let b = vec![hit(2, None), hit(3, None), hit(6, None)];
        let c = vec![hit(4, None), hit(7, None), hit(8, None)];
        let one_shot =
            merge_sorted_hits(vec![a.clone(), b.clone(), c.clone()], &SortKey::FileId, Some(7));

        let mut sources: Vec<std::vec::IntoIter<Hit>> =
            vec![a.into_iter(), b.into_iter(), c.into_iter()];
        let mut merger = HitMerger::new(SortKey::FileId, Some(7));
        let mut paged = Vec::new();
        // Pull in pages of 2: the merger's heap and seen-set must carry
        // primed heads across page boundaries.
        loop {
            let mut page = Vec::new();
            while page.len() < 2 {
                match merger.next_hit(&mut sources) {
                    Some(h) => page.push(h),
                    None => break,
                }
            }
            if page.is_empty() {
                break;
            }
            paged.extend(page);
        }
        assert_eq!(paged, one_shot);
        assert_eq!(merger.admitted(), 7);
        assert!(merger.done());
        assert!(merger.next_hit(&mut sources).is_none());
    }

    #[test]
    fn hit_merger_never_advances_a_source_past_the_limit() {
        let a = vec![hit(1, None), hit(2, None), hit(3, None)];
        let b = vec![hit(10, None), hit(11, None)];
        let mut sources: Vec<std::vec::IntoIter<Hit>> = vec![a.into_iter(), b.into_iter()];
        let mut merger = HitMerger::new(SortKey::FileId, Some(2));
        assert_eq!(merger.next_hit(&mut sources).unwrap().file.raw(), 1);
        assert_eq!(merger.next_hit(&mut sources).unwrap().file.raw(), 2);
        assert!(merger.next_hit(&mut sources).is_none());
        // The winning source's refill is deferred, so after the limit its
        // third hit was never pulled — and source b never moved past the
        // one hit priming took.
        assert_eq!(sources[0].next().unwrap().file.raw(), 3);
        assert_eq!(sources[1].next().unwrap().file.raw(), 11);
    }

    #[test]
    fn cursor_pages_are_disjoint_and_exhaustive() {
        let records: Vec<FileRecord> = (0..25u64).map(|i| rec(i, i)).collect();
        let base = SearchRequest::new(Predicate::True).with_limit(10);
        let mut all = Vec::new();
        let mut cursor = None;
        loop {
            let mut req = base.clone();
            if let Some(c) = cursor.take() {
                req = req.after(c);
            }
            let resp = run_local_search(records.clone(), &req);
            if resp.hits.is_empty() {
                assert!(resp.cursor.is_none());
                break;
            }
            all.extend(resp.file_ids());
            match resp.cursor {
                Some(c) => cursor = Some(c),
                None => break,
            }
        }
        let expected: Vec<FileId> = (0..25u64).map(FileId::new).collect();
        assert_eq!(all, expected);
    }

    #[test]
    fn descending_sort_with_ties_breaks_on_file_id() {
        let records = vec![rec(3, 10), rec(1, 10), rec(2, 99)];
        let req =
            SearchRequest::new(Predicate::True).sorted_by(SortKey::Descending(AttrName::Size));
        let resp = run_local_search(records, &req);
        let files: Vec<u64> = resp.hits.iter().map(|h| h.file.raw()).collect();
        assert_eq!(files, vec![2, 1, 3]);
    }

    #[test]
    fn projection_selects_attributes() {
        let record = rec(1, 42).with_keyword("kw").with_custom("energy", Value::F64(-1.0));
        let ids = Projection::Ids.project(&record);
        assert!(ids.is_empty());
        let some = Projection::Attrs(vec![AttrName::Size, AttrName::Keyword]).project(&record);
        assert_eq!(
            some,
            vec![(AttrName::Size, Value::U64(42)), (AttrName::Keyword, Value::from("kw"))]
        );
        let full = Projection::Full.project(&record);
        assert!(full.len() >= 9, "all inode attrs + keyword + custom: {full:?}");
    }

    #[test]
    fn sort_by_multivalued_attribute_is_rejected() {
        let req =
            SearchRequest::new(Predicate::True).sorted_by(SortKey::Ascending(AttrName::Keyword));
        assert!(req.validate().is_err());
        let req = SearchRequest::new(Predicate::True)
            .sorted_by(SortKey::Ascending(AttrName::custom("x")));
        assert!(req.validate().is_err());
        assert!(SearchRequest::new(Predicate::True).validate().is_ok());
    }

    #[test]
    fn relevance_sort_orders_by_descending_score_with_file_tiebreak() {
        let sort = SortKey::Relevance;
        let score = |file: u64, s: f64| Hit {
            file: FileId::new(file),
            acg: None,
            attrs: Vec::new(),
            sort_key: Some(Value::F64(s)),
        };
        let mut topk = TopK::new(sort.clone(), Some(3));
        for hit in [score(5, 1.0), score(1, 2.5), score(9, 2.5), score(2, 0.1), score(3, 7.0)] {
            topk.push(hit);
        }
        let files: Vec<u64> = topk.into_sorted().iter().map(|h| h.file.raw()).collect();
        assert_eq!(files, vec![3, 1, 9], "best score first, ties break on ascending file id");
    }

    #[test]
    fn relevance_sort_requires_a_contains_term() {
        use crate::ast::ContainsMode;
        let bad = SearchRequest::new(Predicate::True).sorted_by(SortKey::Relevance);
        assert!(bad.validate().is_err());
        let good = SearchRequest::new(Predicate::contains(vec!["tax"], ContainsMode::All))
            .sorted_by(SortKey::Relevance);
        assert!(good.validate().is_ok());
    }

    #[test]
    fn topk_floor_appears_only_at_capacity() {
        let mut topk = TopK::new(SortKey::Relevance, Some(2));
        assert!(topk.floor().is_none(), "empty");
        topk.push(hit(1, None));
        assert!(topk.floor().is_none(), "below capacity");
        topk.push(hit(2, None));
        let (key, file) = topk.floor().expect("at capacity");
        assert_eq!((key, file), (None, FileId::new(2)), "worst retained = highest file id");
        assert!(TopK::new(SortKey::FileId, None).floor().is_none(), "unlimited has no floor");
    }

    #[test]
    fn stats_absorb_sums_and_maxes() {
        let mut a = SearchStats {
            acgs_consulted: 1,
            candidates_scanned: 10,
            retained_peak: 5,
            access_paths: vec![(AcgId::new(1), AccessPathKind::FullScan)],
            candidates_skipped: 100,
            early_terminated: 1,
            merge_skipped: 40,
            bound_pruned: 3,
            pages_pulled: 1,
            hits_shipped: 5,
            node_hits_unsent: 2,
            wand_blocks_skipped: 4,
            wand_docs_pruned: 250,
            hedges_fired: 2,
            hedges_won: 1,
            replica_failovers: 1,
            epoch_pins: 1,
            commits_during_search: 3,
            elapsed: Duration::from_micros(5),
            node_elapsed: vec![(NodeId::new(1), Duration::from_micros(5))],
        };
        a.absorb(SearchStats {
            acgs_consulted: 2,
            candidates_scanned: 7,
            retained_peak: 9,
            access_paths: vec![(AcgId::new(2), AccessPathKind::HashEq)],
            candidates_skipped: 50,
            early_terminated: 2,
            merge_skipped: 10,
            bound_pruned: 4,
            pages_pulled: 2,
            hits_shipped: 7,
            node_hits_unsent: 93,
            wand_blocks_skipped: 6,
            wand_docs_pruned: 50,
            hedges_fired: 1,
            hedges_won: 1,
            replica_failovers: 2,
            epoch_pins: 2,
            commits_during_search: 4,
            elapsed: Duration::from_micros(3),
            node_elapsed: vec![(NodeId::new(2), Duration::from_micros(3))],
        });
        assert_eq!(a.acgs_consulted, 3);
        assert_eq!(a.candidates_scanned, 17);
        assert_eq!(a.retained_peak, 9);
        assert_eq!(a.access_paths.len(), 2);
        assert_eq!(a.candidates_skipped, 150);
        assert_eq!(a.early_terminated, 3);
        assert_eq!(a.merge_skipped, 50);
        assert_eq!(a.bound_pruned, 7);
        assert_eq!(a.pages_pulled, 3);
        assert_eq!(a.hits_shipped, 12);
        assert_eq!(a.node_hits_unsent, 95);
        assert_eq!(a.wand_blocks_skipped, 10);
        assert_eq!(a.wand_docs_pruned, 300);
        assert_eq!(a.hedges_fired, 3);
        assert_eq!(a.hedges_won, 2);
        assert_eq!(a.replica_failovers, 3);
        assert_eq!(a.epoch_pins, 3);
        assert_eq!(a.commits_during_search, 7);
        assert_eq!(a.elapsed, Duration::from_micros(5), "slowest node wins");
        assert_eq!(
            a.node_elapsed,
            vec![
                (NodeId::new(1), Duration::from_micros(5)),
                (NodeId::new(2), Duration::from_micros(3)),
            ],
            "per-node attribution survives the max-fold"
        );
        assert_eq!(a.slowest_node(), Some((NodeId::new(1), Duration::from_micros(5))));
    }

    #[test]
    fn slowest_node_sums_per_node_exchanges() {
        let mut s = SearchStats::default();
        assert_eq!(s.slowest_node(), None);
        // Node 2 served two fast exchanges that *sum* past node 1's single
        // slow one — attribution must rank by total service time, not by
        // any single exchange.
        s.node_elapsed = vec![
            (NodeId::new(1), Duration::from_micros(50)),
            (NodeId::new(2), Duration::from_micros(30)),
            (NodeId::new(2), Duration::from_micros(30)),
        ];
        assert_eq!(s.slowest_node(), Some((NodeId::new(2), Duration::from_micros(60))));
    }

    #[test]
    fn global_cutoff_prunes_only_provably_outranked_candidates() {
        let cutoff = GlobalCutoff::new(SortKey::Descending(AttrName::Size), 3);
        // First three candidates always admit.
        assert!(cutoff.try_admit(Some(&Value::U64(10)), FileId::new(1)));
        assert!(cutoff.try_admit(Some(&Value::U64(30)), FileId::new(2)));
        assert!(cutoff.try_admit(Some(&Value::U64(20)), FileId::new(3)));
        // Worse than the retained worst (10): pruned.
        assert!(!cutoff.try_admit(Some(&Value::U64(5)), FileId::new(4)));
        // Equal key, higher file id than the worst's tie-break: pruned.
        assert!(!cutoff.try_admit(Some(&Value::U64(10)), FileId::new(9)));
        // Better: admitted, evicting the old worst — 5 can never re-enter.
        assert!(cutoff.try_admit(Some(&Value::U64(40)), FileId::new(5)));
        assert!(!cutoff.try_admit(Some(&Value::U64(15)), FileId::new(6)));
        assert_eq!(cutoff.pruned(), 3);
    }

    #[test]
    fn global_cutoff_counts_distinct_files_not_copies() {
        // The merge de-duplicates by file id, so two ACGs offering the
        // same file must consume ONE slot of the bound — otherwise a hit
        // that belongs in the merged top-k gets pruned.
        let cutoff = GlobalCutoff::new(SortKey::Descending(AttrName::Size), 2);
        assert!(cutoff.try_admit(Some(&Value::U64(100)), FileId::new(1)), "ACG A's copy of X");
        assert!(
            !cutoff.try_admit(Some(&Value::U64(100)), FileId::new(1)),
            "ACG B's identical copy is redundant (merge keeps one)"
        );
        assert!(
            cutoff.try_admit(Some(&Value::U64(50)), FileId::new(2)),
            "Y is the 2nd distinct file of the node-wide top-2; the \
             duplicate of X must not have consumed its slot"
        );
        // A better-ranked copy of an admitted file upgrades its rank
        // without consuming a slot; a worse copy is pruned.
        assert!(cutoff.try_admit(Some(&Value::U64(120)), FileId::new(1)));
        assert!(!cutoff.try_admit(Some(&Value::U64(90)), FileId::new(1)));
        // The bound still evicts correctly afterwards: a 3rd distinct
        // file beats Y(50) and replaces it, a worse one is pruned.
        assert!(!cutoff.try_admit(Some(&Value::U64(40)), FileId::new(3)));
        assert!(cutoff.try_admit(Some(&Value::U64(60)), FileId::new(3)));
        assert!(!cutoff.try_admit(Some(&Value::U64(55)), FileId::new(2)), "Y was evicted");
    }

    #[test]
    fn global_cutoff_limit_zero_prunes_everything() {
        let cutoff = GlobalCutoff::new(SortKey::FileId, 0);
        assert!(!cutoff.try_admit(None, FileId::new(1)));
        assert_eq!(cutoff.pruned(), 1);
    }

    #[test]
    fn merge_hit_sources_stops_pulling_at_the_limit() {
        // Two sorted sources of 100 hits each; a limit-3 merge must admit 3
        // and leave the tails unpulled (the node-global cutoff witness).
        let a: Vec<Hit> = (0..100u64).map(|i| hit(i * 2, None)).collect();
        let b: Vec<Hit> = (0..100u64).map(|i| hit(i * 2 + 1, None)).collect();
        let mut sources = vec![a.into_iter(), b.into_iter()];
        let merged = merge_hit_sources(&mut sources, &SortKey::FileId, Some(3));
        let files: Vec<u64> = merged.iter().map(|h| h.file.raw()).collect();
        assert_eq!(files, vec![0, 1, 2]);
        // Each source gave up at most 2 hits (1 primed + 1 replacement).
        assert!(sources[0].len() >= 98, "source a over-pulled: {}", sources[0].len());
        assert!(sources[1].len() >= 98, "source b over-pulled: {}", sources[1].len());
    }

    #[test]
    fn merge_limit_zero_is_empty() {
        let a = vec![hit(1, None)];
        assert!(merge_sorted_hits(vec![a], &SortKey::FileId, Some(0)).is_empty());
    }
}
