//! The query AST.

use propeller_types::{AttrName, Result, Timestamp, Value};
use serde::{Deserialize, Serialize};

/// A comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CompareOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CompareOp {
    /// Evaluates `lhs OP rhs`.
    pub fn eval(self, lhs: &Value, rhs: &Value) -> bool {
        self.holds(lhs.cmp(rhs))
    }

    /// Evaluates `lhs OP rhs` for a string lhs (a keyword) without
    /// allocating a temporary [`Value::Str`]. Consistent with [`Value`]'s
    /// cross-kind order, where `Str` sorts above every other kind.
    pub fn eval_str(self, lhs: &str, rhs: &Value) -> bool {
        let ord = match rhs {
            Value::Str(s) => lhs.cmp(s.as_str()),
            _ => std::cmp::Ordering::Greater,
        };
        self.holds(ord)
    }

    /// Whether the operator holds for a `lhs.cmp(rhs)` ordering.
    #[inline]
    fn holds(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CompareOp::Eq => ord == Equal,
            CompareOp::Ne => ord != Equal,
            CompareOp::Lt => ord == Less,
            CompareOp::Le => ord != Greater,
            CompareOp::Gt => ord == Greater,
            CompareOp::Ge => ord != Less,
        }
    }

    /// The operator with sides swapped (`a < b` ⇔ `b > a`), used when the
    /// parser rewrites relative-age comparisons onto absolute timestamps.
    pub fn flipped(self) -> CompareOp {
        match self {
            CompareOp::Lt => CompareOp::Gt,
            CompareOp::Le => CompareOp::Ge,
            CompareOp::Gt => CompareOp::Lt,
            CompareOp::Ge => CompareOp::Le,
            other => other,
        }
    }
}

impl std::fmt::Display for CompareOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            CompareOp::Eq => "=",
            CompareOp::Ne => "!=",
            CompareOp::Lt => "<",
            CompareOp::Le => "<=",
            CompareOp::Gt => ">",
            CompareOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// How a [`Predicate::Contains`] combines its terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ContainsMode {
    /// Every term must appear somewhere in the record's text (conjunctive).
    All,
    /// At least one term must appear (disjunctive).
    Any,
    /// The terms must appear adjacent and in order within one text field.
    Phrase,
}

/// A search predicate over file records.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Predicate {
    /// `attr OP value` — any of the record's values for `attr` may match.
    Compare {
        /// The attribute compared.
        attr: AttrName,
        /// The operator.
        op: CompareOp,
        /// The literal operand.
        value: Value,
    },
    /// `keyword:word` — the record carries this keyword.
    Keyword(String),
    /// `contains:"…"` / `contains-any:"…"` / `phrase:"…"` — full-text
    /// match over the record's tokenized text fields (keywords and
    /// string-valued custom attributes). Terms are already tokenized
    /// (lowercase alphanumeric runs).
    Contains {
        /// The tokenized query terms, in query order.
        terms: Vec<String>,
        /// How the terms combine.
        mode: ContainsMode,
    },
    /// Conjunction.
    And(Vec<Predicate>),
    /// Disjunction.
    Or(Vec<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
    /// Matches every record (`*`).
    True,
}

impl Predicate {
    /// Convenience constructor for a comparison.
    pub fn cmp(attr: AttrName, op: CompareOp, value: impl Into<Value>) -> Self {
        Predicate::Compare { attr, op, value: value.into() }
    }

    /// Convenience constructor for `a & b`.
    pub fn and(preds: Vec<Predicate>) -> Self {
        match preds.len() {
            0 => Predicate::True,
            1 => preds.into_iter().next().expect("len checked"),
            _ => Predicate::And(preds),
        }
    }

    /// Convenience constructor for a full-text containment term.
    pub fn contains<T: Into<String>>(terms: Vec<T>, mode: ContainsMode) -> Self {
        Predicate::Contains { terms: terms.into_iter().map(Into::into).collect(), mode }
    }

    /// Flattens nested conjunctions into a conjunct list; any non-`And`
    /// predicate is a single conjunct.
    pub fn conjuncts(&self) -> Vec<&Predicate> {
        match self {
            Predicate::And(ps) => ps.iter().flat_map(|p| p.conjuncts()).collect(),
            other => vec![other],
        }
    }

    /// Whether any [`Predicate::Contains`] appears anywhere in the tree —
    /// the precondition for relevance-ranked results (there is nothing to
    /// score otherwise).
    pub fn mentions_contains(&self) -> bool {
        match self {
            Predicate::Contains { .. } => true,
            Predicate::And(ps) | Predicate::Or(ps) => ps.iter().any(Predicate::mentions_contains),
            Predicate::Not(p) => p.mentions_contains(),
            Predicate::Compare { .. } | Predicate::Keyword(_) | Predicate::True => false,
        }
    }
}

impl std::fmt::Display for Predicate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Predicate::Compare { attr, op, value } => write!(f, "{attr}{op}{value}"),
            Predicate::Keyword(w) => write!(f, "keyword:{w}"),
            Predicate::Contains { terms, mode } => {
                let label = match mode {
                    ContainsMode::All => "contains",
                    ContainsMode::Any => "contains-any",
                    ContainsMode::Phrase => "phrase",
                };
                write!(f, "{label}:\"{}\"", terms.join(" "))
            }
            Predicate::And(ps) => {
                let parts: Vec<String> = ps.iter().map(|p| p.to_string()).collect();
                write!(f, "({})", parts.join(" & "))
            }
            Predicate::Or(ps) => {
                let parts: Vec<String> = ps.iter().map(|p| p.to_string()).collect();
                write!(f, "({})", parts.join(" | "))
            }
            Predicate::Not(p) => write!(f, "!{p}"),
            Predicate::True => f.write_str("*"),
        }
    }
}

/// A parsed query: a predicate plus an optional namespace scope from the
/// query-directory syntax (`/foo/bar/?size>1m`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Query {
    /// The predicate to evaluate.
    pub predicate: Predicate,
    /// Path-prefix scope, when the query came through the namespace.
    pub scope: Option<String>,
}

impl Query {
    /// Parses query text (see the `parser` module source for the grammar). Relative
    /// time literals are resolved against `now`.
    ///
    /// # Errors
    ///
    /// Returns [`propeller_types::Error::InvalidQuery`] on syntax errors.
    ///
    /// # Examples
    ///
    /// ```
    /// use propeller_query::Query;
    /// use propeller_types::Timestamp;
    ///
    /// let q = Query::parse("size>1g & keyword:firefox", Timestamp::from_secs(0)).unwrap();
    /// assert_eq!(q.predicate.conjuncts().len(), 2);
    /// ```
    pub fn parse(text: &str, now: Timestamp) -> Result<Query> {
        crate::parser::parse_query(text, now)
    }

    /// Parses the dynamic query-directory form `/path/?predicate`.
    ///
    /// # Errors
    ///
    /// Returns [`propeller_types::Error::InvalidQuery`] on syntax errors.
    ///
    /// # Examples
    ///
    /// ```
    /// use propeller_query::Query;
    /// use propeller_types::Timestamp;
    ///
    /// let q = Query::parse_dir("/data/proteins/?size>1m", Timestamp::from_secs(0)).unwrap();
    /// assert_eq!(q.scope.as_deref(), Some("/data/proteins/"));
    /// ```
    pub fn parse_dir(path: &str, now: Timestamp) -> Result<Query> {
        crate::parser::parse_query_dir(path, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compare_op_eval() {
        let a = Value::U64(5);
        let b = Value::U64(9);
        assert!(CompareOp::Lt.eval(&a, &b));
        assert!(CompareOp::Le.eval(&a, &a));
        assert!(CompareOp::Gt.eval(&b, &a));
        assert!(CompareOp::Ge.eval(&b, &b));
        assert!(CompareOp::Eq.eval(&a, &a));
        assert!(CompareOp::Ne.eval(&a, &b));
    }

    #[test]
    fn eval_str_agrees_with_value_eval() {
        let rhs_values = [
            Value::from("abc"),
            Value::from("abd"),
            Value::from(""),
            Value::U64(1),
            Value::F64(2.0),
        ];
        for lhs in ["abc", "abd", "zzz", ""] {
            for rhs in &rhs_values {
                for op in [
                    CompareOp::Eq,
                    CompareOp::Ne,
                    CompareOp::Lt,
                    CompareOp::Le,
                    CompareOp::Gt,
                    CompareOp::Ge,
                ] {
                    assert_eq!(
                        op.eval_str(lhs, rhs),
                        op.eval(&Value::from(lhs), rhs),
                        "{lhs:?} {op} {rhs:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn flipped_is_involution_for_inequalities() {
        for op in [CompareOp::Lt, CompareOp::Le, CompareOp::Gt, CompareOp::Ge] {
            assert_eq!(op.flipped().flipped(), op);
        }
        assert_eq!(CompareOp::Eq.flipped(), CompareOp::Eq);
    }

    #[test]
    fn and_constructor_simplifies() {
        assert_eq!(Predicate::and(vec![]), Predicate::True);
        let single = Predicate::Keyword("x".into());
        assert_eq!(Predicate::and(vec![single.clone()]), single);
    }

    #[test]
    fn conjuncts_flatten_nesting() {
        let p = Predicate::And(vec![
            Predicate::Keyword("a".into()),
            Predicate::And(vec![Predicate::Keyword("b".into()), Predicate::Keyword("c".into())]),
        ]);
        assert_eq!(p.conjuncts().len(), 3);
    }

    #[test]
    fn display_round_trips_visually() {
        let p = Predicate::cmp(AttrName::Size, CompareOp::Gt, 16u64 << 20);
        assert_eq!(p.to_string(), "size>16777216");
        let c = Predicate::contains(vec!["quarterly", "report"], ContainsMode::Phrase);
        assert_eq!(c.to_string(), "phrase:\"quarterly report\"");
    }

    #[test]
    fn mentions_contains_walks_the_tree() {
        let c = Predicate::contains(vec!["x"], ContainsMode::All);
        assert!(c.mentions_contains());
        assert!(Predicate::Not(Box::new(c.clone())).mentions_contains());
        assert!(Predicate::Or(vec![Predicate::True, c]).mentions_contains());
        assert!(!Predicate::Keyword("x".into()).mentions_contains());
        assert!(!Predicate::True.mentions_contains());
    }
}
