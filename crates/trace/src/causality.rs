//! The access-causality rule (paper §III).

use std::collections::hash_map::Entry;
use std::collections::HashMap;

use propeller_types::{FileId, FileOp, OpenMode, ProcessId, Timestamp, TraceEvent};
use serde::{Deserialize, Serialize};

/// One weighted causality edge produced by the tracker, ready to be flushed
/// to an Index Node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct EdgeUpdate {
    /// Producer file (`fA` in `fA → fB`).
    pub src: FileId,
    /// Consumer file (`fB`).
    pub dst: FileId,
    /// Number of observations being flushed.
    pub weight: u64,
}

#[derive(Debug, Default)]
struct ProcessState {
    /// Files this process has opened so far (read or write), in first-open
    /// order. The paper's rule makes each of them a potential producer for
    /// every later write-open.
    accessed: Vec<FileId>,
    /// Membership set for `accessed` (keeps the vec duplicate-free).
    seen: HashMap<FileId, ()>,
}

/// Captures [`TraceEvent`]s and accumulates access-causality edges in RAM,
/// exactly as the Propeller client does before flushing ACG deltas to Index
/// Nodes (paper §IV "Client").
///
/// The rule: when process `P` opens file `fB` *for writing* at time `t1`,
/// an edge `fA → fB` is recorded for every file `fA ≠ fB` that `P` opened
/// (in any mode) at some earlier `t0 < t1`. Edge weights count repeated
/// observations across process executions.
///
/// The tracker is deliberately *not* durable: the paper chooses weak
/// consistency for ACGs because losing causality information can only
/// degrade partitioning quality, never search correctness.
///
/// # Examples
///
/// ```
/// use propeller_trace::CausalityTracker;
/// use propeller_types::{FileId, OpenMode, ProcessId, Timestamp};
///
/// let mut t = CausalityTracker::new();
/// let pid = ProcessId::new(9);
/// let (a, b, c) = (FileId::new(1), FileId::new(2), FileId::new(3));
/// let ts = Timestamp::from_secs;
///
/// t.open(pid, a, OpenMode::Read, ts(1));
/// t.open(pid, b, OpenMode::Read, ts(2));
/// t.open(pid, c, OpenMode::Write, ts(3)); // c is produced from a and b
/// t.end_process(pid);
///
/// let mut edges = t.drain_edges();
/// edges.sort();
/// assert_eq!(edges, vec![(a, c, 1), (b, c, 1)]);
/// ```
#[derive(Debug, Default)]
pub struct CausalityTracker {
    processes: HashMap<ProcessId, ProcessState>,
    edges: HashMap<(FileId, FileId), u64>,
}

impl CausalityTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        CausalityTracker::default()
    }

    /// Observes one trace event.
    pub fn observe(&mut self, event: TraceEvent) {
        match event.op {
            FileOp::Open(mode) => self.on_open(event.pid, event.file, mode),
            FileOp::Create => self.on_open(event.pid, event.file, OpenMode::Write),
            FileOp::Close => {}
            FileOp::Delete => {}
        }
    }

    /// Convenience wrapper for an open event.
    pub fn open(&mut self, pid: ProcessId, file: FileId, mode: OpenMode, time: Timestamp) {
        self.observe(TraceEvent::open(pid, file, mode, time));
    }

    /// Convenience wrapper for a close event.
    pub fn close(&mut self, pid: ProcessId, file: FileId, time: Timestamp) {
        self.observe(TraceEvent::close(pid, file, time));
    }

    fn on_open(&mut self, pid: ProcessId, file: FileId, mode: OpenMode) {
        let state = self.processes.entry(pid).or_default();
        if mode.writes() {
            for &src in &state.accessed {
                if src != file {
                    *self.edges.entry((src, file)).or_insert(0) += 1;
                }
            }
        }
        if let Entry::Vacant(e) = state.seen.entry(file) {
            e.insert(());
            state.accessed.push(file);
        }
    }

    /// Forgets per-process state for `pid` (the process exited). Edge
    /// accumulations are kept.
    pub fn end_process(&mut self, pid: ProcessId) {
        self.processes.remove(&pid);
    }

    /// Number of distinct edges currently accumulated.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Sum of all edge weights currently accumulated.
    pub fn total_weight(&self) -> u64 {
        self.edges.values().sum()
    }

    /// Files a given live process has accessed so far (empty after
    /// [`CausalityTracker::end_process`]).
    pub fn accessed_by(&self, pid: ProcessId) -> &[FileId] {
        self.processes.get(&pid).map(|s| s.accessed.as_slice()).unwrap_or(&[])
    }

    /// Drains the accumulated edges as `(src, dst, weight)` triples,
    /// leaving the tracker empty of edges (live process state is kept).
    ///
    /// This is the client's "flush ACG delta to Index Node" step.
    pub fn drain_edges(&mut self) -> Vec<(FileId, FileId, u64)> {
        let mut out: Vec<(FileId, FileId, u64)> =
            self.edges.drain().map(|((s, d), w)| (s, d, w)).collect();
        out.sort_unstable();
        out
    }

    /// Drains the accumulated edges as [`EdgeUpdate`] records.
    pub fn drain_updates(&mut self) -> Vec<EdgeUpdate> {
        self.drain_edges()
            .into_iter()
            .map(|(src, dst, weight)| EdgeUpdate { src, dst, weight })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(s: u64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    #[test]
    fn read_then_write_creates_edge() {
        let mut t = CausalityTracker::new();
        let pid = ProcessId::new(1);
        t.open(pid, FileId::new(1), OpenMode::Read, ts(1));
        t.open(pid, FileId::new(2), OpenMode::Write, ts(2));
        assert_eq!(t.drain_edges(), vec![(FileId::new(1), FileId::new(2), 1)]);
    }

    #[test]
    fn write_then_write_creates_edge() {
        // The rule says fA opened "reads or writes" earlier; a written file
        // is also a potential producer for a later write.
        let mut t = CausalityTracker::new();
        let pid = ProcessId::new(1);
        t.open(pid, FileId::new(1), OpenMode::Write, ts(1));
        t.open(pid, FileId::new(2), OpenMode::Write, ts(2));
        assert_eq!(t.drain_edges(), vec![(FileId::new(1), FileId::new(2), 1)]);
    }

    #[test]
    fn read_only_sequence_creates_no_edges() {
        let mut t = CausalityTracker::new();
        let pid = ProcessId::new(1);
        for i in 0..5 {
            t.open(pid, FileId::new(i), OpenMode::Read, ts(i));
        }
        assert!(t.drain_edges().is_empty());
    }

    #[test]
    fn no_self_edges() {
        let mut t = CausalityTracker::new();
        let pid = ProcessId::new(1);
        let f = FileId::new(3);
        t.open(pid, f, OpenMode::Read, ts(1));
        t.open(pid, f, OpenMode::Write, ts(2));
        assert!(t.drain_edges().is_empty());
    }

    #[test]
    fn edges_do_not_cross_processes() {
        let mut t = CausalityTracker::new();
        t.open(ProcessId::new(1), FileId::new(1), OpenMode::Read, ts(1));
        t.open(ProcessId::new(2), FileId::new(2), OpenMode::Write, ts(2));
        assert!(t.drain_edges().is_empty());
    }

    #[test]
    fn repeated_executions_accumulate_weight() {
        let mut t = CausalityTracker::new();
        for run in 0..3 {
            let pid = ProcessId::new(run);
            t.open(pid, FileId::new(1), OpenMode::Read, ts(1));
            t.open(pid, FileId::new(2), OpenMode::Write, ts(2));
            t.end_process(pid);
        }
        assert_eq!(t.drain_edges(), vec![(FileId::new(1), FileId::new(2), 3)]);
    }

    #[test]
    fn fan_in_from_all_earlier_accesses() {
        let mut t = CausalityTracker::new();
        let pid = ProcessId::new(1);
        for i in 0..4 {
            t.open(pid, FileId::new(i), OpenMode::Read, ts(i));
        }
        t.open(pid, FileId::new(100), OpenMode::Write, ts(10));
        let edges = t.drain_edges();
        assert_eq!(edges.len(), 4);
        assert!(edges.iter().all(|&(_, d, w)| d == FileId::new(100) && w == 1));
    }

    #[test]
    fn duplicate_opens_do_not_double_count_producers() {
        let mut t = CausalityTracker::new();
        let pid = ProcessId::new(1);
        t.open(pid, FileId::new(1), OpenMode::Read, ts(1));
        t.open(pid, FileId::new(1), OpenMode::Read, ts(2));
        t.open(pid, FileId::new(2), OpenMode::Write, ts(3));
        // f1 appears once in the producer set even though it was opened twice.
        assert_eq!(t.drain_edges(), vec![(FileId::new(1), FileId::new(2), 1)]);
    }

    #[test]
    fn chained_writes_build_transitive_edges() {
        // Figure 4 shape: i0 read, o0 written, then o1 written.
        let mut t = CausalityTracker::new();
        let pid = ProcessId::new(1);
        let (i0, o0, o1) = (FileId::new(1), FileId::new(2), FileId::new(3));
        t.open(pid, i0, OpenMode::Read, ts(1));
        t.open(pid, o0, OpenMode::Write, ts(2));
        t.open(pid, o1, OpenMode::Write, ts(3));
        let edges = t.drain_edges();
        assert_eq!(edges, vec![(i0, o0, 1), (i0, o1, 1), (o0, o1, 1)]);
    }

    #[test]
    fn end_process_clears_live_state_but_keeps_edges() {
        let mut t = CausalityTracker::new();
        let pid = ProcessId::new(1);
        t.open(pid, FileId::new(1), OpenMode::Read, ts(1));
        t.open(pid, FileId::new(2), OpenMode::Write, ts(2));
        t.end_process(pid);
        assert!(t.accessed_by(pid).is_empty());
        assert_eq!(t.edge_count(), 1);
        // A new process with the same pid starts fresh.
        t.open(pid, FileId::new(9), OpenMode::Write, ts(3));
        assert_eq!(t.edge_count(), 1);
    }

    #[test]
    fn drain_empties_and_sorts() {
        let mut t = CausalityTracker::new();
        let pid = ProcessId::new(1);
        t.open(pid, FileId::new(5), OpenMode::Read, ts(1));
        t.open(pid, FileId::new(1), OpenMode::Read, ts(2));
        t.open(pid, FileId::new(9), OpenMode::Write, ts(3));
        let edges = t.drain_edges();
        let mut sorted = edges.clone();
        sorted.sort();
        assert_eq!(edges, sorted);
        assert_eq!(t.edge_count(), 0);
        assert_eq!(t.total_weight(), 0);
    }

    #[test]
    fn create_counts_as_write_open() {
        let mut t = CausalityTracker::new();
        let pid = ProcessId::new(1);
        t.open(pid, FileId::new(1), OpenMode::Read, ts(1));
        t.observe(TraceEvent::new(pid, FileId::new(2), FileOp::Create, ts(2)));
        assert_eq!(t.drain_edges(), vec![(FileId::new(1), FileId::new(2), 1)]);
    }
}
