//! Synthetic application profiles.
//!
//! The paper characterises file-access behaviour with real applications:
//! Table I measures how few files different programs share (apt-get,
//! Firefox, OpenOffice, a Linux kernel build) and Table II / Figure 7
//! capture the ACGs of building Thrift, Git and the Linux kernel. Those
//! binaries and their I/O traces are not available here, so this module
//! reproduces their *structure*:
//!
//! * [`overlapping_file_sets`] constructs app file-sets with exact pairwise
//!   intersection sizes (Table I),
//! * [`BuildProfile`] generates build-system traces (many short compiler
//!   processes reading shared headers and writing objects, plus link steps)
//!   whose ACGs match the vertex/edge/weight scale of Table II,
//! * [`InteractiveProfile`] generates long-lived interactive processes
//!   (Firefox-style: read config + libraries, write cache/log files).
//!
//! All generators are deterministic in their `seed`.

use rand::Rng;
use rand::{rngs::StdRng, SeedableRng};

use propeller_types::{FileId, OpenMode, ProcessId, Timestamp, TraceEvent};

use crate::catalog::FileCatalog;

/// One application execution: its name and the set of files it accessed.
#[derive(Debug, Clone)]
pub struct AppExecution {
    /// Application name (e.g. `"firefox"`).
    pub name: String,
    /// Every file this execution accessed.
    pub files: Vec<FileId>,
}

impl AppExecution {
    /// Number of files this execution accessed.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// Files shared with another execution (Table I cells).
    pub fn common_files(&self, other: &AppExecution) -> usize {
        let set: std::collections::HashSet<_> = self.files.iter().collect();
        other.files.iter().filter(|f| set.contains(f)).count()
    }
}

/// Builds application file-sets with *exact* totals and pairwise overlaps.
///
/// `totals[i]` is the file count of app `i`; `overlaps` lists
/// `(i, j, common)` triples. Pairwise shared pools are disjoint from each
/// other (no file is shared by three apps), matching the paper's
/// application-isolation observation.
///
/// # Panics
///
/// Panics if an app's pairwise overlaps sum to more than its total.
///
/// # Examples
///
/// ```
/// use propeller_trace::FileCatalog;
/// use propeller_trace::profiles::overlapping_file_sets;
///
/// let mut catalog = FileCatalog::new();
/// let apps = overlapping_file_sets(
///     &mut catalog,
///     &[("a", 100), ("b", 200)],
///     &[(0, 1, 25)],
/// );
/// assert_eq!(apps[0].file_count(), 100);
/// assert_eq!(apps[1].file_count(), 200);
/// assert_eq!(apps[0].common_files(&apps[1]), 25);
/// ```
pub fn overlapping_file_sets(
    catalog: &mut FileCatalog,
    totals: &[(&str, usize)],
    overlaps: &[(usize, usize, usize)],
) -> Vec<AppExecution> {
    let n = totals.len();
    let mut shared_with: Vec<usize> = vec![0; n];
    for &(i, j, c) in overlaps {
        assert!(i < n && j < n && i != j, "overlap indices out of range");
        shared_with[i] += c;
        shared_with[j] += c;
    }
    for (idx, &(name, total)) in totals.iter().enumerate() {
        assert!(
            shared_with[idx] <= total,
            "app {name:?}: overlaps ({}) exceed total ({total})",
            shared_with[idx]
        );
    }

    let mut files: Vec<Vec<FileId>> = vec![Vec::new(); n];
    // Pairwise shared pools first.
    for &(i, j, c) in overlaps {
        for k in 0..c {
            let id = catalog.intern(&format!("/shared/{}-{}/{k}", totals[i].0, totals[j].0));
            files[i].push(id);
            files[j].push(id);
        }
    }
    // Then each app's private files.
    for (idx, &(name, total)) in totals.iter().enumerate() {
        let private = total - shared_with[idx];
        for k in 0..private {
            files[idx].push(catalog.intern(&format!("/{name}/private/{k}")));
        }
    }

    totals
        .iter()
        .zip(files)
        .map(|(&(name, _), files)| AppExecution { name: name.to_owned(), files })
        .collect()
}

/// The paper's Table I configuration: apt-get, Firefox, OpenOffice and a
/// Linux kernel build with the published totals and pairwise overlaps.
///
/// # Examples
///
/// ```
/// use propeller_trace::FileCatalog;
/// use propeller_trace::profiles::table_one_apps;
///
/// let mut catalog = FileCatalog::new();
/// let apps = table_one_apps(&mut catalog);
/// assert_eq!(apps[0].file_count(), 279);   // apt-get
/// assert_eq!(apps[3].file_count(), 19715); // linux kernel
/// assert_eq!(apps[1].common_files(&apps[2]), 464); // firefox ∩ openoffice
/// ```
pub fn table_one_apps(catalog: &mut FileCatalog) -> Vec<AppExecution> {
    overlapping_file_sets(
        catalog,
        &[("apt-get", 279), ("firefox", 2279), ("openoffice", 2696), ("linux-kernel", 19715)],
        &[(0, 1, 31), (0, 2, 62), (0, 3, 29), (1, 2, 464), (1, 3, 48), (2, 3, 45)],
    )
}

/// Output of a profile generator: the trace plus bookkeeping.
#[derive(Debug, Clone, Default)]
pub struct GeneratedTrace {
    /// The event stream, in time order.
    pub events: Vec<TraceEvent>,
    /// Every file the trace touches.
    pub files: Vec<FileId>,
    /// Process ids used (one per short-lived build step, one per
    /// interactive session).
    pub processes: Vec<ProcessId>,
}

/// A build-system workload: `units` compiler invocations, each reading a
/// sample of `shared_headers` plus its own source and writing its own
/// object; `link_groups` link steps each reading its group's objects and
/// writing a binary. The project is split into `components` disjoint
/// sub-projects (header pools are not shared across components), which is
/// what gives real build ACGs their disconnected structure (Figure 7).
///
/// `rebuild_fraction` of the units are compiled a second time per extra
/// `runs`, adding edge *weight* without adding edges — matching the paper's
/// weight-to-edge ratios in Table II.
///
/// # Examples
///
/// ```
/// use propeller_trace::FileCatalog;
/// use propeller_trace::profiles::BuildProfile;
///
/// let mut catalog = FileCatalog::new();
/// let trace = BuildProfile::thrift().generate(&mut catalog, 42);
/// assert!(!trace.events.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct BuildProfile {
    /// Profile name (used for path prefixes).
    pub name: String,
    /// Number of compilation units.
    pub units: usize,
    /// Size of the shared header pool.
    pub shared_headers: usize,
    /// Headers read by each unit.
    pub headers_per_unit: usize,
    /// Number of disjoint sub-projects.
    pub components: usize,
    /// Number of link steps (binaries produced).
    pub link_groups: usize,
    /// Total build runs (first full, rest partial).
    pub runs: usize,
    /// Fraction of units recompiled on each run after the first.
    pub rebuild_fraction: f64,
    /// Fraction of a unit's header reads drawn from its *local* subsystem
    /// region of the header pool (the rest come from a small global set of
    /// very common headers). Real builds have strong header locality —
    /// that locality is what gives build ACGs their small balanced cuts
    /// (Table II: Linux 1.33%, Thrift 0.58%) — while weakly-modular
    /// projects (Git: 29.4%) sit lower.
    pub header_locality: f64,
}

impl BuildProfile {
    /// Thrift-build scale: ≈775 ACG vertices, high edge weight from repeated
    /// regeneration runs, 2 disconnected components (paper Fig. 7/Table II).
    pub fn thrift() -> Self {
        BuildProfile {
            name: "thrift".to_owned(),
            units: 250,
            shared_headers: 250,
            headers_per_unit: 30,
            components: 2,
            link_groups: 25,
            runs: 7,
            rebuild_fraction: 1.0,
            header_locality: 0.99,
        }
    }

    /// Git-build scale: ≈1018 vertices, modest weight (Table II).
    pub fn git() -> Self {
        BuildProfile {
            name: "git".to_owned(),
            units: 400,
            shared_headers: 200,
            headers_per_unit: 5,
            components: 3,
            link_groups: 18,
            runs: 2,
            rebuild_fraction: 0.4,
            header_locality: 0.45,
        }
    }

    /// Linux-kernel-build scale: ≈62 k vertices, ≈5.9 M edges (Table II).
    /// Generating this profile takes a few seconds.
    pub fn linux_kernel() -> Self {
        BuildProfile {
            name: "linux".to_owned(),
            units: 24_000,
            shared_headers: 14_000,
            headers_per_unit: 246,
            components: 1,
            link_groups: 331,
            runs: 2,
            rebuild_fraction: 0.17,
            header_locality: 0.985,
        }
    }

    /// A small profile for tests and examples.
    pub fn small(name: &str, units: usize) -> Self {
        BuildProfile {
            name: name.to_owned(),
            units,
            shared_headers: units / 2 + 1,
            headers_per_unit: 4.min(units / 2 + 1),
            components: 2.min(units.max(1)),
            link_groups: (units / 8).max(1),
            runs: 1,
            rebuild_fraction: 0.0,
            header_locality: 0.9,
        }
    }

    /// Generates the build trace deterministically from `seed`.
    pub fn generate(&self, catalog: &mut FileCatalog, seed: u64) -> GeneratedTrace {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = GeneratedTrace::default();
        let mut t = Timestamp::EPOCH;
        let mut next_pid: u32 = 1;
        let components = self.components.max(1);

        // Pre-allocate per-component file pools.
        struct Component {
            headers: Vec<FileId>,
            sources: Vec<FileId>,
            objects: Vec<FileId>,
        }
        let mut comps: Vec<Component> = Vec::with_capacity(components);
        for c in 0..components {
            let units_here =
                self.units / components + if c < self.units % components { 1 } else { 0 };
            let headers_here = (self.shared_headers / components).max(1);
            let headers: Vec<FileId> = (0..headers_here)
                .map(|i| catalog.intern(&format!("/{}/c{c}/include/h{i}.h", self.name)))
                .collect();
            let sources: Vec<FileId> = (0..units_here)
                .map(|i| catalog.intern(&format!("/{}/c{c}/src/u{i}.c", self.name)))
                .collect();
            let objects: Vec<FileId> = (0..units_here)
                .map(|i| catalog.intern(&format!("/{}/c{c}/obj/u{i}.o", self.name)))
                .collect();
            out.files.extend(&headers);
            out.files.extend(&sources);
            out.files.extend(&objects);
            comps.push(Component { headers, sources, objects });
        }

        let tick = propeller_types::Duration::from_micros(100);
        let headers_per_unit = self.headers_per_unit;

        let locality = self.header_locality.clamp(0.0, 1.0);
        let compile_unit = |comp: &Component,
                            comp_idx: usize,
                            unit: usize,
                            out: &mut GeneratedTrace,
                            t: &mut Timestamp,
                            next_pid: &mut u32| {
            let pid = ProcessId::new(*next_pid);
            *next_pid += 1;
            out.processes.push(pid);
            let pool = comp.headers.len();
            let k = headers_per_unit.min(pool);
            // The header sample is keyed by (seed, component, unit) only, so
            // a rebuild of the same unit re-reads the *same* headers: weight
            // accumulates on existing edges instead of creating new ones.
            let mut unit_rng =
                StdRng::seed_from_u64(seed ^ ((comp_idx as u64) << 40) ^ (unit as u64));
            // Header locality: most reads come from the unit's *subsystem*
            // — a discrete block of the header pool shared by the units of
            // that subsystem — plus a small set of ubiquitous headers at
            // the front (stdio.h-style). Discrete blocks (not a sliding
            // window) are what give real build ACGs their small balanced
            // cuts: subsystems touch disjoint header sets.
            let units_here = comp.sources.len().max(1);
            let regions = (pool / (k * 2).max(1)).max(1);
            let region_idx = (unit * regions / units_here).min(regions - 1);
            let region_len = (pool / regions).max(k.min(pool)).max(1);
            let region_start = (region_idx * (pool / regions)).min(pool - region_len);
            let global_len = (pool / 16).clamp(1, pool);
            let mut picked = std::collections::BTreeSet::new();
            while picked.len() < k {
                let hi = if unit_rng.gen::<f64>() < locality {
                    region_start + unit_rng.gen_range(0..region_len)
                } else if unit_rng.gen::<f64>() < 0.5 {
                    unit_rng.gen_range(0..global_len)
                } else {
                    unit_rng.gen_range(0..pool)
                };
                picked.insert(hi.min(pool - 1));
                // Tiny pools cannot supply k distinct headers; bail out.
                if picked.len() == pool {
                    break;
                }
            }
            for &hi in &picked {
                out.events.push(TraceEvent::open(pid, comp.headers[hi], OpenMode::Read, *t));
                *t += tick;
                out.events.push(TraceEvent::close(pid, comp.headers[hi], *t));
                *t += tick;
            }
            out.events.push(TraceEvent::open(pid, comp.sources[unit], OpenMode::Read, *t));
            *t += tick;
            out.events.push(TraceEvent::open(pid, comp.objects[unit], OpenMode::Write, *t));
            *t += tick;
            out.events.push(TraceEvent::close(pid, comp.sources[unit], *t));
            out.events.push(TraceEvent::close(pid, comp.objects[unit], *t));
            *t += tick;
        };

        // Run 1: full build.
        for (comp_idx, comp) in comps.iter().enumerate() {
            for unit in 0..comp.sources.len() {
                compile_unit(comp, comp_idx, unit, &mut out, &mut t, &mut next_pid);
            }
        }
        // Link steps: split each component's objects among its share of
        // binaries.
        let mut binaries_left = self.link_groups.max(1);
        for (c, comp) in comps.iter().enumerate() {
            let bins_here = if c + 1 == comps.len() {
                binaries_left
            } else {
                (self.link_groups * comp.objects.len() / self.units.max(1)).max(1)
            };
            let bins_here = bins_here.min(binaries_left.max(1)).max(1);
            binaries_left = binaries_left.saturating_sub(bins_here);
            let chunk = (comp.objects.len() / bins_here).max(1);
            for (b, objs) in comp.objects.chunks(chunk).enumerate() {
                let bin = catalog.intern(&format!("/{}/c{c}/bin/prog{b}", self.name));
                out.files.push(bin);
                let pid = ProcessId::new(next_pid);
                next_pid += 1;
                out.processes.push(pid);
                for &o in objs {
                    out.events.push(TraceEvent::open(pid, o, OpenMode::Read, t));
                    t += tick;
                }
                out.events.push(TraceEvent::open(pid, bin, OpenMode::Write, t));
                t += tick;
                out.events.push(TraceEvent::close(pid, bin, t));
                t += tick;
            }
        }
        // Partial rebuild runs: recompile a fraction of units with identical
        // header sets (weight accumulates on existing edges).
        for _run in 1..self.runs.max(1) {
            for (comp_idx, comp) in comps.iter().enumerate() {
                for unit in 0..comp.sources.len() {
                    if rng.gen::<f64>() < self.rebuild_fraction {
                        compile_unit(comp, comp_idx, unit, &mut out, &mut t, &mut next_pid);
                    }
                }
            }
        }

        out.files.sort_unstable();
        out.files.dedup();
        out
    }
}

/// An interactive application session (Firefox-style, paper Fig. 3):
/// one long-lived process that reads binaries, shared libraries and
/// configuration, then alternates reads with writes to cache, history and
/// log files.
#[derive(Debug, Clone)]
pub struct InteractiveProfile {
    /// Profile name (used for path prefixes).
    pub name: String,
    /// Read-only files (binary, libraries, config).
    pub read_files: usize,
    /// Mutable files (cache entries, logs, history).
    pub write_files: usize,
    /// Total operations in the session after startup.
    pub operations: usize,
}

impl InteractiveProfile {
    /// A Firefox-scale session.
    pub fn firefox() -> Self {
        InteractiveProfile {
            name: "firefox".to_owned(),
            read_files: 1800,
            write_files: 479,
            operations: 6000,
        }
    }

    /// An OpenOffice-scale session.
    pub fn openoffice() -> Self {
        InteractiveProfile {
            name: "openoffice".to_owned(),
            read_files: 2300,
            write_files: 396,
            operations: 5000,
        }
    }

    /// An apt-get-scale run (system management: small, write-heavy).
    pub fn apt_get() -> Self {
        InteractiveProfile {
            name: "apt-get".to_owned(),
            read_files: 180,
            write_files: 99,
            operations: 900,
        }
    }

    /// Generates the session trace deterministically from `seed`.
    pub fn generate(&self, catalog: &mut FileCatalog, seed: u64) -> GeneratedTrace {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = GeneratedTrace::default();
        let pid = ProcessId::new(1_000_000 ^ seed as u32);
        out.processes.push(pid);
        let mut t = Timestamp::EPOCH;
        let tick = propeller_types::Duration::from_micros(250);

        let reads: Vec<FileId> = (0..self.read_files)
            .map(|i| catalog.intern(&format!("/{}/ro/{i}", self.name)))
            .collect();
        let writes: Vec<FileId> = (0..self.write_files)
            .map(|i| catalog.intern(&format!("/{}/rw/{i}", self.name)))
            .collect();
        out.files.extend(&reads);
        out.files.extend(&writes);

        // Startup: read config and libraries.
        let startup = (reads.len() / 4).max(1);
        for &f in reads.iter().take(startup) {
            out.events.push(TraceEvent::open(pid, f, OpenMode::Read, t));
            t += tick;
            out.events.push(TraceEvent::close(pid, f, t));
            t += tick;
        }
        // Steady state: 70% reads, 30% writes.
        for _ in 0..self.operations {
            if rng.gen::<f64>() < 0.7 {
                let f = reads[rng.gen_range(0..reads.len())];
                out.events.push(TraceEvent::open(pid, f, OpenMode::Read, t));
                t += tick;
                out.events.push(TraceEvent::close(pid, f, t));
            } else {
                let f = writes[rng.gen_range(0..writes.len())];
                out.events.push(TraceEvent::open(pid, f, OpenMode::Write, t));
                t += tick;
                out.events.push(TraceEvent::close(pid, f, t));
            }
            t += tick;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CausalityTracker;

    #[test]
    fn table_one_matches_paper_exactly() {
        let mut catalog = FileCatalog::new();
        let apps = table_one_apps(&mut catalog);
        let totals: Vec<usize> = apps.iter().map(|a| a.file_count()).collect();
        assert_eq!(totals, vec![279, 2279, 2696, 19715]);
        assert_eq!(apps[0].common_files(&apps[1]), 31);
        assert_eq!(apps[0].common_files(&apps[2]), 62);
        assert_eq!(apps[0].common_files(&apps[3]), 29);
        assert_eq!(apps[1].common_files(&apps[2]), 464);
        assert_eq!(apps[1].common_files(&apps[3]), 48);
        assert_eq!(apps[2].common_files(&apps[3]), 45);
    }

    #[test]
    fn common_files_is_symmetric() {
        let mut catalog = FileCatalog::new();
        let apps = table_one_apps(&mut catalog);
        for i in 0..apps.len() {
            for j in 0..apps.len() {
                assert_eq!(apps[i].common_files(&apps[j]), apps[j].common_files(&apps[i]));
            }
        }
    }

    #[test]
    #[should_panic(expected = "exceed total")]
    fn overlapping_sets_validate_totals() {
        let mut catalog = FileCatalog::new();
        let _ = overlapping_file_sets(&mut catalog, &[("a", 5), ("b", 100)], &[(0, 1, 10)]);
    }

    #[test]
    fn build_profile_deterministic() {
        let mut c1 = FileCatalog::new();
        let t1 = BuildProfile::small("x", 20).generate(&mut c1, 7);
        let mut c2 = FileCatalog::new();
        let t2 = BuildProfile::small("x", 20).generate(&mut c2, 7);
        assert_eq!(t1.events, t2.events);
    }

    #[test]
    fn build_profile_produces_disconnected_components() {
        let mut catalog = FileCatalog::new();
        let profile = BuildProfile::small("demo", 40);
        let trace = profile.generate(&mut catalog, 3);
        let mut tracker = CausalityTracker::new();
        for ev in &trace.events {
            tracker.observe(*ev);
        }
        let edges = tracker.drain_edges();
        assert!(!edges.is_empty());
        // No edge crosses the component boundary: component paths differ.
        for (s, d, _) in &edges {
            let ps = catalog.path(*s).unwrap();
            let pd = catalog.path(*d).unwrap();
            let comp = |p: &str| p.split('/').nth(2).unwrap().to_owned();
            assert_eq!(comp(ps), comp(pd), "edge crosses components: {ps} -> {pd}");
        }
    }

    #[test]
    fn rebuilds_add_weight_not_edges() {
        let mut catalog = FileCatalog::new();
        let mut single = BuildProfile::small("w", 10);
        single.runs = 1;
        let mut triple = single.clone();
        triple.runs = 3;
        triple.rebuild_fraction = 1.0;

        let mut tracker1 = CausalityTracker::new();
        for ev in single.generate(&mut catalog, 5).events {
            tracker1.observe(ev);
        }
        let e1 = tracker1.drain_edges();

        let mut catalog2 = FileCatalog::new();
        let mut tracker3 = CausalityTracker::new();
        for ev in triple.generate(&mut catalog2, 5).events {
            tracker3.observe(ev);
        }
        let e3 = tracker3.drain_edges();

        let count1 = e1.len();
        let count3 = e3.len();
        let w1: u64 = e1.iter().map(|e| e.2).sum();
        let w3: u64 = e3.iter().map(|e| e.2).sum();
        assert_eq!(count1, count3, "edge sets should match");
        // Compile-unit weights triple, link-step weights stay single, so the
        // total lands strictly between w1 and 3*w1.
        assert!(w3 > w1, "rebuilds must add weight: {w1} -> {w3}");
        assert!(w3 < 3 * w1, "link edges must not be re-weighted: {w1} -> {w3}");
    }

    #[test]
    fn interactive_profile_generates_writes() {
        let mut catalog = FileCatalog::new();
        let trace = InteractiveProfile::apt_get().generate(&mut catalog, 11);
        let writes = trace
            .events
            .iter()
            .filter(|e| e.open_mode().map(|m| m.writes()).unwrap_or(false))
            .count();
        assert!(writes > 0);
        let mut tracker = CausalityTracker::new();
        for ev in trace.events {
            tracker.observe(ev);
        }
        assert!(tracker.edge_count() > 0);
    }

    #[test]
    fn thrift_profile_scale_close_to_paper() {
        let mut catalog = FileCatalog::new();
        let trace = BuildProfile::thrift().generate(&mut catalog, 42);
        // Vertices: 250 headers + 250 sources + 250 objects + ~25 binaries.
        let v = trace.files.len();
        assert!((700..=850).contains(&v), "thrift vertices = {v}");
    }
}
