//! File-access capture and access-causality extraction.
//!
//! The Propeller client observes every file `open`/`close` from a FUSE
//! interposer and turns them into **access-causality** edges (paper §III):
//! `fA → fB` when process `P` opened `fA` (read or write) at `t0` and opened
//! `fB` for writing at `t1 > t0`. In this reproduction the interposer is the
//! [`CausalityTracker`], driven explicitly with [`TraceEvent`]s by
//! applications and by the workload generators in this crate's
//! [`profiles`] module (apt-get, Firefox, OpenOffice, Linux-kernel, Thrift
//! and Git build profiles with the file-sharing structure of the paper's
//! Table I and the ACG shapes of its Table II).
//!
//! # Examples
//!
//! Capture a tiny producer/consumer run and extract its causality edges
//! (the paper's Figure 4 walkthrough):
//!
//! ```
//! use propeller_trace::CausalityTracker;
//! use propeller_types::{FileId, OpenMode, ProcessId, Timestamp};
//!
//! let pid = ProcessId::new(1);
//! let (input, output) = (FileId::new(10), FileId::new(20));
//!
//! let mut tracker = CausalityTracker::new();
//! tracker.open(pid, input, OpenMode::Read, Timestamp::from_secs(1));
//! tracker.close(pid, input, Timestamp::from_secs(2));
//! tracker.open(pid, output, OpenMode::Write, Timestamp::from_secs(3));
//! tracker.close(pid, output, Timestamp::from_secs(4));
//! tracker.end_process(pid);
//!
//! let edges = tracker.drain_edges();
//! assert_eq!(edges, vec![(input, output, 1)]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod catalog;
mod causality;
pub mod profiles;

pub use catalog::FileCatalog;
pub use causality::{CausalityTracker, EdgeUpdate};
pub use propeller_types::TraceEvent;
