//! Path ↔ file-id catalogue.

use std::collections::HashMap;

use propeller_types::FileId;

/// Assigns stable [`FileId`]s to paths.
///
/// Workload generators and examples speak in paths ("/usr/bin/firefox");
/// every other layer speaks in [`FileId`]s. The catalogue owns the mapping
/// and allocates ids densely from zero, which keeps downstream graph
/// adjacency structures compact.
///
/// # Examples
///
/// ```
/// use propeller_trace::FileCatalog;
///
/// let mut catalog = FileCatalog::new();
/// let a = catalog.intern("/etc/passwd");
/// let b = catalog.intern("/etc/hosts");
/// assert_ne!(a, b);
/// assert_eq!(catalog.intern("/etc/passwd"), a);
/// assert_eq!(catalog.path(a), Some("/etc/passwd"));
/// assert_eq!(catalog.len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FileCatalog {
    by_path: HashMap<String, FileId>,
    by_id: Vec<String>,
}

impl FileCatalog {
    /// Creates an empty catalogue.
    pub fn new() -> Self {
        FileCatalog::default()
    }

    /// Returns the id for `path`, allocating a fresh one on first sight.
    pub fn intern(&mut self, path: &str) -> FileId {
        if let Some(&id) = self.by_path.get(path) {
            return id;
        }
        let id = FileId::new(self.by_id.len() as u64);
        self.by_path.insert(path.to_owned(), id);
        self.by_id.push(path.to_owned());
        id
    }

    /// Looks up an already-interned path.
    pub fn get(&self, path: &str) -> Option<FileId> {
        self.by_path.get(path).copied()
    }

    /// Returns the path for an id, if the id was allocated by this catalogue.
    pub fn path(&self, id: FileId) -> Option<&str> {
        self.by_id.get(id.raw() as usize).map(String::as_str)
    }

    /// Number of interned files.
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// Returns `true` when no file has been interned.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }

    /// Iterates over `(id, path)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (FileId, &str)> {
        self.by_id.iter().enumerate().map(|(i, p)| (FileId::new(i as u64), p.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut c = FileCatalog::new();
        let a = c.intern("/a");
        assert_eq!(c.intern("/a"), a);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn ids_are_dense_from_zero() {
        let mut c = FileCatalog::new();
        for i in 0..100 {
            let id = c.intern(&format!("/f{i}"));
            assert_eq!(id.raw(), i);
        }
    }

    #[test]
    fn reverse_lookup() {
        let mut c = FileCatalog::new();
        let id = c.intern("/x/y");
        assert_eq!(c.path(id), Some("/x/y"));
        assert_eq!(c.get("/x/y"), Some(id));
        assert_eq!(c.get("/nope"), None);
        assert_eq!(c.path(FileId::new(99)), None);
    }

    #[test]
    fn iter_in_id_order() {
        let mut c = FileCatalog::new();
        c.intern("/1");
        c.intern("/2");
        let paths: Vec<&str> = c.iter().map(|(_, p)| p).collect();
        assert_eq!(paths, vec!["/1", "/2"]);
    }
}
