//! # Propeller
//!
//! A from-scratch Rust reproduction of **"Propeller: A Scalable Real-Time
//! File-Search Service in Distributed Systems"** (Xu, Jiang, Tian, Huang —
//! ICDCS 2014).
//!
//! Propeller keeps file-search results *always consistent* with file
//! contents by indexing inline with file modifications, and makes that
//! affordable by partitioning the file index along the **Access-Causality
//! Graph (ACG)**: files a process reads before writing another file are
//! causally linked, causally-linked files cluster into small, mostly
//! disconnected components, and each component becomes an independent
//! index group that one Index Node can update and search without touching
//! the rest of the system.
//!
//! ## Quick start
//!
//! ```
//! use propeller::{FileRecord, Propeller, PropellerConfig};
//! use propeller::types::{FileId, InodeAttrs};
//!
//! # fn main() -> Result<(), propeller::types::Error> {
//! let mut service = Propeller::new(PropellerConfig::default());
//!
//! // Inline indexing: the update is acknowledged only once logged.
//! service.index_file(FileRecord::new(
//!     FileId::new(1),
//!     InodeAttrs::builder().size(20 << 20).build(),
//! ))?;
//!
//! // Search sees every acknowledged update — no crawl delay, ever.
//! let hits = service.search_text("size>16m")?;
//! assert_eq!(hits, vec![FileId::new(1)]);
//! # Ok(())
//! # }
//! ```
//!
//! ## Crate map
//!
//! | module | contents |
//! |---|---|
//! | [`types`] | ids, timestamps, attribute values, errors |
//! | [`trace`] | access capture, causality extraction, app profiles |
//! | [`acg`] | the ACG, components, multilevel 2-way partitioner |
//! | [`index`] | B+-tree, hash, K-D tree, WAL, lazy cache, index groups |
//! | [`query`] | query language, planner, executor |
//! | [`storage`] | disk/network/FS cost models, shared storage |
//! | [`cluster`] | Master Node, Index Nodes, client engine, RPC fabric |
//! | [`baselines`] | MySQL-like store, Spotlight-like crawler, brute force |
//! | [`workloads`] | namespaces, FPS copiers, mixed loads, PostMark |
//! | [`sim`] | virtual clock, event queue, deterministic RNG |
//!
//! The distributed service lives in [`cluster::Cluster`]; the single-node
//! service (the paper's §V-B configuration) is [`Propeller`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use propeller_core::{
    FileRecord, IndexKind, IndexOp, IndexSpec, Predicate, Propeller, PropellerConfig, Query,
    ServiceStats,
};

pub use propeller_acg as acg;
pub use propeller_baselines as baselines;
pub use propeller_cluster as cluster;
pub use propeller_index as index;
pub use propeller_query as query;
pub use propeller_sim as sim;
pub use propeller_storage as storage;
pub use propeller_trace as trace;
pub use propeller_types as types;
pub use propeller_workloads as workloads;

pub use propeller_cluster::{Cluster, ClusterConfig, FileQueryEngine};
