//! # Propeller
//!
//! A from-scratch Rust reproduction of **"Propeller: A Scalable Real-Time
//! File-Search Service in Distributed Systems"** (Xu, Jiang, Tian, Huang —
//! ICDCS 2014).
//!
//! Propeller keeps file-search results *always consistent* with file
//! contents by indexing inline with file modifications, and makes that
//! affordable by partitioning the file index along the **Access-Causality
//! Graph (ACG)**: files a process reads before writing another file are
//! causally linked, causally-linked files cluster into small, mostly
//! disconnected components, and each component becomes an independent
//! index group that one Index Node can update and search without touching
//! the rest of the system.
//!
//! ## Quick start
//!
//! ```
//! use propeller::{FileRecord, Propeller, PropellerConfig, SearchRequest, SortKey};
//! use propeller::types::{AttrName, FileId, InodeAttrs, Timestamp};
//!
//! # fn main() -> Result<(), propeller::types::Error> {
//! let mut service = Propeller::new(PropellerConfig::default());
//!
//! // Inline indexing: the update is acknowledged only once logged.
//! for i in 1..=50u64 {
//!     service.index_file(FileRecord::new(
//!         FileId::new(i),
//!         InodeAttrs::builder().size(i << 20).build(),
//!     ))?;
//! }
//!
//! // Search sees every acknowledged update — no crawl delay, ever.
//! let hits = service.search_text("size>16m")?;
//! assert_eq!(hits.len(), 34);
//!
//! // The canonical search API shapes the result set at the source:
//! // top-k with a bounded heap, sorting, projection, pagination.
//! let req = SearchRequest::parse("size>16m", Timestamp::EPOCH)?
//!     .with_limit(3)
//!     .sorted_by(SortKey::Descending(AttrName::Size));
//! let resp = service.search_with(&req)?;
//! assert_eq!(resp.file_ids(), vec![FileId::new(50), FileId::new(49), FileId::new(48)]);
//! assert!(resp.complete && resp.cursor.is_some());
//! # Ok(())
//! # }
//! ```
//!
//! ## Crate map
//!
//! | module | contents |
//! |---|---|
//! | [`types`] | ids, timestamps, attribute values, errors |
//! | [`trace`] | access capture, causality extraction, app profiles |
//! | [`acg`] | the ACG, components, multilevel 2-way partitioner |
//! | [`index`] | B+-tree, hash, K-D tree, WAL, lazy cache, index groups |
//! | [`query`] | query language, planner, executor |
//! | [`storage`] | disk/network/FS cost models, shared storage |
//! | [`cluster`] | Master Node, Index Nodes, client engine, RPC fabric |
//! | [`baselines`] | MySQL-like store, Spotlight-like crawler, brute force |
//! | [`workloads`] | namespaces, FPS copiers, mixed loads, PostMark |
//! | [`sim`] | virtual clock, event queue, deterministic RNG |
//!
//! The distributed service lives in [`cluster::Cluster`]; the single-node
//! service (the paper's §V-B configuration) is [`Propeller`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use propeller_core::{
    Cursor, FanOutPolicy, FileRecord, Hit, IndexKind, IndexOp, IndexSpec, Predicate, Projection,
    Propeller, PropellerConfig, Query, SearchRequest, SearchResponse, SearchStats, ServiceStats,
    SortKey,
};

pub use propeller_acg as acg;
pub use propeller_baselines as baselines;
pub use propeller_cluster as cluster;
pub use propeller_index as index;
pub use propeller_query as query;
pub use propeller_sim as sim;
pub use propeller_storage as storage;
pub use propeller_trace as trace;
pub use propeller_types as types;
pub use propeller_workloads as workloads;

pub use propeller_cluster::{Cluster, ClusterConfig, FileQueryEngine};
